"""Table 2: machine parameters — configuration and a base-machine run."""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, run_once

from repro.analysis import format_kv_table, table2_parameters
from repro.pipeline import simulate_baseline


def test_table2_parameters(benchmark):
    def run():
        return simulate_baseline(
            "gcc",
            n_instructions=BENCH_INSTRUCTIONS,
            warmup=BENCH_WARMUP,
        )

    result = run_once(benchmark, run)
    print()
    print(format_kv_table("Table 2: machine parameters", table2_parameters()))
    print(f"\nbase machine sanity run (gcc): IPC {result.ipc:.3f}")
    assert result.ipc > 0.5
    assert result.comms_per_instr == 0.0
