#!/usr/bin/env python
"""Core-model throughput baseline: event-driven vs reference scan issue.

Times the simulator's hot path (``Processor.run``) on the smoke-suite
workloads under both issue schedulers and writes the measurements to
``BENCH_core.json`` at the repository root.  Run it from a checkout::

    PYTHONPATH=src python benchmarks/bench_core.py [--repeat 3]

The grid covers every smoke-suite (bench, scheme) point on the Table 2
clustered machine — the representative regime, where windows stay
shallow and the two schedulers should be near parity — plus the
*issue-bound* points on the ``deep-window-512`` machine (512-entry
windows, 1024-deep ROB), where the reference scan's O(window x
operands) per-cycle cost dominates and the event-driven scheduler is
expected to hold its >=1.5x advantage.

Each point records instructions/sec for both schedulers (best over
``--repeat`` timed runs, with mean/std for noise visibility) and the
``speedup_vs_scan`` ratio.  The ratio is the machine-portable signal
the CI perf gate leans on; the absolute numbers chart the trajectory on
comparable hardware.

A second family of points times the **dispatch** rework the same way:
the fused columnar dispatch loop (``dispatch="columnar"``, the default)
against the retained per-object reference (``dispatch="object"``), both
under the event scheduler, with ``speedup_vs_object`` as the portable
ratio.  These points carry ``"columnar"``/``"object"`` rows instead of
``"event"``/``"scan"`` and are tagged ``"kind": "dispatch"``.

Each point keeps the raw per-repeat ``seconds`` vectors alongside the
summary stats, so the perf ledger (``repro-sim perf record`` reads this
document as a legacy v0 profile) can run real statistical tests instead
of single-ratio comparisons.

Not a pytest module on purpose: perf numbers belong in a recorded
artifact the next PR can diff, not in a pass/fail gate (the gate is
``repro-sim perf check`` against ``BENCH_history/``, driven by CI;
``check_regression.py`` remains as the legacy ratio shim).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

from repro.core.steering import make_steering
from repro.pipeline.processor import Processor
from repro.spec import machine_config
from repro.workloads import workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Measured window per timed run (committed instructions).
N_INSTRUCTIONS = 8000
WARMUP = 1000

#: Dispatch points time a longer window and take at least 9 repeats:
#: the columnar-vs-object ratio is a steady-state hot-loop property —
#: at 8k instructions fixed per-run setup (processor construction,
#: first-touch of the pinned columns) dilutes it, and best-of-few is
#: noise-sensitive on shared runners.  The point records its own
#: ``n_instructions``.
DISPATCH_N_INSTRUCTIONS = 30000
DISPATCH_MIN_REPEAT = 9

#: The issue-bound machine: per-cluster window / ROB scaled until the
#: issue stage dominates runtime (see the deep-window registry family).
ISSUE_BOUND_MACHINE = "deep-window-512"

#: (bench, scheme, machine, issue_bound?) measurement grid.  Benches and
#: schemes are the smoke suite's; pchase-extreme joins the issue-bound
#: points because its dependence chains actually fill a deep window
#: (pointer-chase stress family, scenario corpus).
def build_grid():
    from repro.scenarios import get_suite

    smoke = get_suite("smoke")
    grid = []
    for bench in smoke.benches:
        for scheme in smoke.schemes:
            grid.append((bench, scheme, "clustered", False))
    for bench in list(smoke.benches) + ["pchase-extreme"]:
        grid.append((bench, "general-balance", ISSUE_BOUND_MACHINE, True))
    return grid


#: (bench, scheme, machine) grid for the columnar-vs-object dispatch
#: points: the Table 2 clustered machine across the smoke suite's
#: benches (dispatch dominates there — shallow windows keep issue
#: cheap), plus one issue-bound point to show the fused loop holds up
#: when dispatch is *not* the bottleneck.
def build_dispatch_grid():
    from repro.scenarios import get_suite

    smoke = get_suite("smoke")
    grid = [
        (bench, "general-balance", "clustered") for bench in smoke.benches
    ]
    grid.append(("gcc", "general-balance", ISSUE_BOUND_MACHINE))
    return grid


def time_point(bench, scheme, machine, scheduler, repeat, dispatch=None,
               n_instructions=N_INSTRUCTIONS):
    """Best/mean/std wall-clock seconds over *repeat* timed runs."""
    wl = workload(bench, seed=0)  # cached: charges generation once
    times = []
    for _ in range(repeat):
        config = machine_config(machine)
        steering = make_steering(scheme)
        if getattr(steering, "requires_fifo_issue", False):
            config = config.with_fifo_issue()
        processor = Processor(
            wl, config, steering, scheduler=scheduler, dispatch=dispatch
        )
        start = time.perf_counter()
        processor.run(n_instructions, warmup=WARMUP)
        times.append(time.perf_counter() - start)
    # Raw per-repeat "seconds" samples ride along: the perf ledger's
    # statistical tests (repro.perf.detect) run on these, not on the
    # summary stats.
    return _summary_rows(times, n_instructions, repeat)


def _summary_rows(times, n_instructions, repeat):
    return {
        "runs": repeat,
        "seconds": [round(t, 6) for t in times],
        "seconds_best": round(min(times), 4),
        "seconds_mean": round(statistics.fmean(times), 4),
        "seconds_std": round(
            statistics.stdev(times) if len(times) > 1 else 0.0, 4
        ),
        "instr_per_sec": round(n_instructions / min(times), 1),
    }


def time_dispatch_point(bench, scheme, machine, repeat, n_instructions):
    """Interleaved columnar/object timing for one dispatch point.

    The repeats alternate between the two dispatch modes so slow host
    drift (thermal, co-tenant load) cancels out of the ratio instead of
    biasing whichever block ran second; one untimed run first
    materialises the trace window, so no timed repeat pays the workload
    generator.
    """
    wl = workload(bench, seed=0)
    modes = ("columnar", "object")
    times = {mode: [] for mode in modes}

    def one_run(dispatch, timed):
        config = machine_config(machine)
        steering = make_steering(scheme)
        if getattr(steering, "requires_fifo_issue", False):
            config = config.with_fifo_issue()
        processor = Processor(
            wl, config, steering, scheduler="event", dispatch=dispatch
        )
        start = time.perf_counter()
        processor.run(n_instructions, warmup=WARMUP)
        if timed:
            times[dispatch].append(time.perf_counter() - start)

    one_run("columnar", timed=False)  # materialise the trace window
    for _ in range(repeat):
        for mode in modes:
            one_run(mode, timed=True)
    return tuple(
        _summary_rows(times[mode], n_instructions, repeat) for mode in modes
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_core.json"),
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")

    points = []
    for bench, scheme, machine, issue_bound in build_grid():
        event = time_point(bench, scheme, machine, "event", args.repeat)
        scan = time_point(bench, scheme, machine, "scan", args.repeat)
        speedup = event["instr_per_sec"] / scan["instr_per_sec"]
        points.append(
            {
                "bench": bench,
                "scheme": scheme,
                "machine": machine,
                "issue_bound": issue_bound,
                "event": event,
                "scan": scan,
                "speedup_vs_scan": round(speedup, 3),
            }
        )
        tag = "issue-bound" if issue_bound else "baseline   "
        print(
            f"{tag} {bench:>14s} {scheme:<16s} {machine:<15s} "
            f"event={event['instr_per_sec']:>8.0f} i/s  "
            f"scan={scan['instr_per_sec']:>8.0f} i/s  "
            f"speedup={speedup:4.2f}x"
        )

    dispatch_repeat = max(args.repeat, DISPATCH_MIN_REPEAT)
    for bench, scheme, machine in build_dispatch_grid():
        columnar, obj = time_dispatch_point(
            bench, scheme, machine, dispatch_repeat,
            DISPATCH_N_INSTRUCTIONS,
        )
        speedup = columnar["instr_per_sec"] / obj["instr_per_sec"]
        points.append(
            {
                "bench": bench,
                "scheme": scheme,
                "machine": machine,
                "kind": "dispatch",
                "n_instructions": DISPATCH_N_INSTRUCTIONS,
                "columnar": columnar,
                "object": obj,
                "speedup_vs_object": round(speedup, 3),
            }
        )
        print(
            f"dispatch    {bench:>14s} {scheme:<16s} {machine:<15s} "
            f"columnar={columnar['instr_per_sec']:>8.0f} i/s  "
            f"object={obj['instr_per_sec']:>8.0f} i/s  "
            f"speedup={speedup:4.2f}x"
        )

    issue_bound_speedups = [
        p["speedup_vs_scan"] for p in points if p.get("issue_bound")
    ]
    dispatch_speedups = [
        p["speedup_vs_object"] for p in points if "speedup_vs_object" in p
    ]
    document = {
        "benchmark": "core-scheduler",
        "suite": "smoke",
        "n_instructions": N_INSTRUCTIONS,
        "warmup": WARMUP,
        "python": platform.python_version(),
        "recorded": time.strftime("%Y-%m-%d", time.gmtime()),
        "points": points,
        "summary": {
            "max_issue_bound_speedup": max(issue_bound_speedups),
            "min_speedup": min(
                p["speedup_vs_scan"] for p in points
                if "speedup_vs_scan" in p
            ),
            "max_dispatch_speedup": max(dispatch_speedups),
            "min_dispatch_speedup": min(dispatch_speedups),
        },
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
