"""Scenario corpus: suite runs beyond the paper's eight benchmarks.

The stress families bracket the SpecInt95 stand-ins: pointer-chase
workloads serialise on dependent loads (low IPC, copies on the critical
path), high-ILP workloads approach the machine's width, and in both
regimes the balance schemes should cut communications relative to the
modulo strawman.
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_JOBS, BENCH_WARMUP, run_once

from repro.scenarios import get_suite, run_suite


def _suite_results(name):
    return run_suite(
        name,
        workers=BENCH_JOBS,
        n_instructions=BENCH_INSTRUCTIONS,
        warmup=BENCH_WARMUP,
    ).results


def test_comm_bound_suite(benchmark):
    results = run_once(benchmark, lambda: _suite_results("comm-bound"))
    print()
    print(f"{'bench':>16s} {'scheme':<18s} {'ipc':>6s} {'comm/i':>8s}")
    for run in results:
        print(
            f"{run.point.bench:>16s} {run.point.scheme:<18s} "
            f"{run.result.ipc:>6.2f} {run.result.comms_per_instr:>8.3f}"
        )
    suite = get_suite("comm-bound")
    for bench in suite.benches:
        modulo = results.result(bench=bench, scheme="modulo")
        balance = results.result(bench=bench, scheme="general-balance")
        # Balance steering must cut communications on every comm-bound
        # workload; that is the regime the suite exists to stress.
        assert balance.comms_per_instr < modulo.comms_per_instr
    # Deeper chase -> more serialisation: the family orders by IPC.
    ipc = {
        bench: results.result(bench=bench, scheme="general-balance").ipc
        for bench in ("pchase-mild", "pchase-extreme")
    }
    assert ipc["pchase-extreme"] < ipc["pchase-mild"]


def test_high_ilp_suite(benchmark):
    results = run_once(benchmark, lambda: _suite_results("high-ilp"))
    print()
    for run in results:
        print(
            f"{run.point.bench:>16s} {run.point.scheme:<18s} "
            f"IPC {run.result.ipc:5.2f}"
        )
    # Wide independent dataflow beats the pointer-chase regime by a wide
    # margin under the same scheme.
    ilp = results.result(bench="ilp-wide", scheme="general-balance").ipc
    assert ilp > 1.5
