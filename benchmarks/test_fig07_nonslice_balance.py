"""Figure 7: non-slice balance steering vs plain slice steering.

Paper: adding non-slice balancing helps the Br slice but hurts the LdSt
slice (it raises LdSt communications, Figure 8).
"""

from conftest import run_once

from repro.analysis import FIGURES, format_speedup_table


def test_fig07_nonslice_balance(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig7"](runner))
    print()
    print(
        format_speedup_table(
            "Figure 7: non-slice balance vs slice steering",
            data["benchmarks"],
            {
                "LdSt slice": data["ldst-slice"],
                "Br slice": data["br-slice"],
                "LdSt non-sl": data["ldst-nonslice"],
                "Br non-sl": data["br-nonslice"],
            },
            {
                "LdSt slice": data["ldst-slice_hmean"],
                "Br slice": data["br-slice_hmean"],
                "LdSt non-sl": data["ldst-nonslice_hmean"],
                "Br non-sl": data["br-nonslice_hmean"],
            },
        )
    )
    print("\npaper: balancing helps the Br slice, hurts the LdSt slice")
    for key in (
        "ldst-slice_hmean",
        "br-slice_hmean",
        "ldst-nonslice_hmean",
        "br-nonslice_hmean",
    ):
        assert data[key] > 0
