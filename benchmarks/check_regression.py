#!/usr/bin/env python
"""Legacy perf-regression gate — thin shim over ``repro.perf.legacy``.

The single-ratio gate this script used to implement lives in
:mod:`repro.perf.legacy` now; the statistical replacement driven by CI
is ``repro-sim perf check`` (raw-sample tests against the
``BENCH_history/`` ledger — see :mod:`repro.perf`).  The script and its
flags are kept byte-compatible for local workflows and external callers
during the transition::

    python benchmarks/check_regression.py \
        --baseline BENCH_core.json --fresh fresh/BENCH_core.json \
        --max-regression 0.30
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.perf.legacy import (  # noqa: E402,F401  (re-exported API)
    Metric,
    campaign_metrics,
    core_metrics,
    load,
    main,
)

if __name__ == "__main__":
    sys.exit(main())
