"""Figure 6: workload-balance distribution under slice steering.

Paper: both slice schemes leave a significant fraction of cycles with one
cluster overloaded — the observation motivating the balance schemes.
"""

from conftest import run_once

from repro.analysis import FIGURES, format_balance_histogram


def test_fig06_slice_balance_hist(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig6"](runner))
    print()
    print(
        format_balance_histogram(
            "Figure 6: #ready FP - #ready INT (SpecInt95 average)",
            {"LdSt slice": data["ldst"], "Br slice": data["br"]},
            max_width=30,
        )
    )
    for dist in data.values():
        assert abs(sum(dist) - 1.0) < 1e-6
        center_mass = sum(dist[8:13])  # |diff| <= 2
        assert center_mass < 0.98  # real imbalance exists
