"""Figure 13: priority slice balance steering.

Paper: keeping only *critical* slices together is slightly better than
plain slice balance (27.7%/28.8% vs 27%/26.5%) thanks to fewer critical
communications (0.050 -> 0.045 LdSt, 0.055 -> 0.043 Br).
"""

from conftest import run_once

from repro.analysis import FIGURES, format_speedup_table


def test_fig13_priority(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig13"](runner))
    print()
    print(
        format_speedup_table(
            "Figure 13: priority slice balance steering",
            data["benchmarks"],
            {"LdSt p.slice": data["ldst"], "Br p.slice": data["br"]},
            {
                "LdSt p.slice": data["ldst_hmean"],
                "Br p.slice": data["br_hmean"],
            },
        )
    )
    print(
        "\ncritical comms/instr (plain -> priority): "
        f"LdSt {data['ldst_critical_plain']:.3f} -> "
        f"{data['ldst_critical']:.3f}, "
        f"Br {data['br_critical_plain']:.3f} -> {data['br_critical']:.3f}"
    )
    assert data["ldst_hmean"] > 0
    assert data["br_hmean"] > 0
