"""Benchmark harness configuration.

Each ``test_*`` module regenerates one table or figure of the paper.  The
:class:`~repro.analysis.ExperimentRunner` is session-scoped, so runs are
shared across figures exactly like the paper shares its baselines; the
first figure touching a configuration pays for its simulation.

Environment knobs:

* ``REPRO_BENCH_INSTRUCTIONS`` — measured window per run (default 10000)
* ``REPRO_BENCH_WARMUP`` — warm-up per run (default 4000)
* ``REPRO_BENCH_JOBS`` — worker processes for benchmark sweeps
  (default 1 = serial; each figure's benchmark sweep then runs as one
  parallel campaign batch with a shared trace per benchmark)

Larger windows tighten the numbers at proportional cost (the paper used
100M-instruction windows on a C simulator; this is a Python model).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import ExperimentRunner
from repro.dist import jobs_from_env

BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "10000"))
BENCH_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "4000"))
# Validated eagerly: REPRO_BENCH_JOBS=lots must fail here with a clear
# ConfigError, not inside a process pool mid-sweep.
BENCH_JOBS = jobs_from_env("REPRO_BENCH_JOBS", default=1)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(
        n_instructions=BENCH_INSTRUCTIONS,
        warmup=BENCH_WARMUP,
        workers=BENCH_JOBS,
    )


def run_once(benchmark, fn):
    """Time one full figure regeneration (a figure is one unit of work —
    repeating it would only measure the runner's cache)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
