"""Figure 14: general balance steering vs modulo and the 16-way bound.

Paper: general balance averages +36%, only 8% below the 16-way upper
bound; modulo manages just +2.8%.
"""

from conftest import run_once

from repro.analysis import FIGURES, format_speedup_table


def test_fig14_general_balance(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig14"](runner))
    print()
    print(
        format_speedup_table(
            "Figure 14: general balance steering",
            data["benchmarks"],
            {
                "Modulo": data["modulo"],
                "General bal": data["general"],
                "UB arch": data["upper_bound"],
            },
            {
                "Modulo": data["modulo_hmean"],
                "General bal": data["general_hmean"],
                "UB arch": data["upper_bound_hmean"],
            },
        )
    )
    print("\npaper: modulo +2.8%, general +36%, UB ~+44% (H-mean)")
    assert data["modulo_hmean"] < data["general_hmean"]
    assert data["general_hmean"] <= data["upper_bound_hmean"] + 0.02
    assert data["general_hmean"] > 0.6 * data["upper_bound_hmean"]
