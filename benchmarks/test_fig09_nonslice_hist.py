"""Figure 9: balance distribution under non-slice balance steering.

Paper: the distribution improves over Figure 6 but a large fraction of
cycles still shows an overloaded integer cluster — motivating slice
balance steering.
"""

from conftest import run_once

from repro.analysis import FIGURES, format_balance_histogram


def test_fig09_nonslice_hist(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig9"](runner))
    print()
    print(
        format_balance_histogram(
            "Figure 9: #ready FP - #ready INT, non-slice balance",
            {
                "LdSt non-slice": data["ldst"],
                "Br non-slice": data["br"],
            },
            max_width=30,
        )
    )
    for dist in data.values():
        assert abs(sum(dist) - 1.0) < 1e-6
