"""Figure 4: LdSt slice steering vs Br slice steering speed-ups.

Paper: both give solid speed-ups (H-means ~16% / ~14%); Br slice trails
slightly because it generates more communications (Figure 5).
"""

from conftest import run_once

from repro.analysis import FIGURES, format_speedup_table


def test_fig04_slice_steering(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig4"](runner))
    print()
    print(
        format_speedup_table(
            "Figure 4: LdSt slice vs Br slice steering",
            data["benchmarks"],
            {"LdSt slice": data["ldst"], "Br slice": data["br"]},
            {
                "LdSt slice": data["ldst_hmean"],
                "Br slice": data["br_hmean"],
            },
        )
    )
    print("\npaper: LdSt slice +16%, Br slice slightly lower (H-mean)")
    assert data["ldst_hmean"] > 0
    assert data["br_hmean"] > 0
