"""Figure 8: average communications for the four slice-steering variants.

Paper: non-slice balancing raises LdSt-slice communications noticeably
while leaving Br-slice communications about the same.
"""

from conftest import run_once

from repro.analysis import FIGURES, format_comm_table


def test_fig08_nonslice_comms(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig8"](runner))
    print()
    print(
        format_comm_table(
            "Figure 8: comms per instruction (SpecInt95 average)", data
        )
    )
    for row in data.values():
        assert row["total"] >= row["critical"] >= 0
        assert row["total"] < 0.5
