"""Figure 11: slice balance steering speed-ups.

Paper: both variants reach ~27% (LdSt) / ~26.5% (Br), clearly above the
plain slice schemes, with fewer communications (0.07/0.08 per
instruction).
"""

from conftest import run_once

from repro.analysis import FIGURES, format_speedup_table


def test_fig11_slice_balance(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig11"](runner))
    print()
    print(
        format_speedup_table(
            "Figure 11: slice balance steering",
            data["benchmarks"],
            {"LdSt slice bal": data["ldst"], "Br slice bal": data["br"]},
            {
                "LdSt slice bal": data["ldst_hmean"],
                "Br slice bal": data["br_hmean"],
            },
        )
    )
    print(
        f"\nmean comms/instr: LdSt {data['ldst_mean_comms']:.3f}, "
        f"Br {data['br_mean_comms']:.3f} (paper: 0.07 / 0.08)"
    )
    assert data["ldst_hmean"] > 0
    assert data["br_hmean"] > 0
    # The two variants perform similarly (paper: 27% vs 26.5%).
    assert abs(data["ldst_hmean"] - data["br_hmean"]) < 0.10
