"""Table 1: benchmark catalogue — workload generation cost and content."""

from conftest import run_once

from repro.analysis import table1_workloads
from repro.workloads import FIGURE_ORDER, workload


def test_table1_workloads(benchmark):
    def build_all():
        return {name: workload(name) for name in FIGURE_ORDER}

    workloads = run_once(benchmark, build_all)
    rows = table1_workloads()
    print()
    print("Table 1: benchmarks and their inputs")
    print("------------------------------------")
    for row in rows:
        wl = workloads[row["benchmark"]]
        print(
            f"{row['benchmark']:>10s}  {row['input']:<24s}"
            f"{wl.program.num_instructions:>6d} static instructions"
        )
    assert len(rows) == 8
