"""Ablation: decomposing general balance steering into its ingredients.

General balance steering (§3.8) combines *operand affinity* (minimise
communications) with an *imbalance override* (keep both clusters busy).
This bench races the full scheme against its two halves and a
register-banked extension:

* ``affinity-only``   — follow operands, never balance
* ``balance-only``    — always least loaded, ignore operands
* ``primary-cluster`` — destination-register banking + imbalance override
* ``modulo``          — the balance strawman from the paper

Expected shape: the combination beats both halves; balance-only trends
toward modulo's communication blow-up; affinity-only trends toward the
base machine's imbalance.
"""

from conftest import run_once


def test_ablation_decomposition(benchmark, runner):
    schemes = (
        "affinity-only",
        "balance-only",
        "primary-cluster",
        "modulo",
        "general-balance",
    )

    def sweep():
        rows = {}
        for scheme in schemes:
            speedups = runner.speedups(scheme)
            results = runner.sweep(scheme)
            mean_comms = sum(
                r.comms_per_instr for r in results.values()
            ) / len(results)
            mean_speedup = sum(speedups.values()) / len(speedups)
            rows[scheme] = (mean_speedup, mean_comms)
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation: general balance decomposition (SpecInt95 mean)")
    print(f"{'scheme':>18s}{'speed-up':>10s}{'comm/i':>9s}")
    for scheme, (speedup, comms) in rows.items():
        print(f"{scheme:>18s}{speedup:>+10.1%}{comms:>9.3f}")
    general = rows["general-balance"][0]
    assert general >= rows["affinity-only"][0] - 0.02
    assert general >= rows["balance-only"][0] - 0.02
    # Balance-only pays in communications like modulo does.
    assert rows["balance-only"][1] > rows["general-balance"][1]
