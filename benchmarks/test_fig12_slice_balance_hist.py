"""Figure 12: balance distribution — modulo vs slice balance steering.

Paper: slice balance steering matches modulo's near-ideal balance while
communicating an order of magnitude less.
"""

from conftest import run_once

from repro.analysis import FIGURES, format_balance_histogram


def _central_mass(dist, radius=2):
    center = len(dist) // 2
    return sum(dist[center - radius : center + radius + 1])


def test_fig12_slice_balance_hist(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig12"](runner))
    print()
    print(
        format_balance_histogram(
            "Figure 12: #ready FP - #ready INT",
            {
                "Modulo": data["modulo"],
                "LdSt slice bal": data["ldst"],
                "Br slice bal": data["br"],
            },
            max_width=24,
        )
    )
    # Modulo is the balance reference; slice balance should be comparable.
    assert _central_mass(data["ldst"]) > 0.3 * _central_mass(data["modulo"])
