#!/usr/bin/env python
"""Campaign-backend perf baseline: serial vs process vs worker vs service.

Times full runs of the ``smoke`` suite under each execution backend and
writes the measurements to ``BENCH_campaign.json`` at the repository
root — the campaign-throughput trajectory.  Run it from a checkout::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--jobs 2] [--repeat 3]

Each backend is timed ``--repeat`` times and recorded with mean/std so
backend comparisons are not single-sample noise.  The worker backend is
measured three ways: ``worker-cold`` spawns a fresh pool per campaign
(interpreter start-up + trace preload in the timed region — the old
spawn-per-execute behaviour, kept on the trajectory so its cost stays
visible), while ``worker-warm-j1`` / ``worker-warm`` dispatch through
the process-lifetime shared pool after one untimed priming run, so they
measure steady-state dispatch (JSON round trips against pinned traces).
``worker-warm-j1`` isolates protocol overhead from parallel speedup.
``service`` submits through an in-process ``dist serve`` daemon, adding
the TCP service round trip and fair-share admission on top of warm
dispatch.  ``worker-warm-telemetry`` repeats the warm measurement on the
*same* shared pool with ``REPRO_LOG_FILE`` enabled — the guard that
keeps span recording and structured logging under 2% of the silent warm
path (the async sink makes this hold: the dispatch thread only enqueues
records; a poll-based writer thread serialises and writes them).  The
computed ``overhead_vs_warm`` ratio is recorded alongside its stats.

Each backend row keeps the raw per-repeat ``seconds`` vector alongside
the summary stats, so the perf ledger (``repro-sim perf record`` reads
this document as a legacy v0 profile) can run real statistical tests
instead of single-ratio comparisons.

Not a pytest module on purpose: perf numbers belong in a recorded
artifact the next PR can diff, not in a pass/fail gate (the gate is
``repro-sim perf check`` against ``BENCH_history/``, driven by CI;
``check_regression.py`` remains as the legacy ratio shim).  The cold
subprocess backends
pay interpreter start-up and workload regeneration, so on a grid this
small serial beats them — the warm pool is the configuration expected
to beat serial once jobs > 1.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import time

from repro.analysis.campaign import Campaign
from repro.scenarios import get_suite

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)


#: The bench-lifetime serve daemon behind the ``service`` datapoint
#: (started lazily by the first measurement, stopped by ``main``).
_DAEMON = None


def _service_backend(jobs: int):
    global _DAEMON
    from repro import dist

    if _DAEMON is None:
        _DAEMON = dist.ServeDaemon(
            address="127.0.0.1:0", jobs=jobs
        ).start()
    return dist.backend(
        "service", address=_DAEMON.address, tenant="bench"
    )


def _telemetry_backend(jobs: int):
    """The ``worker-warm`` backend with ``REPRO_LOG_FILE`` switched on.

    Dispatching through the *same* shared pool as ``worker-warm`` is the
    point: creating a second pool in one process measures a pool-count
    artifact several times larger than telemetry itself.  The shared
    workers were spawned before the env toggle, so they stay silent on
    disk — their spans still reach the dispatcher's log via the protocol
    replies, which is the recorded-on-both-ends path the guard cares
    about.  Measured last so the toggle cannot leak into the other
    datapoints; ``_teardown_telemetry`` undoes it.
    """
    global _DAEMON
    from repro.telemetry import log as telemetry_log

    if _DAEMON is not None:
        # The serve daemon's threads and workers add scheduling noise
        # well above the 2% the guard is trying to resolve; it has
        # already been measured by now (telemetry runs last), so take
        # it out of the process before timing.
        _DAEMON.stop()
        _DAEMON = None
    if os.environ.get(telemetry_log.FILE_ENV) is None:
        sink = os.path.join(
            tempfile.mkdtemp(prefix="repro-bench-telemetry-"),
            "telemetry.jsonl",
        )
        os.environ[telemetry_log.FILE_ENV] = sink
        telemetry_log.reset()
    return "worker"


def _teardown_telemetry() -> None:
    from repro.telemetry import log as telemetry_log

    os.environ.pop(telemetry_log.FILE_ENV, None)
    telemetry_log.reset()


def measurements(jobs: int):
    """The (label, make_backend, jobs, warm) datapoints on the trajectory.

    dirqueue is excluded: its packaging step writes traces to disk,
    which measures the filesystem more than the dispatcher.
    ``make_backend`` is a factory so each cold measurement gets a fresh
    backend (and therefore a fresh pool) instead of accidentally reusing
    warmed workers.  ``warm`` datapoints get one untimed priming run, so
    they record steady-state dispatch rather than first-spawn cost.
    ``service`` dispatches through a bench-lifetime ``dist serve``
    daemon, so it measures the TCP submit/collect round trip on top of
    ``worker-warm``'s dispatch cost.
    """
    from repro import dist

    return (
        ("serial", lambda: "serial", 1, False),
        ("process", lambda: "process", jobs, False),
        ("worker-cold", lambda: dist.backend("worker", warm=False),
         jobs, False),
        ("worker-warm-j1", lambda: "worker", 1, True),
        ("worker-warm", lambda: "worker", jobs, True),
        ("service", lambda: _service_backend(jobs), jobs, True),
        # Last on purpose: flips REPRO_LOG_FILE on, then dispatches
        # through the same shared pool as worker-warm.  Compared
        # against worker-warm, this is the telemetry guard — spans +
        # structured logging must stay within noise (<2%) of the
        # silent warm path.
        ("worker-warm-telemetry", lambda: _telemetry_backend(jobs),
         jobs, True),
    )


def time_backend(
    points, make_backend, jobs: int, repeat: int, warm: bool = False
) -> dict:
    """Wall-clock stats for *repeat* campaign runs on the backend.

    Warm measurements amortise each sample over several campaign runs:
    a steady-state dispatch is a couple of milliseconds, which a single
    sample cannot time reliably on a noisy CI host.
    """
    inner = 20 if warm else 1
    if warm:
        # Priming run outside the timed region: spawn the shared pool's
        # workers and preload the traces once.
        Campaign(points, workers=jobs, backend=make_backend()).run()
    times = []
    for _ in range(repeat):
        backend = make_backend()
        start = time.perf_counter()
        for _ in range(inner):
            results = Campaign(points, workers=jobs, backend=backend).run()
            assert len(results) == len(points)
        times.append((time.perf_counter() - start) / inner)
    mean = statistics.fmean(times)
    return {
        "jobs": jobs,
        "warm": warm,
        "repeats": repeat,
        # Raw per-repeat samples (already amortised over the inner
        # runs for warm backends): the perf ledger's statistical tests
        # (repro.perf.detect) run on these, not on the summary stats.
        "seconds": [round(t, 6) for t in times],
        "seconds_mean": round(mean, 3),
        "seconds_std": round(
            statistics.stdev(times) if len(times) > 1 else 0.0, 3
        ),
        "seconds_best": round(min(times), 3),
        "points_per_second": round(len(points) / mean, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="smoke")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_campaign.json"),
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")

    suite = get_suite(args.suite)
    points = suite.points()
    # Warm the in-process caches once so the serial numbers measure the
    # engine, not first-touch program generation (the subprocess
    # backends regenerate in their own processes either way).
    Campaign(points, backend="serial").run()

    timings = {}
    try:
        for label, make_backend, jobs, warm in measurements(args.jobs):
            stats = time_backend(
                points, make_backend, jobs, args.repeat, warm
            )
            timings[label] = stats
            print(
                f"{label:>15s} (jobs={jobs}): "
                f"{stats['seconds_mean']:6.2f}s "
                f"+/- {stats['seconds_std']:.2f}  "
                f"({stats['points_per_second']:5.2f} points/s)"
            )
    finally:
        if _DAEMON is not None:
            _DAEMON.stop()
        _teardown_telemetry()

    if "worker-warm" in timings and "worker-warm-telemetry" in timings:
        # Medians of the raw (unrounded) samples: at ~2 ms/campaign the
        # 3-decimal summary stats cannot resolve a 2% delta, and the
        # first sample after a toggle is routinely an outlier.
        silent = statistics.median(timings["worker-warm"]["seconds"])
        traced = statistics.median(
            timings["worker-warm-telemetry"]["seconds"]
        )
        overhead = (traced - silent) / silent if silent else 0.0
        timings["worker-warm-telemetry"]["overhead_vs_warm"] = round(
            overhead, 4
        )
        print(
            f"telemetry overhead on the warm path: {overhead:+.1%} "
            f"(target: <2%)"
        )

    document = {
        "benchmark": "campaign-backends",
        "suite": suite.name,
        "n_points": len(points),
        "n_instructions": suite.n_instructions,
        "warmup": suite.warmup,
        "python": platform.python_version(),
        "recorded": time.strftime("%Y-%m-%d", time.gmtime()),
        "backends": timings,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
