#!/usr/bin/env python
"""Campaign-backend perf baseline: serial vs process vs worker.

Times one full run of the ``smoke`` suite under each execution backend
and writes the measurements to ``BENCH_campaign.json`` at the repository
root — the first point of the campaign-throughput trajectory.  Run it
from a checkout::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--jobs 2]

Not a pytest module on purpose: perf numbers belong in a recorded
artifact the next PR can diff, not in a pass/fail gate.  The subprocess
backends pay interpreter start-up and workload regeneration, so on a
grid this small serial usually wins — the point of the baseline is to
make the crossover visible as suites grow.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.analysis.campaign import Campaign
from repro.scenarios import get_suite

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)

#: Backends on the trajectory.  dirqueue is excluded: its packaging step
#: writes traces to disk, which measures the filesystem more than the
#: dispatcher.
BACKENDS = ("serial", "process", "worker")


def time_backend(points, backend: str, jobs: int) -> float:
    """Wall-clock seconds for one campaign run on *backend*."""
    start = time.perf_counter()
    results = Campaign(points, workers=jobs, backend=backend).run()
    elapsed = time.perf_counter() - start
    assert len(results) == len(points)
    return elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="smoke")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_campaign.json"),
    )
    args = parser.parse_args(argv)

    suite = get_suite(args.suite)
    points = suite.points()
    # Warm the in-process caches once so the serial number measures the
    # engine, not first-touch program generation (the subprocess
    # backends regenerate in their own processes either way).
    Campaign(points, backend="serial").run()

    timings = {}
    for backend in BACKENDS:
        jobs = 1 if backend == "serial" else args.jobs
        seconds = time_backend(points, backend, jobs)
        timings[backend] = {
            "jobs": jobs,
            "seconds": round(seconds, 3),
            "points_per_second": round(len(points) / seconds, 2),
        }
        print(
            f"{backend:>8s} (jobs={jobs}): {seconds:6.2f}s  "
            f"({len(points) / seconds:5.2f} points/s)"
        )

    document = {
        "benchmark": "campaign-backends",
        "suite": suite.name,
        "n_points": len(points),
        "n_instructions": suite.n_instructions,
        "warmup": suite.warmup,
        "python": platform.python_version(),
        "recorded": time.strftime("%Y-%m-%d", time.gmtime()),
        "backends": timings,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
