#!/usr/bin/env python
"""Campaign-backend perf baseline: serial vs process vs worker.

Times full runs of the ``smoke`` suite under each execution backend and
writes the measurements to ``BENCH_campaign.json`` at the repository
root — the campaign-throughput trajectory.  Run it from a checkout::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--jobs 2] [--repeat 3]

Each backend is timed ``--repeat`` times and recorded with mean/std so
backend comparisons are not single-sample noise.  The worker backend is
measured twice — at ``jobs=1`` and at ``--jobs`` — so protocol overhead
(subprocess spawn + JSON-lines round trips) can be separated from
parallel speedup when reading the numbers.

Not a pytest module on purpose: perf numbers belong in a recorded
artifact the next PR can diff, not in a pass/fail gate (the gate is
``check_regression.py``, driven by CI).  The subprocess backends pay
interpreter start-up and workload regeneration, so on a grid this small
serial usually wins — the point of the baseline is to make the
crossover visible as suites grow.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

from repro.analysis.campaign import Campaign
from repro.scenarios import get_suite

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))
)


def measurements(jobs: int):
    """The (label, backend, jobs) datapoints on the trajectory.

    dirqueue is excluded: its packaging step writes traces to disk,
    which measures the filesystem more than the dispatcher.  worker-j1
    isolates the worker protocol's per-point overhead from its
    parallelism.
    """
    return (
        ("serial", "serial", 1),
        ("process", "process", jobs),
        ("worker-j1", "worker", 1),
        ("worker", "worker", jobs),
    )


def time_backend(points, backend: str, jobs: int, repeat: int) -> dict:
    """Wall-clock stats for *repeat* campaign runs on *backend*."""
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        results = Campaign(points, workers=jobs, backend=backend).run()
        times.append(time.perf_counter() - start)
        assert len(results) == len(points)
    mean = statistics.fmean(times)
    return {
        "jobs": jobs,
        "repeats": repeat,
        "seconds_mean": round(mean, 3),
        "seconds_std": round(
            statistics.stdev(times) if len(times) > 1 else 0.0, 3
        ),
        "seconds_best": round(min(times), 3),
        "points_per_second": round(len(points) / mean, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="smoke")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_campaign.json"),
    )
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")

    suite = get_suite(args.suite)
    points = suite.points()
    # Warm the in-process caches once so the serial numbers measure the
    # engine, not first-touch program generation (the subprocess
    # backends regenerate in their own processes either way).
    Campaign(points, backend="serial").run()

    timings = {}
    for label, backend, jobs in measurements(args.jobs):
        stats = time_backend(points, backend, jobs, args.repeat)
        timings[label] = stats
        print(
            f"{label:>10s} (jobs={jobs}): "
            f"{stats['seconds_mean']:6.2f}s +/- {stats['seconds_std']:.2f}  "
            f"({stats['points_per_second']:5.2f} points/s)"
        )

    document = {
        "benchmark": "campaign-backends",
        "suite": suite.name,
        "n_points": len(points),
        "n_instructions": suite.n_instructions,
        "warmup": suite.warmup,
        "python": platform.python_version(),
        "recorded": time.strftime("%Y-%m-%d", time.gmtime()),
        "backends": timings,
    }
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
