"""Figure 15: register replication under general balance steering.

Paper: only ~3.1 logical registers are mapped in both clusters on
average — far from the full-file replication of the Alpha 21264,
which is the scheme's register-file argument.
"""

from conftest import run_once

from repro.analysis import FIGURES, format_value_table
from repro.isa.registers import N_INT_REGS


def test_fig15_replication(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig15"](runner))
    print()
    print(
        format_value_table(
            "Figure 15: registers replicated in both clusters",
            data["benchmarks"],
            data["replication"],
            "regs/cycle",
            data["hmean"],
        )
    )
    print(f"\npaper: ~3.1 registers on average (vs {N_INT_REGS} full file)")
    assert 0 < data["hmean"] < N_INT_REGS / 2
