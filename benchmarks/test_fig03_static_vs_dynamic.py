"""Figure 3: static partitioning (Sastry et al.) vs dynamic LdSt slice.

Paper: static achieves ~3% (G-mean) while the dynamic LdSt slice steering
reaches ~16%; every program except m88ksim prefers the dynamic scheme.
"""

from conftest import run_once

from repro.analysis import FIGURES, format_speedup_table


def test_fig03_static_vs_dynamic(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig3"](runner))
    print()
    print(
        format_speedup_table(
            "Figure 3: static vs dynamic partitioning",
            data["benchmarks"],
            {"static (Sastry)": data["static"], "LdSt slice": data["dynamic"]},
            {
                "static (Sastry)": data["static_gmean"],
                "LdSt slice": data["dynamic_gmean"],
            },
            mean_label="G-mean",
        )
    )
    print(
        "\npaper: static +3%, dynamic +16% (G-mean); "
        "shape check: dynamic > static, both > 0"
    )
    assert data["dynamic_gmean"] > data["static_gmean"]
    assert data["static_gmean"] > 0
