"""Figure 16: general balance vs FIFO-based steering (Palacharla et al.).

Paper: general balance (+36%) clearly beats the FIFO-based scheme (+13%);
the gap is explained by communications (0.042 vs 0.162 per instruction)
at similar workload balance.
"""

from conftest import run_once

from repro.analysis import FIGURES, format_speedup_table


def test_fig16_fifo(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig16"](runner))
    print()
    print(
        format_speedup_table(
            "Figure 16: general balance vs FIFO-based steering",
            data["benchmarks"],
            {"FIFO-based": data["fifo"], "General bal": data["general"]},
            {
                "FIFO-based": data["fifo_hmean"],
                "General bal": data["general_hmean"],
            },
        )
    )
    print(
        f"\ncomms/instr: FIFO {data['fifo_comms']:.3f} vs "
        f"general {data['general_comms']:.3f} (paper: 0.162 vs 0.042)"
    )
    assert data["fifo_hmean"] > 0
    assert data["fifo_comms"] > data["general_comms"]
