"""Figure 5: communications per dynamic instruction for slice steering.

Paper: per-benchmark bars split into critical and non-critical; the Br
slice generates more communications than the LdSt slice, which explains
its slightly lower performance in Figure 4.
"""

from conftest import run_once

from repro.analysis import FIGURES


def test_fig05_slice_comms(benchmark, runner):
    data = run_once(benchmark, lambda: FIGURES["fig5"](runner))
    print()
    print("Figure 5: communications per dynamic instruction")
    print("------------------------------------------------")
    print(
        f"{'benchmark':>10s}{'LdSt crit':>11s}{'LdSt tot':>10s}"
        f"{'Br crit':>10s}{'Br tot':>9s}"
    )
    for bench in data["benchmarks"]:
        ldst = data["ldst"][bench]
        br = data["br"][bench]
        print(
            f"{bench:>10s}{ldst['critical']:>11.3f}{ldst['total']:>10.3f}"
            f"{br['critical']:>10.3f}{br['total']:>9.3f}"
        )
    print(
        f"{'mean':>10s}{data['ldst_mean_critical']:>11.3f}"
        f"{data['ldst_mean_total']:>10.3f}"
        f"{data['br_mean_critical']:>10.3f}{data['br_mean_total']:>9.3f}"
    )
    print("\npaper: Br slice communicates more than LdSt slice on average")
    assert 0 < data["ldst_mean_total"] < 0.5
    assert 0 < data["br_mean_total"] < 0.5
