"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures and probe the sensitivity of the
headline scheme to its empirically-chosen constants:

* the imbalance window/threshold (paper picked N=16, threshold=8),
* the number of inter-cluster buses (paper §3.8: one bus each way
  performs the same),
* per-cluster issue width,
* the priority scheme's critical-coverage target (paper: 50%).
"""

from dataclasses import replace

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, run_once

from repro import ProcessorConfig, simulate, simulate_baseline
from repro.core.steering import PrioritySliceBalanceSteering

BENCH = "gcc"


def _run(config=None, steering="general-balance"):
    return simulate(
        BENCH,
        steering=steering,
        config=config,
        n_instructions=BENCH_INSTRUCTIONS,
        warmup=BENCH_WARMUP,
    )


def _base():
    return simulate_baseline(
        BENCH, n_instructions=BENCH_INSTRUCTIONS, warmup=BENCH_WARMUP
    )


def test_ablation_imbalance_threshold(benchmark):
    """Sweep the strong-imbalance threshold around the paper's 8."""

    def sweep():
        base = _base()
        rows = {}
        for threshold in (2, 4, 8, 16, 32):
            config = replace(
                ProcessorConfig.default(), imbalance_threshold=threshold
            )
            rows[threshold] = _run(config).speedup_over(base)
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation: imbalance threshold (general balance, gcc)")
    for threshold, speedup in rows.items():
        marker = "  <- paper" if threshold == 8 else ""
        print(f"  threshold {threshold:>3d}: {speedup:+6.1%}{marker}")
    assert all(s > 0 for s in rows.values())


def test_ablation_imbalance_window(benchmark):
    """Sweep the I2 averaging window around the paper's 16."""

    def sweep():
        base = _base()
        rows = {}
        for window in (4, 8, 16, 32, 64):
            config = replace(
                ProcessorConfig.default(), imbalance_window=window
            )
            rows[window] = _run(config).speedup_over(base)
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation: I2 averaging window (general balance, gcc)")
    for window, speedup in rows.items():
        marker = "  <- paper" if window == 16 else ""
        print(f"  window {window:>3d}: {speedup:+6.1%}{marker}")
    assert all(s > 0 for s in rows.values())


def test_ablation_bypass_buses(benchmark):
    """Paper §3.8: one bus each way performs like three."""

    def sweep():
        base = _base()
        rows = {}
        for ports in (1, 2, 3, 6):
            config = replace(ProcessorConfig.default(), bypass_ports=ports)
            rows[ports] = _run(config).speedup_over(base)
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation: inter-cluster buses per direction (gcc)")
    for ports, speedup in rows.items():
        marker = "  <- paper" if ports == 3 else ""
        print(f"  {ports} buses: {speedup:+6.1%}{marker}")
    # The paper's claim: 1 bus performs at the same level as 3.
    assert abs(rows[1] - rows[3]) < 0.08


def test_ablation_issue_width(benchmark):
    """Cluster issue-width sensitivity of the clustered machine."""

    def sweep():
        base = _base()
        rows = {}
        for width in (2, 4, 6, 8):
            default = ProcessorConfig.default()
            config = replace(
                default,
                clusters=(
                    replace(default.clusters[0], issue_width=width),
                    replace(default.clusters[1], issue_width=width),
                ),
            )
            rows[width] = _run(config).speedup_over(base)
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation: per-cluster issue width (general balance, gcc)")
    for width, speedup in rows.items():
        marker = "  <- paper" if width == 4 else ""
        print(f"  width {width}: {speedup:+6.1%}{marker}")
    assert rows[4] > rows[2]  # 2-wide clusters choke


def test_ablation_priority_target(benchmark):
    """Sweep the priority scheme's critical-slice coverage target."""

    def sweep():
        base = _base()
        rows = {}
        for target in (0.25, 0.5, 0.75):
            scheme = PrioritySliceBalanceSteering(
                "ldst", target_fraction=target
            )
            rows[target] = _run(steering=scheme).speedup_over(base)
        return rows

    rows = run_once(benchmark, sweep)
    print("\nAblation: priority critical-coverage target (ldst, gcc)")
    for target, speedup in rows.items():
        marker = "  <- paper" if target == 0.5 else ""
        print(f"  target {target:.2f}: {speedup:+6.1%}{marker}")
    assert all(s > 0 for s in rows.values())
