#!/usr/bin/env python3
"""Quickstart: measure the headline result of the paper on one benchmark.

Simulates the conventional base machine and the clustered machine with
general balance steering (the paper's best scheme, §3.8) on the synthetic
``gcc`` stand-in, and prints the speed-up plus the statistics the paper
uses to explain it.

Run:  python examples/quickstart.py [benchmark]
"""

import sys

from repro import simulate, simulate_baseline, simulate_upper_bound

# Short windows keep the example snappy; bump these (the paper simulates
# 100M-instruction windows) for tighter numbers.
INSTRUCTIONS = 12000
WARMUP = 4000


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "gcc"

    print(f"simulating '{bench}' on three machines...")
    base = simulate_baseline(bench, n_instructions=INSTRUCTIONS, warmup=WARMUP)
    clustered = simulate(
        bench,
        steering="general-balance",
        n_instructions=INSTRUCTIONS,
        warmup=WARMUP,
    )
    upper = simulate_upper_bound(
        bench, n_instructions=INSTRUCTIONS, warmup=WARMUP
    )

    print()
    print(f"{'machine':<34s}{'IPC':>8s}{'speed-up':>10s}")
    print(f"{'conventional (naive int/FP)':<34s}{base.ipc:>8.3f}{'--':>10s}")
    print(
        f"{'clustered + general balance':<34s}{clustered.ipc:>8.3f}"
        f"{clustered.speedup_over(base):>+10.1%}"
    )
    print(
        f"{'16-way upper bound':<34s}{upper.ipc:>8.3f}"
        f"{upper.speedup_over(base):>+10.1%}"
    )
    print()
    print("why it works (paper §3.8):")
    print(
        f"  inter-cluster communications {clustered.comms_per_instr:.3f} "
        f"per instruction ({clustered.critical_comms_per_instr:.3f} critical)"
    )
    print(
        f"  registers replicated in both clusters: "
        f"{clustered.avg_replication:.1f} on average (Figure 15)"
    )
    print(
        f"  instructions steered to each cluster: {clustered.steered[0]} / "
        f"{clustered.steered[1]}"
    )


if __name__ == "__main__":
    main()
