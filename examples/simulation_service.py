#!/usr/bin/env python3
"""Tour of simulation-as-a-service (repro.dist.serve).

The multi-tenant daemon story on one machine, in four acts:

1. start a ``ServeDaemon`` — the long-running dispatcher behind
   ``repro-sim dist serve`` — owning a small shared worker fleet;
2. submit two tenants' campaigns concurrently through the ``service``
   backend; the daemon's weighted-round-robin admission interleaves
   their chunks so neither backlog starves the other;
3. read the daemon's status endpoint: per-tenant queue depths and
   served counts, the dispatch log, and the fleet's transport/address
   columns;
4. verify both tenants' results are point-for-point identical to an
   in-process serial run — the service is an optimisation, never a
   semantic.

On real deployments the daemon runs as ``repro-sim dist serve
--address HOST:PORT -j N`` (plus ``--worker HOST:PORT`` for remote
listen-mode workers), and any client machine reaches it with
``repro-sim campaign run --backend service --service-address
HOST:PORT``.

Run:  python examples/simulation_service.py [suite] [n_instructions]
"""

import sys
import threading

from repro import dist
from repro.analysis.campaign import Campaign
from repro.scenarios import get_suite


def main() -> None:
    suite_name = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 1200
    warmup = max(200, n // 4)

    suite = get_suite(suite_name)
    points = suite.points(n_instructions=n, warmup=warmup)
    print(
        f"suite {suite.name!r}: {len(points)} points over "
        f"{len(suite.benches)} bench(es) x {len(suite.schemes)} scheme(s)"
    )

    # --- Act 1: the daemon -------------------------------------------
    daemon = dist.ServeDaemon(address="127.0.0.1:0", jobs=2).start()
    print(f"daemon serving on {daemon.address} ({daemon.n_slots} slots)")

    try:
        # --- Act 2: two tenants submit concurrently ------------------
        outcome = {}

        def tenant_run(name: str) -> None:
            backend = dist.backend(
                "service", address=daemon.address, tenant=name
            )
            outcome[name] = Campaign(points, backend=backend).run()

        tenants = ["alice", "bob"]
        threads = [
            threading.Thread(target=tenant_run, args=(name,))
            for name in tenants
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # --- Act 3: the status endpoint ------------------------------
        status = daemon.status()
        for name, row in sorted(status["tenants"].items()):
            print(
                f"tenant {name}: {row['points_served']} point(s) served, "
                f"{row['dispatched_chunks']} chunk(s) dispatched "
                f"(weight {row['weight']})"
            )
        print(f"dispatch order: {' '.join(status['dispatch_log'])}")
        for worker in status["pool"]["workers"]:
            print(
                f"worker {worker['transport']} {worker['address']}: "
                f"{worker['points_served']} point(s)"
            )
    finally:
        daemon.stop()

    # --- Act 4: identical to serial ----------------------------------
    serial = Campaign(points, backend="serial").run()
    reference = [(r.point, r.result) for r in serial]
    for name in tenants:
        identical = [
            (r.point, r.result) for r in outcome[name]
        ] == reference
        print(
            f"tenant {name}'s results are "
            + ("identical to the serial run" if identical else "DIFFERENT")
            + f" ({len(reference)} points)"
        )
        if not identical:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
