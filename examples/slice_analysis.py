#!/usr/bin/env python3
"""Slice anatomy: offline RDG analysis vs runtime slice detection.

Builds the register dependence graph of a synthetic benchmark (paper
§3.1), computes the *static* LdSt and Br slices with the reaching-
definitions analysis the static comparator uses, then replays the
dynamic instruction stream through the paper's runtime tables (Figure 10
hardware) and reports how the dynamically-discovered slice converges —
and stays smaller than the conservative static one, which is the paper's
argument for dynamic partitioning (Figure 3).

Run:  python examples/slice_analysis.py [benchmark]
"""

import sys

from repro.core.rdg import br_slice, build_rdg, ldst_slice
from repro.core.slices import ParentTable, SliceFlagTable
from repro.isa import DynInst
from repro.workloads import workload


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "li"
    wl = workload(bench)
    program = wl.program
    total = program.num_instructions

    graph = build_rdg(program)
    static_ldst = ldst_slice(program, graph)
    static_br = br_slice(program, graph)
    print(f"{bench}: {total} static instructions, "
          f"{graph.number_of_edges()} RDG edges")
    print(
        f"static slices: LdSt {len(static_ldst)}/{total} "
        f"({len(static_ldst) / total:.0%}), "
        f"Br {len(static_br)}/{total} ({len(static_br) / total:.0%})"
    )

    # Replay the dynamic stream through the runtime tables and sample the
    # discovered slice size as it converges.
    parents = ParentTable()
    flags = SliceFlagTable("ldst")
    trace = wl.trace()
    checkpoints = (1000, 5000, 20000, 50000)
    executed = 0
    print("runtime LdSt slice discovery (flag-table hardware, §3.3):")
    for limit in checkpoints:
        while executed < limit:
            record = next(trace)
            dyn = DynInst(executed, record.inst)
            flags.observe(dyn, parents)
            parents.note_decode(dyn)
            executed += 1
        discovered = sum(
            1 for inst in program.all_instructions() if flags.in_slice(inst.pc)
        )
        print(
            f"  after {limit:>6d} instructions: {discovered}/{total} "
            f"static pcs flagged ({discovered / total:.0%})"
        )
    print(
        "the dynamic table tracks only executed paths, so it stays below "
        "the conservative static slice — the effect behind Figure 3."
    )


if __name__ == "__main__":
    main()
