#!/usr/bin/env python3
"""Compare every cluster-assignment mechanism on one benchmark.

Reproduces the paper's overall narrative in one table: the naive and
modulo strawmen, the static comparator, the slice-steering family
(§3.3-3.7), general balance steering (§3.8), and the FIFO-based
comparison scheme (§3.9), all against the same conventional baseline.

All schemes run as one campaign, so the benchmark's workload trace is
generated once and replayed to every scheme.  (One benchmark means one
shared trace, so this grid always runs serially; multi-benchmark
campaigns are where worker processes pay off — see ``repro-sim
campaign -j``.)

The benchmark may be any member of the scenario corpus — a SpecInt95
stand-in or a stress workload such as ``pchase-heavy`` or
``branchy-hostile`` (see ``repro-sim scenarios list``).

Run:  python examples/steering_comparison.py [benchmark] [n_instructions]
"""

import sys

from repro import available_schemes, simulate_baseline
from repro.analysis import Campaign, expand_grid
from repro.scenarios import corpus_members, family_of

#: Presentation order: roughly the order the paper introduces the schemes.
ORDER = [
    "modulo",
    "static-ldst",
    "ldst-slice",
    "br-slice",
    "ldst-nonslice-balance",
    "br-nonslice-balance",
    "ldst-slice-balance",
    "br-slice-balance",
    "ldst-priority",
    "br-priority",
    "general-balance",
    "fifo",
]


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 10000
    warmup = max(2000, n // 3)

    family = family_of(bench)
    if family is None:
        corpus = ", ".join(
            member
            for members in corpus_members().values()
            for member in members
        )
        sys.exit(f"unknown workload {bench!r}; corpus: {corpus}")

    base = simulate_baseline(bench, n_instructions=n, warmup=warmup)
    print(
        f"benchmark {bench} (family {family}): "
        f"conventional base IPC = {base.ipc:.3f}"
    )
    print(
        f"{'scheme':>24s}{'speed-up':>10s}{'comm/i':>9s}{'crit/i':>9s}"
        f"{'repl':>7s}"
    )
    assert set(ORDER) <= set(available_schemes())
    points = expand_grid([bench], ORDER, n_instructions=n, warmup=warmup)
    results = Campaign(points).run()
    for run in results:
        result = run.result
        print(
            f"{run.point.scheme:>24s}{result.speedup_over(base):>+10.1%}"
            f"{result.comms_per_instr:>9.3f}"
            f"{result.critical_comms_per_instr:>9.3f}"
            f"{result.avg_replication:>7.2f}"
        )


if __name__ == "__main__":
    main()
