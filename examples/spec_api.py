"""Declarative experiment specs: the repro.run facade end to end.

Shows the three pieces of the spec layer working together:

1. the machine registry — parametric variants like ``bypass-latency-3``
   resolve by name anywhere a machine string is accepted;
2. dotted-path overrides — ``clusters.0.iq_size`` narrows one cluster's
   window without touching the other;
3. suite data files — a grid exported to JSON re-runs point-for-point
   identically through an incremental store.

Usage::

    python examples/spec_api.py [bench] [n_instructions]
"""

import sys
import tempfile
from pathlib import Path

import repro
from repro.spec import MachineSpec, RunSpec, SuiteSpec


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
    warmup = max(150, n // 4)

    # -- 1. one declarative run -----------------------------------------
    spec = RunSpec(bench=bench, scheme="general-balance",
                   n_instructions=n, warmup=warmup)
    base = repro.run(spec)
    print(f"{bench}/general-balance on 'clustered': IPC {base.ipc:.3f}")

    # -- 2. machine registry + dotted overrides -------------------------
    print("\nmachine variants (same bench, same scheme):")
    variants = [
        MachineSpec("bypass-latency-3"),
        MachineSpec("clustered", {"clusters.0.iq_size": 16}),
        MachineSpec("clustered", {"l1d.size_kb": 8}),
    ]
    for machine in variants:
        result = repro.run(
            RunSpec(bench=bench, scheme="general-balance", machine=machine,
                    n_instructions=n, warmup=warmup)
        )
        delta = result.ipc / base.ipc - 1.0
        print(f"  {machine.label:<42s} IPC {result.ipc:.3f} ({delta:+.1%})")

    # -- 3. a suite data file, run twice through one store ---------------
    suite = SuiteSpec(
        name="spec-api-demo",
        description="two schemes on one bench, as a data file",
        benches=(bench,),
        schemes=("modulo", "general-balance"),
        n_instructions=n,
        warmup=warmup,
    )
    with tempfile.TemporaryDirectory() as tmp:
        suite_file = str(Path(tmp) / "demo-suite.json")
        store = str(Path(tmp) / "demo-store.json")
        suite.save(suite_file)
        loaded = SuiteSpec.load(suite_file)
        print(f"\nsuite file round trip: loaded == original: "
              f"{loaded == suite}")
        first = repro.run(loaded, store=store)
        again = repro.run(loaded, store=store, resume=True)
        print(f"first run simulated {first.n_simulated} point(s); "
              f"resumed run simulated {again.n_simulated}, "
              f"reused {again.n_cached} from the store")


if __name__ == "__main__":
    main()
