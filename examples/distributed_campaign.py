#!/usr/bin/env python3
"""Tour of the distributed execution pipeline (repro.dist).

The full multi-host story on one machine, in four acts:

1. expand a scenario suite into campaign points and *package* them into
   a job directory — a manifest, claim tokens, and one exported
   ``.rtrace`` per (bench, seed), so a worker host needs neither the
   workload generator nor its RNG;
2. run two *workers* against the shared directory concurrently; they
   claim points by atomic rename, replay the packaged traces, and write
   partial stores;
3. *merge* the partial stores back into one result store, in grid
   order, with resume semantics;
4. verify the merged results are point-for-point identical to an
   in-process serial run — distribution is an optimisation, never a
   semantic.

On real clusters the same three stages run as ``repro-sim dist
package|worker|merge`` with the job directory on a shared filesystem;
`run_campaign(..., backend="worker")` covers the single-host case with
persistent protocol subprocesses instead.

Run:  python examples/distributed_campaign.py [suite] [n_instructions]
"""

import sys
import tempfile
import threading

from repro.analysis.campaign import Campaign
from repro.dist import job_status, merge_job, package_job, run_worker
from repro.scenarios import get_suite


def main() -> None:
    suite_name = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 1200
    warmup = max(200, n // 4)

    suite = get_suite(suite_name)
    points = suite.points(n_instructions=n, warmup=warmup)
    print(
        f"suite {suite.name!r}: {len(points)} points over "
        f"{len(suite.benches)} bench(es) x {len(suite.schemes)} scheme(s)"
    )

    with tempfile.TemporaryDirectory(prefix="repro-dist-") as job_dir:
        # --- Act 1: package ------------------------------------------
        job = package_job(points, job_dir, description=f"example {suite.name}")
        print(f"packaged {job.n_points} point(s), {job.n_traces} trace(s)")
        print(f"  before: {job_status(job_dir).describe()}")

        # --- Act 2: two workers race on the shared queue -------------
        workers = [
            threading.Thread(
                target=run_worker,
                args=(job_dir,),
                kwargs={"worker_id": f"worker-{i}"},
            )
            for i in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        print(f"  after:  {job_status(job_dir).describe()}")

        # --- Act 3: merge --------------------------------------------
        merged = merge_job(job_dir)
        print(f"merged {merged.describe()}")
        results = merged.results()
        for run in results:
            print(f"  {run.result.summary()}")

        # --- Act 4: identical to serial ------------------------------
        serial = Campaign(points, backend="serial").run()
        identical = [(r.point, r.result) for r in results] == [
            (r.point, r.result) for r in serial
        ]
        print(
            "merged store is "
            + ("identical to the serial run" if identical else "DIFFERENT")
            + f" ({len(results)} points)"
        )
        if not identical:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
