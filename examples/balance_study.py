#!/usr/bin/env python3
"""Workload-balance study: reproduce the distribution plots (Figs 6/9/12).

For a selection of steering schemes, plots (in ASCII) the per-cycle
distribution of ``#ready FP - #ready INT`` — the paper's workload-balance
metric.  Modulo steering shows the bell-shaped near-perfect balance, plain
slice steering the skewed distributions that motivate the balance schemes,
and slice balance steering recovers the bell without modulo's
communication cost.

Run:  python examples/balance_study.py [benchmark]
"""

import sys

from repro import simulate
from repro.analysis import format_balance_histogram

SCHEMES = ("ldst-slice", "br-slice", "modulo", "ldst-slice-balance")


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    distributions = {}
    comms = {}
    for scheme in SCHEMES:
        result = simulate(
            bench, steering=scheme, n_instructions=10000, warmup=4000
        )
        distributions[scheme] = result.balance_distribution
        comms[scheme] = result.comms_per_instr
    print(
        format_balance_histogram(
            f"ready-count difference distribution ({bench})",
            distributions,
            max_width=26,
        )
    )
    print()
    print("communications per instruction (the cost of balance):")
    for scheme in SCHEMES:
        print(f"  {scheme:<22s}{comms[scheme]:6.3f}")


if __name__ == "__main__":
    main()
