#!/usr/bin/env python3
"""Extending the library: write and evaluate your own steering scheme.

The steering interface (:class:`repro.SteeringScheme`) is the paper's
hardware block of Figure 1; anything implementing
``choose_cluster(self, ctx, dyn)`` over the documented
:class:`~repro.core.steering.context.SteeringContext` read-view can be
simulated (legacy ``choose(self, dyn, machine)`` still works for one
more release, with a deprecation warning).  This example builds a
"sticky affinity" scheme — follow the operands, but flip to the other
cluster only after K consecutive imbalanced cycles — registers it, and
races it against the paper's general balance steering.

Run:  python examples/custom_scheme.py [benchmark]
"""

import sys

from repro import (
    SteeringScheme,
    register_scheme,
    simulate,
    simulate_baseline,
)
from repro.core.balance import ImbalanceEstimator
from repro.core.steering import affinity_cluster, least_loaded


class StickyAffinitySteering(SteeringScheme):
    """Operand affinity with hysteresis on the balance override.

    The paper's general balance steering reacts to its counter instantly;
    this variant requires the imbalance to persist ``patience`` cycles
    before overriding affinity, trading balance reactivity for fewer
    communications.
    """

    name = "sticky-affinity"

    def __init__(self, patience: int = 4) -> None:
        self.patience = patience

    def reset(self, machine) -> None:
        super().reset(machine)
        config = machine.config
        self.imbalance = ImbalanceEstimator(
            window=config.imbalance_window,
            threshold=config.imbalance_threshold,
            issue_widths=[c.issue_width for c in config.clusters],
        )
        self._streak = 0

    def choose_cluster(self, ctx, dyn) -> int:
        if self._streak >= self.patience:
            return self.imbalance.preferred_cluster
        cluster, tie = affinity_cluster(dyn, ctx)
        if tie:
            return least_loaded(ctx)
        return cluster

    def on_dispatch(self, ctx, dyn, cluster) -> None:
        if not dyn.is_copy:
            self.imbalance.on_steer(cluster)

    def on_cycle(self, machine) -> None:
        self.imbalance.on_cycle(machine.ready_counts)
        if self.imbalance.strongly_imbalanced:
            self._streak += 1
        else:
            self._streak = 0


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    register_scheme("sticky-affinity", StickyAffinitySteering)

    base = simulate_baseline(bench, n_instructions=10000, warmup=4000)
    print(f"{bench}: base IPC {base.ipc:.3f}")
    for scheme in ("general-balance", "sticky-affinity"):
        result = simulate(
            bench, steering=scheme, n_instructions=10000, warmup=4000
        )
        print(
            f"  {scheme:<18s} speed-up {result.speedup_over(base):+6.1%}  "
            f"comms/instr {result.comms_per_instr:.3f}"
        )


if __name__ == "__main__":
    main()
