#!/usr/bin/env python3
"""Tour of the scenario corpus: families, suites, and portable traces.

Three short acts:

1. walk the workload-family registry and show how the stress families
   bracket the SpecInt95 stand-ins (a pointer-chase chain versus a wide
   high-ILP loop under the same scheme);
2. run a named scenario suite through the campaign engine twice — the
   second run resumes from the first's store and simulates nothing;
3. export one workload's committed path to an ``.rtrace`` file, re-import
   it under a new name, and show the replay reproduces the identical IPC
   without regenerating the program.

Run:  python examples/scenario_corpus.py [suite] [n_instructions]
"""

import os
import sys
import tempfile

from repro import simulate
from repro.scenarios import (
    corpus_members,
    export_trace,
    get_suite,
    register_trace,
    run_suite,
)
from repro.workloads import (
    clear_workload_cache,
    reset_trace_stats,
    trace_build_counts,
    workload,
)


def main() -> None:
    suite_name = sys.argv[1] if len(sys.argv) > 1 else "smoke"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 1500
    warmup = max(300, n // 4)

    # --- Act 1: the corpus -------------------------------------------
    print("workload corpus:")
    for family, members in corpus_members().items():
        if members:
            print(f"  {family:>14s}: {', '.join(members)}")
    contrast = ("pchase-extreme", "ilp-wide")
    print("\ncorpus extremes under general-balance:")
    for bench in contrast:
        result = simulate(
            bench, steering="general-balance",
            n_instructions=n, warmup=warmup,
        )
        print(
            f"  {bench:>14s}: IPC {result.ipc:5.2f}, "
            f"comms/instr {result.comms_per_instr:.3f}"
        )

    # --- Act 2: a suite, run incrementally ---------------------------
    suite = get_suite(suite_name)
    print(f"\nsuite {suite.name!r}: {suite.description}")
    store = os.path.join(tempfile.mkdtemp(), f"{suite.name}.json")
    first = run_suite(
        suite.name, n_instructions=n, warmup=warmup,
        store=store, resume=True,
    )
    print(f"  first run: simulated {first.n_simulated} point(s)")
    second = run_suite(
        suite.name, n_instructions=n, warmup=warmup,
        store=store, resume=True,
    )
    print(
        f"  second run: reused {second.n_cached} point(s) from the store, "
        f"simulated {second.n_simulated}"
    )
    for run in second.results:
        result = run.result
        print(
            f"  {run.point.bench:>14s} {run.point.scheme:<18s} "
            f"IPC {result.ipc:5.2f}"
        )

    # --- Act 3: a portable trace -------------------------------------
    bench = suite.benches[0]
    scheme = suite.schemes[-1]
    live = simulate(bench, steering=scheme, n_instructions=n, warmup=warmup)
    path = os.path.join(tempfile.mkdtemp(), f"{bench}.rtrace")
    meta = export_trace(workload(bench), path, n + warmup)
    print(f"\nexported {meta.describe()}")
    print(f"  file size: {os.path.getsize(path)} bytes")

    clear_workload_cache()  # a fresh machine: no generated programs
    reset_trace_stats()
    replayed = register_trace(path, name=f"{bench}-replay")
    frozen = simulate(
        replayed, steering=scheme, n_instructions=n, warmup=warmup
    )
    rebuilt = sum(trace_build_counts().values())
    print(
        f"  live IPC {live.ipc:.4f} vs replayed IPC {frozen.ipc:.4f} "
        f"(traces regenerated: {rebuilt})"
    )
    assert live.ipc == frozen.ipc and rebuilt == 0
    print("  identical — the trace is the workload")


if __name__ == "__main__":
    main()
