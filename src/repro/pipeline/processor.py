"""The cycle-level processor model.

One :class:`Processor` simulates the machine of Figure 1: a centralized
fetch/decode/rename front end, a steering stage choosing a cluster per
instruction, two clusters with private windows, functional units and
register files, inter-cluster bypasses driven by copy instructions, a
central disambiguation queue, and in-order commit from a shared ROB.

Stage evaluation order within :meth:`step` is reverse pipeline order
(commit, memory, issue, dispatch, fetch), the standard trick that lets a
cycle-driven simulator model same-cycle hand-offs without double-advancing
an instruction in one cycle.

Two issue schedulers implement identical timing semantics:

* ``event`` (default) — event-driven wakeup/select.  Window entries
  carry pending-operand counters, producers carry consumer lists, and a
  completion calendar (:mod:`repro.pipeline.wakeup`) wakes consumers on
  the cycle their last operand completes; the issue stage walks only the
  per-queue ready sets.  Work per cycle is proportional to completions
  and ready instructions, not window size x operands.
* ``scan`` — the reference implementation: re-scan every window entry
  and re-poll every provider's ``complete_cycle`` each cycle.  Retained
  so the equivalence suite can assert the event path is cycle-for-cycle
  identical, and selectable via ``REPRO_SCHEDULER=scan`` for A/B runs.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, List, Optional

from ..cluster import BypassNetwork, FifoIssueQueue, FUPool, IssueQueue
from ..errors import SimulationError, SteeringError
from ..frontend import CombinedPredictor, FetchUnit
from ..isa import DynInst, InstrClass
from ..isa.registers import N_FP_REGS, N_INT_REGS
from ..memory import (
    DisambiguationQueue,
    MemoryHierarchy,
    MemoryTiming,
    SetAssocCache,
)
from ..rename import MapTable, Renamer, make_free_lists
from ..workloads import Workload
from .config import ProcessorConfig
from .rob import ReorderBuffer
from .stats import SimStats
from .wakeup import WakeupCalendar

#: Cycles without a commit after which the model declares itself wedged.
_DEADLOCK_LIMIT = 20000

#: Issue-scheduler implementations (see module docstring).
SCHEDULERS = ("event", "scan")


class Processor:
    """Timing model of the two-cluster machine."""

    def __init__(
        self,
        workload: Workload,
        config: ProcessorConfig,
        steering,
        scheduler: Optional[str] = None,
    ) -> None:
        self.workload = workload
        self.config = config
        self.steering = steering
        self.program = workload.program
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER") or "event"
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
            )
        self.scheduler = scheduler
        self._event_driven = scheduler == "event"
        self._calendar = WakeupCalendar(self._on_ready)

        timing = MemoryTiming(
            l1_hit=1,
            l1_miss_penalty=config.l1_miss_penalty,
            memory_first_chunk=config.memory_first_chunk,
            memory_interchunk=config.memory_interchunk,
            bus_bytes=config.bus_bytes,
        )
        self.hierarchy = MemoryHierarchy(
            l1i=SetAssocCache(
                config.l1i.size_kb * 1024,
                config.l1i.assoc,
                config.l1i.line_bytes,
                name="L1I",
            ),
            l1d=SetAssocCache(
                config.l1d.size_kb * 1024,
                config.l1d.assoc,
                config.l1d.line_bytes,
                name="L1D",
            ),
            l2=SetAssocCache(
                config.l2.size_kb * 1024,
                config.l2.assoc,
                config.l2.line_bytes,
                name="L2",
            ),
            timing=timing,
            dcache_ports=config.dcache_ports,
        )
        self.predictor = CombinedPredictor()
        self.fetch_unit = FetchUnit(
            workload.trace(),
            self.hierarchy,
            self.predictor,
            fetch_width=config.fetch_width,
            redirect_penalty=config.redirect_penalty,
        )
        self.map_table = MapTable()
        self.free_lists = make_free_lists(
            [c.phys_regs for c in config.clusters],
            [N_INT_REGS, N_FP_REGS],
        )
        self.renamer = Renamer(
            self.map_table, self.free_lists, allow_copies=config.allow_copies
        )
        if config.fifo_issue:
            self.iqs = [
                FifoIssueQueue(
                    config.n_fifos, config.fifo_depth, name=f"fifo-iq{i}"
                )
                for i in range(2)
            ]
        else:
            self.iqs = [
                IssueQueue(config.clusters[i].iq_size, name=f"iq{i}")
                for i in range(2)
            ]
        self.fus = [
            FUPool(
                c.n_simple_alu,
                c.has_complex_int,
                c.n_fp_alu,
                c.has_fp_complex,
                name=f"cluster{i}",
            )
            for i, c in enumerate(config.clusters)
        ]
        self.bypass = BypassNetwork(
            ports_per_direction=config.bypass_ports,
            latency=config.bypass_latency,
        )
        self.lsq = DisambiguationQueue(
            self.hierarchy,
            max_outstanding_misses=config.max_outstanding_misses,
            on_complete=self._complete,
            event_driven=self._event_driven,
        )
        self.rob = ReorderBuffer(config.max_in_flight)
        self.decode_buffer: Deque[DynInst] = deque()
        self.stats = SimStats()
        self.cycle = 0
        self.ready_counts: List[int] = [0, 0]
        self._last_commit_cycle = 0
        self._issue_stage = (
            self._issue_event if self._event_driven else self._issue_scan
        )
        steering.reset(self)

    # ------------------------------------------------------------------
    # Steering-visible helpers
    # ------------------------------------------------------------------
    def presence_mask(self, reg: int) -> int:
        """Bit mask of clusters where logical register *reg* resides."""
        return self.map_table.presence_mask(reg)

    def iq_occupancy(self, cluster: int) -> int:
        """Instructions currently waiting in *cluster*'s window."""
        return len(self.iqs[cluster])

    # ------------------------------------------------------------------
    # Public driver
    # ------------------------------------------------------------------
    def run(self, n_instructions: int, warmup: int = 0):
        """Simulate; return a :class:`SimResult` for the measured window.

        *warmup* instructions are committed first (training caches, the
        branch predictor and the steering tables) without being counted.
        """
        if warmup > 0:
            self._run_until(warmup)
        self.stats = SimStats()
        self.stats.snapshot_environment(self)
        self._run_until(n_instructions)
        return self.stats.finalize(
            self, self.workload.name, getattr(self.steering, "name", "?")
        )

    def _run_until(self, n_committed: int) -> None:
        stats = self.stats
        while stats.committed < n_committed:
            self.step()
            if self.cycle - self._last_commit_cycle > _DEADLOCK_LIMIT:
                raise SimulationError(
                    f"no commit for {_DEADLOCK_LIMIT} cycles at cycle "
                    f"{self.cycle} (scheme "
                    f"{getattr(self.steering, 'name', '?')!r})"
                )

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle."""
        cycle = self.cycle
        self._commit(cycle)
        self.lsq.step(cycle)
        self._issue_stage(cycle)
        self._dispatch(cycle)
        self._fetch(cycle)
        self.steering.on_cycle(self)
        self.stats.on_cycle(
            self.map_table.count_replicated(),
            self.ready_counts,
            rob_occupancy=len(self.rob),
            iq_occupancy=[len(self.iqs[0]), len(self.iqs[1])],
        )
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    def _commit(self, cycle: int) -> None:
        budget = self.config.retire_width
        rob = self.rob
        while budget and not rob.empty:
            head = rob.head
            cc = head.complete_cycle
            if cc < 0 or cc > cycle:
                break
            if head.cls is InstrClass.STORE:
                if not self.lsq.commit_store(head, cycle):
                    break  # no D-cache port this cycle
            elif head.cls is InstrClass.LOAD:
                self.lsq.retire_load(head)
            self.renamer.release_at_commit(head)
            head.commit_cycle = cycle
            self.stats.on_commit(head)
            self.steering.on_commit(head)
            rob.pop()
            self._last_commit_cycle = cycle
            budget -= 1

    # ------------------------------------------------------------------
    # Issue: event-driven wakeup/select (default)
    # ------------------------------------------------------------------
    def _on_ready(self, dyn: DynInst) -> None:
        """Wakeup-calendar callback: *dyn*'s last pending operand done."""
        self.iqs[dyn.cluster].mark_ready(dyn)

    def _complete(self, dyn: DynInst, complete_cycle: int, cycle: int) -> None:
        """Record *dyn*'s completion, waking its consumers by event.

        Only potential providers (register writers and copies) go through
        the calendar; branches and stores can never acquire waiters, so
        their completion is a plain assignment.  The scan scheduler polls
        instead of waking and bypasses the calendar entirely.
        """
        if self._event_driven and (dyn.is_copy or dyn.inst.dst is not None):
            self._calendar.complete(dyn, complete_cycle, cycle)
        else:
            dyn.complete_cycle = complete_cycle

    def _issue_event(self, cycle: int) -> None:
        """Issue from the per-queue ready sets (no window scan).

        The calendar fires first, so every instruction whose last operand
        completes at *cycle* is in its queue's ready set before
        selection; candidates are snapshotted per cluster in age order,
        exactly the readiness the reference scan would observe.
        """
        self._calendar.fire(cycle)
        ready_counts = [0, 0]
        bypass = self.bypass
        stats = self.stats
        for cluster in (0, 1):
            iq = self.iqs[cluster]
            # The live ready list, oldest first.  Within this cluster's
            # turn it only shrinks (via issue_ready): same-cluster heads
            # exposed by an issue are deferred to the next cycle, and
            # same-cycle wakeups (zero-latency bypasses) always target
            # the *other* cluster — so an index walk is safe and touches
            # only the entries the select logic actually considers.
            ready = iq.ready_view()
            n_ready = len(ready)
            ready_counts[cluster] = n_ready
            if not n_ready:
                continue
            width = self.config.clusters[cluster].issue_width
            fu = self.fus[cluster]
            issued = 0
            index = 0
            while index < len(ready) and issued < width:
                dyn = ready[index][1]
                if dyn.is_copy:
                    if not bypass.claim(cycle, cluster):
                        index += 1
                        continue
                    dyn.issue_cycle = cycle
                    dyn.issued = True
                    # A zero-latency bypass completes *this* cycle: the
                    # calendar then wakes the remote consumer at once,
                    # in time for the other cluster's selection below —
                    # the same visibility the in-order scan provides.
                    self._complete(dyn, cycle + bypass.latency, cycle)
                    stats.copies_issued += 1
                    iq.issue_ready(index)
                    issued += 1
                    continue
                if not fu.can_issue(dyn, cycle):
                    index += 1
                    continue
                fu.issue(dyn, cycle)
                dyn.issue_cycle = cycle
                dyn.issued = True
                cls = dyn.cls
                if cls is InstrClass.LOAD:
                    # complete_cycle is set by the disambiguation queue,
                    # which parks the load until its address is ready.
                    dyn.ea_done_cycle = cycle + 1
                    self.lsq.queue_address(dyn, cycle + 1)
                elif cls is InstrClass.STORE:
                    dyn.ea_done_cycle = cycle + 1
                    self._complete(dyn, cycle + 1, cycle)
                else:
                    self._complete(dyn, cycle + dyn.inst.latency, cycle)
                self._mark_critical_copies(dyn, cycle)
                iq.issue_ready(index)
                issued += 1
        self.ready_counts = ready_counts

    # ------------------------------------------------------------------
    # Issue: reference full-scan scheduler (kept for exactness testing)
    # ------------------------------------------------------------------
    def _issue_scan(self, cycle: int) -> None:
        ready_counts = [0, 0]
        bypass = self.bypass
        for cluster in (0, 1):
            iq = self.iqs[cluster]
            width = self.config.clusters[cluster].issue_width
            fu = self.fus[cluster]
            issued = 0
            for dyn in iq.entries_oldest_first():
                ready = True
                for p in dyn.providers:
                    cc = p.complete_cycle
                    if cc < 0 or cc > cycle:
                        ready = False
                        break
                if not ready:
                    continue
                ready_counts[cluster] += 1
                if issued >= width:
                    continue
                if dyn.is_copy:
                    if not bypass.claim(cycle, cluster):
                        continue
                    dyn.issue_cycle = cycle
                    dyn.issued = True
                    dyn.complete_cycle = cycle + bypass.latency
                    self.stats.copies_issued += 1
                    iq.remove(dyn)
                    issued += 1
                    continue
                if not fu.can_issue(dyn, cycle):
                    continue
                fu.issue(dyn, cycle)
                dyn.issue_cycle = cycle
                dyn.issued = True
                cls = dyn.cls
                if cls is InstrClass.LOAD:
                    dyn.ea_done_cycle = cycle + 1
                    # complete_cycle is set by the disambiguation queue
                elif cls is InstrClass.STORE:
                    dyn.ea_done_cycle = cycle + 1
                    dyn.complete_cycle = cycle + 1
                else:
                    dyn.complete_cycle = cycle + dyn.inst.latency
                self._mark_critical_copies(dyn, cycle)
                iq.remove(dyn)
                issued += 1
        self.ready_counts = ready_counts

    def _mark_critical_copies(self, dyn: DynInst, cycle: int) -> None:
        """Flag copies that delayed this consumer (paper §3.4).

        A communication is critical when the consumer issued exactly when
        the copied value arrived and no non-copy operand arrived as late:
        removing the communication would have let the instruction issue
        earlier.
        """
        providers = dyn.providers
        if not providers:
            return
        max_cc = -1
        for p in providers:
            if p.complete_cycle > max_cc:
                max_cc = p.complete_cycle
        if max_cc != cycle:
            return  # the consumer was not waiting on its operands
        late_noncopy = any(
            (not p.is_copy) and p.complete_cycle == max_cc for p in providers
        )
        if late_noncopy:
            return
        for p in providers:
            if p.is_copy and p.complete_cycle == max_cc and not p.critical:
                p.critical = True
                self.stats.critical_copies += 1

    # ------------------------------------------------------------------
    def _steer(self, dyn: DynInst) -> int:
        cls = dyn.cls
        if cls is InstrClass.COMPLEX_INT:
            return 0
        if cls is InstrClass.FP:
            return 1
        cluster = self.steering.choose(dyn, self)
        if cluster not in (0, 1):
            raise SteeringError(
                f"scheme {getattr(self.steering, 'name', '?')!r} returned "
                f"cluster {cluster!r}"
            )
        if not self.fus[cluster].supports(dyn):
            raise SteeringError(
                f"{dyn!r} steered to cluster {cluster}, which cannot "
                f"execute it"
            )
        return cluster

    def _dispatch(self, cycle: int) -> None:
        budget = self.config.decode_width
        buffer = self.decode_buffer
        config = self.config
        while budget and buffer:
            dyn = buffer[0]
            if self.rob.full:
                self.stats.stall_rob += 1
                break
            cluster = self._steer(dyn)
            plan = self.renamer.plan(dyn, cluster)
            if plan.copies and not config.allow_copies:
                raise SteeringError(
                    f"scheme {getattr(self.steering, 'name', '?')!r} chose "
                    f"cluster {cluster} for {dyn!r} but the machine has no "
                    f"inter-cluster bypasses"
                )
            if not self.renamer.feasible(plan):
                # Structural hazard: no physical registers for this
                # choice.  Like real dispatch logic, try the other
                # cluster before stalling — without this, a small
                # register file can wedge in-order dispatch for ever
                # (the stalled head itself is the only instruction that
                # could free the registers it waits for).
                plan = self._replan_other_cluster(dyn, cluster, plan)
                if plan is None:
                    self.stats.stall_regs += 1
                    break
                cluster = plan.cluster
            executes = dyn.cls not in (InstrClass.JUMP, InstrClass.NOP)
            if not self._reserve_window(dyn, cluster, plan, executes):
                self.stats.stall_iq += 1
                break
            copies = self.renamer.rename(
                dyn, plan, cycle, self.fetch_unit.next_seq
            )
            for copy in copies:
                self._insert_window(copy, copy.cluster, cycle)
                self.stats.copies_created += 1
            dyn.dispatch_cycle = cycle
            if executes:
                self._insert_window(dyn, cluster, cycle)
            else:
                # Jumps/nops need no execution; they complete at dispatch.
                self._complete(dyn, cycle, cycle)
            if dyn.inst.is_memory:
                self.lsq.add(dyn)
            self.rob.push(dyn)
            self.stats.steered[cluster] += 1
            self.steering.on_dispatch(dyn, cluster)
            buffer.popleft()
            budget -= 1

    def _replan_other_cluster(self, dyn: DynInst, cluster: int, plan):
        """Fallback plan in the other cluster, or ``None``.

        Only legal when the machine has bypasses (otherwise the other
        cluster cannot see the operands) and when the other cluster can
        execute the instruction at all.
        """
        if not self.config.allow_copies:
            return None
        other = 1 - cluster
        if not self.fus[other].supports(dyn):
            return None
        alt = self.renamer.plan(dyn, other)
        if alt.copies and not self.config.allow_copies:
            return None
        if not self.renamer.feasible(alt):
            return None
        return alt

    def _reserve_window(
        self, dyn: DynInst, cluster: int, plan, executes: bool
    ) -> bool:
        """Check that the windows can take the instruction and its copies."""
        if self.config.fifo_issue:
            for target in (0, 1):
                pending = [
                    _CopyProbe(dyn, reg)
                    for reg, src in plan.copies
                    if src == target
                ]
                if target == cluster and executes:
                    pending.append(dyn)
                if pending and self.iqs[target].plan_insertions(
                    pending  # type: ignore[arg-type]
                ) is None:
                    return False
            return True
        needed = [plan.copies_from(0), plan.copies_from(1)]
        if executes:
            needed[cluster] += 1
        return all(
            self.iqs[c].can_accept(needed[c]) for c in (0, 1) if needed[c]
        )

    def _insert_window(self, dyn: DynInst, cluster: int, cycle: int) -> None:
        """Place *dyn* in *cluster*'s window, enrolling it for wakeup.

        Each provider that has not completed by *cycle* gets *dyn*
        appended to its consumer list and bumps the pending-operand
        counter; a provider completing at or before *cycle* is already
        visible to next cycle's select, exactly as the reference scan
        would observe it.  Under the scan scheduler the counter is pinned
        non-zero so the (unused) ready sets stay empty.
        """
        if self._event_driven:
            pending = 0
            for p in dyn.providers:
                cc = p.complete_cycle
                if cc < 0 or cc > cycle:
                    if p.waiters is None:
                        p.waiters = [dyn]
                    else:
                        p.waiters.append(dyn)
                    pending += 1
            dyn.pending_ops = pending
        else:
            dyn.pending_ops = 1
        if not self.iqs[cluster].insert(dyn):
            # _reserve_window accepted this instruction one call earlier;
            # a refused insert means the reservation logic is broken.
            raise SimulationError(
                f"{self.iqs[cluster].name}: insert into a full queue"
            )

    # ------------------------------------------------------------------
    def _fetch(self, cycle: int) -> None:
        space = self.config.decode_buffer - len(self.decode_buffer)
        if space <= 0:
            return
        group = self.fetch_unit.fetch(cycle, space)
        if group:
            self.decode_buffer.extend(group)


class _CopyProbe:
    """Stand-in used to dry-run FIFO placement of a not-yet-created copy.

    A copy's only provider is the current remote provider of the copied
    register, so the probe borrows the *consumer's* providers to test
    tail-dependence placement conservatively (a probe never matches a
    tail, which makes the dry run strictly pessimistic: it demands an
    empty FIFO for each copy).
    """

    __slots__ = ("providers", "seq")

    def __init__(self, consumer: DynInst, reg: int) -> None:
        self.providers = ()
        self.seq = consumer.seq
