"""The cycle-level processor model.

One :class:`Processor` simulates the machine of Figure 1: a centralized
fetch/decode/rename front end, a steering stage choosing a cluster per
instruction, two clusters with private windows, functional units and
register files, inter-cluster bypasses driven by copy instructions, a
central disambiguation queue, and in-order commit from a shared ROB.

Stage evaluation order within :meth:`step` is reverse pipeline order
(commit, memory, issue, dispatch, fetch), the standard trick that lets a
cycle-driven simulator model same-cycle hand-offs without double-advancing
an instruction in one cycle.

Two issue schedulers implement identical timing semantics:

* ``event`` (default) — event-driven wakeup/select.  Window entries
  carry pending-operand counters, producers carry consumer lists, and a
  completion calendar (:mod:`repro.pipeline.wakeup`) wakes consumers on
  the cycle their last operand completes; the issue stage walks only the
  per-queue ready sets.  Work per cycle is proportional to completions
  and ready instructions, not window size x operands.
* ``scan`` — the reference implementation: re-scan every window entry
  and re-poll every provider's ``complete_cycle`` each cycle.  Retained
  so the equivalence suite can assert the event path is cycle-for-cycle
  identical, and selectable via ``REPRO_SCHEDULER=scan`` for A/B runs.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, List, Optional

from ..cluster import BypassNetwork, FifoIssueQueue, FUPool, IssueQueue
from ..core.steering import (
    SteeringContext,
    SteeringScheme,
    resolve_steering_hooks,
)
from ..errors import SimulationError, SteeringError
from ..frontend import CombinedPredictor, FetchUnit
from ..isa import DynInst, InstrClass, make_copy_inst
from ..isa.registers import FP_BASE, N_FP_REGS, N_INT_REGS
from ..memory import (
    DisambiguationQueue,
    MemoryHierarchy,
    MemoryTiming,
    SetAssocCache,
)
from ..rename import MapTable, Renamer, make_free_lists
from ..workloads import Workload
from .config import ProcessorConfig
from .rob import ReorderBuffer
from .stats import SimStats
from .wakeup import WakeupCalendar

#: Cycles without a commit after which the model declares itself wedged.
_DEADLOCK_LIMIT = 20000

#: Issue-scheduler implementations (see module docstring).
SCHEDULERS = ("event", "scan")

#: Dispatch-stage implementations.  ``columnar`` (default) runs the fused
#: batch loop over the map table's flat presence masks; ``object`` is the
#: reference per-instruction plan/feasible/reserve/rename sequence,
#: retained as the equivalence oracle and selectable via
#: ``REPRO_DISPATCH=object``.  FIFO-window machines always take the
#: object path (the fused loop inlines :class:`IssueQueue` internals).
DISPATCH_MODES = ("columnar", "object")

#: Outcomes of the unfused single-instruction dispatch helper.
_OK, _STALL_REGS, _STALL_IQ = 0, 1, 2

#: Enum-name cache: ``InstrClass.X.name`` resolves through a descriptor
#: on every access; the commit loop pays that per instruction otherwise.
_CLS_NAMES = {c: c.name for c in InstrClass}


class Processor:
    """Timing model of the two-cluster machine."""

    def __init__(
        self,
        workload: Workload,
        config: ProcessorConfig,
        steering,
        scheduler: Optional[str] = None,
        dispatch: Optional[str] = None,
    ) -> None:
        self.workload = workload
        self.config = config
        self.steering = steering
        self.program = workload.program
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SCHEDULER") or "event"
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
            )
        self.scheduler = scheduler
        self._event_driven = scheduler == "event"
        self._calendar = WakeupCalendar(self._on_ready)
        if dispatch is None:
            dispatch = os.environ.get("REPRO_DISPATCH") or "columnar"
        if dispatch not in DISPATCH_MODES:
            raise SimulationError(
                f"unknown dispatch mode {dispatch!r}; choose from "
                f"{DISPATCH_MODES}"
            )
        self.dispatch_mode = dispatch
        self._columnar = dispatch == "columnar"

        timing = MemoryTiming(
            l1_hit=1,
            l1_miss_penalty=config.l1_miss_penalty,
            memory_first_chunk=config.memory_first_chunk,
            memory_interchunk=config.memory_interchunk,
            bus_bytes=config.bus_bytes,
        )
        self.hierarchy = MemoryHierarchy(
            l1i=SetAssocCache(
                config.l1i.size_kb * 1024,
                config.l1i.assoc,
                config.l1i.line_bytes,
                name="L1I",
            ),
            l1d=SetAssocCache(
                config.l1d.size_kb * 1024,
                config.l1d.assoc,
                config.l1d.line_bytes,
                name="L1D",
            ),
            l2=SetAssocCache(
                config.l2.size_kb * 1024,
                config.l2.assoc,
                config.l2.line_bytes,
                name="L2",
            ),
            timing=timing,
            dcache_ports=config.dcache_ports,
        )
        self.predictor = CombinedPredictor()
        self.fetch_unit = FetchUnit(
            workload.trace(),
            self.hierarchy,
            self.predictor,
            fetch_width=config.fetch_width,
            redirect_penalty=config.redirect_penalty,
            columns=(
                workload.shared_trace().columns() if self._columnar else None
            ),
        )
        self.map_table = MapTable()
        self.free_lists = make_free_lists(
            [c.phys_regs for c in config.clusters],
            [N_INT_REGS, N_FP_REGS],
        )
        self.renamer = Renamer(
            self.map_table, self.free_lists, allow_copies=config.allow_copies
        )
        if config.fifo_issue:
            self.iqs = [
                FifoIssueQueue(
                    config.n_fifos, config.fifo_depth, name=f"fifo-iq{i}"
                )
                for i in range(2)
            ]
        else:
            self.iqs = [
                IssueQueue(config.clusters[i].iq_size, name=f"iq{i}")
                for i in range(2)
            ]
        self.fus = [
            FUPool(
                c.n_simple_alu,
                c.has_complex_int,
                c.n_fp_alu,
                c.has_fp_complex,
                name=f"cluster{i}",
            )
            for i, c in enumerate(config.clusters)
        ]
        self.bypass = BypassNetwork(
            ports_per_direction=config.bypass_ports,
            latency=config.bypass_latency,
        )
        self.lsq = DisambiguationQueue(
            self.hierarchy,
            max_outstanding_misses=config.max_outstanding_misses,
            on_complete=self._complete,
            event_driven=self._event_driven,
        )
        self.rob = ReorderBuffer(config.max_in_flight)
        self.decode_buffer: Deque[DynInst] = deque()
        self.stats = SimStats()
        self.cycle = 0
        self.ready_counts: List[int] = [0, 0]
        self._last_commit_cycle = 0
        self._issue_stage = (
            self._issue_event if self._event_driven else self._issue_scan
        )
        steering.reset(self)
        self._steer_ctx = SteeringContext(self)
        self._choose_fn, self._on_dispatch_fn = resolve_steering_hooks(
            steering
        )
        # Schemes that keep the base no-op hooks are skipped entirely
        # (the commit/cycle loops would otherwise pay a bound-method call
        # per instruction/cycle for nothing).
        scheme_cls = type(steering)
        self._on_commit_hook = (
            steering.on_commit
            if scheme_cls.on_commit is not SteeringScheme.on_commit
            else None
        )
        self._on_cycle_hook = (
            steering.on_cycle
            if scheme_cls.on_cycle is not SteeringScheme.on_cycle
            else None
        )
        self._dispatch_stage = (
            self._dispatch_columnar
            if self._columnar and not config.fifo_issue
            else self._dispatch
        )
        self._commit_stage = (
            self._commit_columnar if self._columnar else self._commit
        )
        if self._columnar and self._event_driven and not config.fifo_issue:
            self._issue_stage = self._issue_event_columnar
        # Every steerable instruction class reduces to "has a simple ALU"
        # in FUPool.supports; when both clusters have one, the per-
        # instruction capability check in the fused loop is a no-op.
        self._skip_supports = all(fu.n_simple > 0 for fu in self.fus)
        # Per-cycle hot-loop constants (attribute-chain hoists).
        self._issue_widths = tuple(c.issue_width for c in config.clusters)
        self._retire_width = config.retire_width

    # ------------------------------------------------------------------
    # Steering-visible helpers
    # ------------------------------------------------------------------
    def presence_mask(self, reg: int) -> int:
        """Bit mask of clusters where logical register *reg* resides."""
        return self.map_table.presence_mask(reg)

    def iq_occupancy(self, cluster: int) -> int:
        """Instructions currently waiting in *cluster*'s window."""
        return len(self.iqs[cluster])

    # ------------------------------------------------------------------
    # Public driver
    # ------------------------------------------------------------------
    def run(self, n_instructions: int, warmup: int = 0):
        """Simulate; return a :class:`SimResult` for the measured window.

        *warmup* instructions are committed first (training caches, the
        branch predictor and the steering tables) without being counted.
        """
        if warmup > 0:
            self._run_until(warmup)
        self.stats = SimStats()
        self.stats.snapshot_environment(self)
        self._run_until(n_instructions)
        self._flush_steering_metrics()
        return self.stats.finalize(
            self, self.workload.name, getattr(self.steering, "name", "?")
        )

    def _flush_steering_metrics(self) -> None:
        """Publish the steering-memo counters to the metrics registry."""
        ctx = self._steer_ctx
        if ctx.memo_hits or ctx.memo_misses:
            from ..telemetry import metrics

            metrics.counter("steering.memo.hits").inc(ctx.memo_hits)
            metrics.counter("steering.memo.misses").inc(ctx.memo_misses)
            ctx.memo_hits = 0
            ctx.memo_misses = 0

    def _run_until(self, n_committed: int) -> None:
        stats = self.stats
        while stats.committed < n_committed:
            self.step()
            if self.cycle - self._last_commit_cycle > _DEADLOCK_LIMIT:
                raise SimulationError(
                    f"no commit for {_DEADLOCK_LIMIT} cycles at cycle "
                    f"{self.cycle} (scheme "
                    f"{getattr(self.steering, 'name', '?')!r})"
                )

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine by one cycle."""
        cycle = self.cycle
        self._commit_stage(cycle)
        self.lsq.step(cycle)
        self._issue_stage(cycle)
        self._dispatch_stage(cycle)
        self._fetch(cycle)
        if self._on_cycle_hook is not None:
            self._on_cycle_hook(self)
        self.stats.on_cycle(
            self.map_table.count_replicated(),
            self.ready_counts,
            rob_occupancy=len(self.rob),
            iq_occupancy=[len(self.iqs[0]), len(self.iqs[1])],
        )
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    def _commit(self, cycle: int) -> None:
        budget = self.config.retire_width
        rob = self.rob
        while budget and not rob.empty:
            head = rob.head
            cc = head.complete_cycle
            if cc < 0 or cc > cycle:
                break
            if head.cls is InstrClass.STORE:
                if not self.lsq.commit_store(head, cycle):
                    break  # no D-cache port this cycle
            elif head.cls is InstrClass.LOAD:
                self.lsq.retire_load(head)
            self.renamer.release_at_commit(head)
            head.commit_cycle = cycle
            self.stats.on_commit(head)
            if self._on_commit_hook is not None:
                self._on_commit_hook(head)
            rob.pop()
            self._last_commit_cycle = cycle
            budget -= 1

    def _commit_columnar(self, cycle: int) -> None:
        """:meth:`_commit` with the per-instruction call tree flattened.

        Same retire semantics; the free-list release and the statistics
        update are inlined so the commit loop touches each instruction
        once instead of crossing three helper boundaries per retire.
        """
        rob_entries = self.rob._entries
        if not rob_entries:
            return
        budget = self._retire_width
        stats = self.stats
        lsq = self.lsq
        free0, free1 = self.free_lists
        on_commit_hook = self._on_commit_hook
        store = InstrClass.STORE
        load = InstrClass.LOAD
        by_class = stats.committed_by_class
        committed = 0
        while budget and rob_entries:
            head = rob_entries[0]
            cc = head.complete_cycle
            if cc < 0 or cc > cycle:
                break
            cls = head.cls
            if cls is store:
                if not lsq.commit_store(head, cycle):
                    break  # no D-cache port this cycle
            elif cls is load:
                lsq.retire_load(head)
            f0, f1 = head.frees
            if f0:
                free0.release(f0)
            if f1:
                free1.release(f1)
            head.commit_cycle = cycle
            key = _CLS_NAMES[cls]
            by_class[key] = by_class.get(key, 0) + 1
            if head.in_ldst_slice:
                stats.committed_ldst_slice += 1
            if head.in_br_slice:
                stats.committed_br_slice += 1
            if on_commit_hook is not None:
                on_commit_hook(head)
            rob_entries.popleft()
            committed += 1
            budget -= 1
        if committed:
            stats.committed += committed
            self._last_commit_cycle = cycle

    # ------------------------------------------------------------------
    # Issue: event-driven wakeup/select (default)
    # ------------------------------------------------------------------
    def _on_ready(self, dyn: DynInst) -> None:
        """Wakeup-calendar callback: *dyn*'s last pending operand done."""
        self.iqs[dyn.cluster].mark_ready(dyn)

    def _complete(self, dyn: DynInst, complete_cycle: int, cycle: int) -> None:
        """Record *dyn*'s completion, waking its consumers by event.

        Only potential providers (register writers and copies) go through
        the calendar; branches and stores can never acquire waiters, so
        their completion is a plain assignment.  The scan scheduler polls
        instead of waking and bypasses the calendar entirely.
        """
        if self._event_driven and (dyn.is_copy or dyn.inst.dst is not None):
            self._calendar.complete(dyn, complete_cycle, cycle)
        else:
            dyn.complete_cycle = complete_cycle

    def _issue_event(self, cycle: int) -> None:
        """Issue from the per-queue ready sets (no window scan).

        The calendar fires first, so every instruction whose last operand
        completes at *cycle* is in its queue's ready set before
        selection; candidates are snapshotted per cluster in age order,
        exactly the readiness the reference scan would observe.
        """
        self._calendar.fire(cycle)
        ready_counts = [0, 0]
        bypass = self.bypass
        stats = self.stats
        for cluster in (0, 1):
            iq = self.iqs[cluster]
            # The live ready list, oldest first.  Within this cluster's
            # turn it only shrinks (via issue_ready): same-cluster heads
            # exposed by an issue are deferred to the next cycle, and
            # same-cycle wakeups (zero-latency bypasses) always target
            # the *other* cluster — so an index walk is safe and touches
            # only the entries the select logic actually considers.
            ready = iq.ready_view()
            n_ready = len(ready)
            ready_counts[cluster] = n_ready
            if not n_ready:
                continue
            width = self.config.clusters[cluster].issue_width
            fu = self.fus[cluster]
            issued = 0
            index = 0
            while index < len(ready) and issued < width:
                dyn = ready[index][1]
                if dyn.is_copy:
                    if not bypass.claim(cycle, cluster):
                        index += 1
                        continue
                    dyn.issue_cycle = cycle
                    dyn.issued = True
                    # A zero-latency bypass completes *this* cycle: the
                    # calendar then wakes the remote consumer at once,
                    # in time for the other cluster's selection below —
                    # the same visibility the in-order scan provides.
                    self._complete(dyn, cycle + bypass.latency, cycle)
                    stats.copies_issued += 1
                    iq.issue_ready(index)
                    issued += 1
                    continue
                if not fu.can_issue(dyn, cycle):
                    index += 1
                    continue
                fu.issue(dyn, cycle)
                dyn.issue_cycle = cycle
                dyn.issued = True
                cls = dyn.cls
                if cls is InstrClass.LOAD:
                    # complete_cycle is set by the disambiguation queue,
                    # which parks the load until its address is ready.
                    dyn.ea_done_cycle = cycle + 1
                    self.lsq.queue_address(dyn, cycle + 1)
                elif cls is InstrClass.STORE:
                    dyn.ea_done_cycle = cycle + 1
                    self._complete(dyn, cycle + 1, cycle)
                else:
                    self._complete(dyn, cycle + dyn.inst.latency, cycle)
                self._mark_critical_copies(dyn, cycle)
                iq.issue_ready(index)
                issued += 1
        self.ready_counts = ready_counts

    def _issue_event_columnar(self, cycle: int) -> None:
        """:meth:`_issue_event` with the common-case call tree flattened.

        Identical selection semantics; the simple-ALU accounting, ready-
        list removal and completion routing are inlined for the classes
        that dominate the mix (simple int, branch, load, store, copy).
        Complex-integer and FP instructions sync the local ALU mirror and
        take the reference :class:`~repro.cluster.FUPool` calls.  Only
        installed on :class:`~repro.cluster.IssueQueue` windows — FIFO
        collections keep the reference stage (their removal path defers
        exposed heads).
        """
        calendar = self._calendar
        calendar.fire(cycle)
        ready_counts = [0, 0]
        bypass = self.bypass
        stats = self.stats
        lsq = self.lsq
        widths = self._issue_widths
        simple_int = InstrClass.SIMPLE_INT
        branch = InstrClass.BRANCH
        load = InstrClass.LOAD
        store = InstrClass.STORE
        for cluster in (0, 1):
            iq = self.iqs[cluster]
            ready = iq._ready
            n_ready = len(ready)
            ready_counts[cluster] = n_ready
            if not n_ready:
                continue
            width = widths[cluster]
            fu = self.fus[cluster]
            if cycle != fu._cycle:  # inline FUPool._roll
                fu._cycle = cycle
                fu._simple_used = 0
                fu._complex_used = 0
                fu._fp_used = 0
                fu._fp_complex_used = 0
            simple_used = fu._simple_used
            n_simple = fu.n_simple
            entries = iq._entries
            issued = 0
            index = 0
            while index < len(ready) and issued < width:
                dyn = ready[index][1]
                if dyn.is_copy:
                    if not bypass.claim(cycle, cluster):
                        index += 1
                        continue
                    dyn.issue_cycle = cycle
                    dyn.issued = True
                    calendar.complete(dyn, cycle + bypass.latency, cycle)
                    stats.copies_issued += 1
                    del ready[index]
                    del entries[dyn.seq]
                    issued += 1
                    continue
                cls = dyn.cls
                if (
                    cls is simple_int
                    or cls is branch
                    or cls is load
                    or cls is store
                ):
                    if simple_used >= n_simple:
                        index += 1
                        continue
                    simple_used += 1
                else:
                    # Complex int / FP: rare — sync the ALU mirror and
                    # use the reference availability/accounting calls.
                    fu._simple_used = simple_used
                    if not fu.can_issue(dyn, cycle):
                        index += 1
                        continue
                    fu.issue(dyn, cycle)
                    simple_used = fu._simple_used
                dyn.issue_cycle = cycle
                dyn.issued = True
                if cls is load:
                    # complete_cycle is set by the disambiguation queue,
                    # which parks the load until its address is ready.
                    dyn.ea_done_cycle = cycle + 1
                    lsq.queue_address(dyn, cycle + 1)
                else:
                    if cls is store:
                        dyn.ea_done_cycle = cycle + 1
                        cc = cycle + 1
                    else:
                        cc = cycle + dyn.inst.latency
                    # Inline _complete (event-driven by construction).
                    if dyn.inst.dst is not None:
                        calendar.complete(dyn, cc, cycle)
                    else:
                        dyn.complete_cycle = cc
                if dyn.copy_srcs:
                    self._mark_critical_copies(dyn, cycle)
                del ready[index]
                del entries[dyn.seq]
                issued += 1
            fu._simple_used = simple_used
        self.ready_counts = ready_counts

    # ------------------------------------------------------------------
    # Issue: reference full-scan scheduler (kept for exactness testing)
    # ------------------------------------------------------------------
    def _issue_scan(self, cycle: int) -> None:
        ready_counts = [0, 0]
        bypass = self.bypass
        for cluster in (0, 1):
            iq = self.iqs[cluster]
            width = self.config.clusters[cluster].issue_width
            fu = self.fus[cluster]
            issued = 0
            for dyn in iq.entries_oldest_first():
                ready = True
                for p in dyn.providers:
                    cc = p.complete_cycle
                    if cc < 0 or cc > cycle:
                        ready = False
                        break
                if not ready:
                    continue
                ready_counts[cluster] += 1
                if issued >= width:
                    continue
                if dyn.is_copy:
                    if not bypass.claim(cycle, cluster):
                        continue
                    dyn.issue_cycle = cycle
                    dyn.issued = True
                    dyn.complete_cycle = cycle + bypass.latency
                    self.stats.copies_issued += 1
                    iq.remove(dyn)
                    issued += 1
                    continue
                if not fu.can_issue(dyn, cycle):
                    continue
                fu.issue(dyn, cycle)
                dyn.issue_cycle = cycle
                dyn.issued = True
                cls = dyn.cls
                if cls is InstrClass.LOAD:
                    dyn.ea_done_cycle = cycle + 1
                    # complete_cycle is set by the disambiguation queue
                elif cls is InstrClass.STORE:
                    dyn.ea_done_cycle = cycle + 1
                    dyn.complete_cycle = cycle + 1
                else:
                    dyn.complete_cycle = cycle + dyn.inst.latency
                self._mark_critical_copies(dyn, cycle)
                iq.remove(dyn)
                issued += 1
        self.ready_counts = ready_counts

    def _mark_critical_copies(self, dyn: DynInst, cycle: int) -> None:
        """Flag copies that delayed this consumer (paper §3.4).

        A communication is critical when the consumer issued exactly when
        the copied value arrived and no non-copy operand arrived as late:
        removing the communication would have let the instruction issue
        earlier.
        """
        if not dyn.copy_srcs:
            return  # no copy providers: nothing this check could flag
        providers = dyn.providers
        if not providers:
            return
        max_cc = -1
        for p in providers:
            if p.complete_cycle > max_cc:
                max_cc = p.complete_cycle
        if max_cc != cycle:
            return  # the consumer was not waiting on its operands
        late_noncopy = any(
            (not p.is_copy) and p.complete_cycle == max_cc for p in providers
        )
        if late_noncopy:
            return
        for p in providers:
            if p.is_copy and p.complete_cycle == max_cc and not p.critical:
                p.critical = True
                self.stats.critical_copies += 1

    # ------------------------------------------------------------------
    def _steer(self, dyn: DynInst) -> int:
        cls = dyn.cls
        if cls is InstrClass.COMPLEX_INT:
            return 0
        if cls is InstrClass.FP:
            return 1
        cluster = self._choose_fn(self._steer_ctx, dyn)
        if cluster not in (0, 1):
            raise SteeringError(
                f"scheme {getattr(self.steering, 'name', '?')!r} returned "
                f"cluster {cluster!r}"
            )
        if not self.fus[cluster].supports(dyn):
            raise SteeringError(
                f"{dyn!r} steered to cluster {cluster}, which cannot "
                f"execute it"
            )
        return cluster

    def _dispatch(self, cycle: int) -> None:
        budget = self.config.decode_width
        buffer = self.decode_buffer
        ctx = self._steer_ctx
        ctx.batch = buffer
        while budget and buffer:
            dyn = buffer[0]
            if self.rob.full:
                self.stats.stall_rob += 1
                break
            cluster = self._steer(dyn)
            status = self._dispatch_one_slow(dyn, cluster, cycle)
            if status is _STALL_REGS:
                self.stats.stall_regs += 1
                break
            if status is _STALL_IQ:
                self.stats.stall_iq += 1
                break
            buffer.popleft()
            budget -= 1

    def _dispatch_columnar(self, cycle: int) -> None:
        """Fused batch dispatch over the flat presence masks.

        One pass per dispatch group: steering, rename planning, register
        and window feasibility, rename, and window insertion are
        collapsed into a single loop whose fast path — no inter-cluster
        copy needed, i.e. every source operand already present in the
        chosen cluster — reads the map table's flat ``masks`` list and
        writes the rename/window structures directly, allocating no
        :class:`~repro.rename.renamer.RenamePlan` and crossing no helper
        boundaries.  Instructions that do need copies, or that hit a
        register-file hazard, fall back to the unfused helper, which is
        verbatim the reference (object) path, so both modes are
        cycle-for-cycle identical.
        """
        buffer = self.decode_buffer
        if not buffer:
            return
        budget = self.config.decode_width
        ctx = self._steer_ctx
        ctx.batch = buffer
        rob_entries = self.rob._entries
        rob_capacity = self.rob.capacity
        stats = self.stats
        steered = stats.steered
        map_table = self.map_table
        masks = map_table.masks
        entries = map_table.entries
        free_lists = self.free_lists
        iqs = self.iqs
        lsq = self.lsq
        choose = self._choose_fn
        on_dispatch = self._on_dispatch_fn
        event_driven = self._event_driven
        skip_supports = self._skip_supports
        supports = (self.fus[0].supports, self.fus[1].supports)
        allow_copies = self.config.allow_copies
        next_seq = self.fetch_unit.next_seq
        renamer = self.renamer
        popleft = buffer.popleft
        complex_int = InstrClass.COMPLEX_INT
        fp = InstrClass.FP
        jump = InstrClass.JUMP
        nop = InstrClass.NOP
        load = InstrClass.LOAD
        store = InstrClass.STORE
        while budget and buffer:
            dyn = buffer[0]
            if len(rob_entries) >= rob_capacity:
                stats.stall_rob += 1
                break
            cls = dyn.cls
            if cls is complex_int:
                cluster = 0
            elif cls is fp:
                cluster = 1
            else:
                cluster = choose(ctx, dyn)
                if cluster not in (0, 1):
                    raise SteeringError(
                        f"scheme {getattr(self.steering, 'name', '?')!r} "
                        f"returned cluster {cluster!r}"
                    )
                if not skip_supports and not supports[cluster](dyn):
                    raise SteeringError(
                        f"{dyn!r} steered to cluster {cluster}, which "
                        f"cannot execute it"
                    )
            inst = dyn.inst
            srcs = inst.issue_srcs
            # Single pass over the sources: the providers and the flat
            # masks are maintained in lock-step, so an absent provider
            # *is* the missing-mask-bit condition, and the in-flight
            # providers are gathered along the way (re-gathered below in
            # the rare case copies get inserted).
            providers = []
            copy_srcs = False
            missing = None
            for reg in srcs:
                p = entries[reg].providers[cluster]
                if p is None:
                    if missing is None:
                        missing = [reg]
                    elif reg not in missing:
                        missing.append(reg)
                elif not (p.completed and p.complete_cycle <= 0):
                    providers.append(p)
                    if p.is_copy:
                        copy_srcs = True
            dst = inst.dst
            dst_cluster = (1 if dst >= FP_BASE else cluster) if (
                dst is not None
            ) else cluster
            executes = cls is not jump and cls is not nop
            slow = False
            if missing is not None:
                # Fused copy insertion.  Only the clear-cut case stays
                # inline — integer sources with a remote provider and
                # enough registers in the chosen cluster; anything
                # marginal (FP sources, a vanished remote provider, a
                # register-file hazard needing a replan, copies disabled)
                # funnels to the reference helper for its exact
                # stall/error behaviour.
                fused = allow_copies
                other = 1 - cluster
                if fused:
                    for reg in missing:
                        if reg >= FP_BASE or not (masks[reg] >> other) & 1:
                            fused = False
                            break
                if fused:
                    n_copies = len(missing)
                    need0 = n_copies if cluster == 0 else 0
                    need1 = n_copies - need0
                    if dst is not None:
                        if dst_cluster == 0:
                            need0 += 1
                        else:
                            need1 += 1
                    if (
                        free_lists[0]._free < need0
                        or free_lists[1]._free < need1
                    ):
                        fused = False
                if not fused:
                    slow = True
                else:
                    # Window feasibility first (the reference reserves
                    # before renaming): copies join the *source*
                    # cluster's queue, the consumer its own.
                    iq_other = iqs[other]
                    if len(iq_other._entries) + n_copies > iq_other.capacity:
                        stats.stall_iq += 1
                        break
                    if executes:
                        iq = iqs[cluster]
                        if len(iq._entries) >= iq.capacity:
                            stats.stall_iq += 1
                            break
                    for reg in missing:
                        entry = entries[reg]
                        provider = entry.providers[other]
                        copy = make_copy_inst(next_seq(), reg, dyn.seq)
                        copy.cluster = other
                        copy.dispatch_cycle = cycle
                        copy.providers = [provider]
                        free_lists[cluster]._free -= 1
                        entry.providers[cluster] = copy
                        masks[reg] |= 1 << cluster
                        # Integer register now mapped in both clusters
                        # (the remote presence was just checked).
                        map_table._replicated_ints += 1
                        renamer.copies_created += 1
                        # Inline window insert for the copy.
                        if event_driven:
                            cc = provider.complete_cycle
                            if cc < 0 or cc > cycle:
                                if provider.waiters is None:
                                    provider.waiters = [copy]
                                else:
                                    provider.waiters.append(copy)
                                copy.pending_ops = 1
                                pending = 1
                            else:
                                pending = 0
                        else:
                            copy.pending_ops = 1
                            pending = 1
                        rank = iq_other._next_rank
                        iq_other._next_rank = rank + 1
                        copy.iq_rank = rank
                        iq_other._entries[copy.seq] = copy
                        if not pending:
                            iq_other._ready.append((rank, copy))
                        stats.copies_created += 1
                    # Re-gather the sources with the copies installed.
                    providers = []
                    copy_srcs = False
                    for reg in srcs:
                        p = entries[reg].providers[cluster]
                        if not (p.completed and p.complete_cycle <= 0):
                            providers.append(p)
                            if p.is_copy:
                                copy_srcs = True
            elif dst is not None and free_lists[dst_cluster]._free < 1:
                # Register-file hazard: the slow path replans into the
                # other cluster before declaring a stall.
                slow = True
            elif executes:
                iq = iqs[cluster]
                if len(iq._entries) >= iq.capacity:
                    stats.stall_iq += 1
                    break
            if slow:
                status = self._dispatch_one_slow(dyn, cluster, cycle)
                if status is _OK:
                    popleft()
                    budget -= 1
                    continue
                if status is _STALL_REGS:
                    stats.stall_regs += 1
                else:
                    stats.stall_iq += 1
                break
            # Inline rename: the sources resolved locally above, the
            # destination remaps in place.
            dyn.providers = providers
            dyn.copy_srcs = copy_srcs
            if dst is not None:
                free_lists[dst_cluster]._free -= 1
                entry = entries[dst]
                old = entry.providers
                f0 = 1 if old[0] is not None else 0
                f1 = 1 if old[1] is not None else 0
                if dst < FP_BASE and f0 and f1:
                    map_table._replicated_ints -= 1
                new = [None, None]
                new[dst_cluster] = dyn
                entry.providers = new
                masks[dst] = 1 << dst_cluster
                dyn.frees = (f0, f1)
            dyn.cluster = cluster
            dyn.dispatch_cycle = cycle
            if executes:
                # Inline window insert (capacity reserved above).
                if event_driven:
                    pending = 0
                    for p in providers:
                        cc = p.complete_cycle
                        if cc < 0 or cc > cycle:
                            if p.waiters is None:
                                p.waiters = [dyn]
                            else:
                                p.waiters.append(dyn)
                            pending += 1
                    dyn.pending_ops = pending
                else:
                    pending = 1
                    dyn.pending_ops = 1
                rank = iq._next_rank
                iq._next_rank = rank + 1
                dyn.iq_rank = rank
                iq._entries[dyn.seq] = dyn
                if not pending:
                    iq._ready.append((rank, dyn))
            else:
                # Jumps/nops need no execution; they complete at dispatch.
                self._complete(dyn, cycle, cycle)
            if cls is load or cls is store:
                lsq.add(dyn)
            # Inline ROB push: capacity checked at the loop top; seq
            # monotonicity holds by in-order dispatch (copies never
            # enter the ROB).
            rob_entries.append(dyn)
            steered[cluster] += 1
            on_dispatch(ctx, dyn, cluster)
            popleft()
            budget -= 1

    def _dispatch_one_slow(self, dyn: DynInst, cluster: int, cycle: int):
        """Reference dispatch of one steered instruction.

        The full plan/feasible/reserve/rename sequence; both dispatch
        modes funnel here for instructions needing copies or replanning.
        Returns ``_OK``, ``_STALL_REGS`` or ``_STALL_IQ``; on a stall the
        caller accounts the stall and ends the dispatch group.
        """
        config = self.config
        plan = self.renamer.plan(dyn, cluster)
        if plan.copies and not config.allow_copies:
            raise SteeringError(
                f"scheme {getattr(self.steering, 'name', '?')!r} chose "
                f"cluster {cluster} for {dyn!r} but the machine has no "
                f"inter-cluster bypasses"
            )
        if not self.renamer.feasible(plan):
            # Structural hazard: no physical registers for this
            # choice.  Like real dispatch logic, try the other
            # cluster before stalling — without this, a small
            # register file can wedge in-order dispatch for ever
            # (the stalled head itself is the only instruction that
            # could free the registers it waits for).
            plan = self._replan_other_cluster(dyn, cluster, plan)
            if plan is None:
                return _STALL_REGS
            cluster = plan.cluster
        executes = dyn.cls not in (InstrClass.JUMP, InstrClass.NOP)
        if not self._reserve_window(dyn, cluster, plan, executes):
            return _STALL_IQ
        copies = self.renamer.rename(
            dyn, plan, cycle, self.fetch_unit.next_seq
        )
        for copy in copies:
            self._insert_window(copy, copy.cluster, cycle)
            self.stats.copies_created += 1
        dyn.dispatch_cycle = cycle
        if executes:
            self._insert_window(dyn, cluster, cycle)
        else:
            # Jumps/nops need no execution; they complete at dispatch.
            self._complete(dyn, cycle, cycle)
        if dyn.inst.is_memory:
            self.lsq.add(dyn)
        self.rob.push(dyn)
        self.stats.steered[cluster] += 1
        self._on_dispatch_fn(self._steer_ctx, dyn, cluster)
        return _OK

    def _replan_other_cluster(self, dyn: DynInst, cluster: int, plan):
        """Fallback plan in the other cluster, or ``None``.

        Only legal when the machine has bypasses (otherwise the other
        cluster cannot see the operands) and when the other cluster can
        execute the instruction at all.
        """
        if not self.config.allow_copies:
            return None
        other = 1 - cluster
        if not self.fus[other].supports(dyn):
            return None
        alt = self.renamer.plan(dyn, other)
        if alt.copies and not self.config.allow_copies:
            return None
        if not self.renamer.feasible(alt):
            return None
        return alt

    def _reserve_window(
        self, dyn: DynInst, cluster: int, plan, executes: bool
    ) -> bool:
        """Check that the windows can take the instruction and its copies."""
        if self.config.fifo_issue:
            for target in (0, 1):
                pending = [
                    _CopyProbe(dyn, reg)
                    for reg, src in plan.copies
                    if src == target
                ]
                if target == cluster and executes:
                    pending.append(dyn)
                if pending and self.iqs[target].plan_insertions(
                    pending  # type: ignore[arg-type]
                ) is None:
                    return False
            return True
        needed = [plan.copies_from(0), plan.copies_from(1)]
        if executes:
            needed[cluster] += 1
        return all(
            self.iqs[c].can_accept(needed[c]) for c in (0, 1) if needed[c]
        )

    def _insert_window(self, dyn: DynInst, cluster: int, cycle: int) -> None:
        """Place *dyn* in *cluster*'s window, enrolling it for wakeup.

        Each provider that has not completed by *cycle* gets *dyn*
        appended to its consumer list and bumps the pending-operand
        counter; a provider completing at or before *cycle* is already
        visible to next cycle's select, exactly as the reference scan
        would observe it.  Under the scan scheduler the counter is pinned
        non-zero so the (unused) ready sets stay empty.
        """
        if self._event_driven:
            pending = 0
            for p in dyn.providers:
                cc = p.complete_cycle
                if cc < 0 or cc > cycle:
                    if p.waiters is None:
                        p.waiters = [dyn]
                    else:
                        p.waiters.append(dyn)
                    pending += 1
            dyn.pending_ops = pending
        else:
            dyn.pending_ops = 1
        if not self.iqs[cluster].insert(dyn):
            # _reserve_window accepted this instruction one call earlier;
            # a refused insert means the reservation logic is broken.
            raise SimulationError(
                f"{self.iqs[cluster].name}: insert into a full queue"
            )

    # ------------------------------------------------------------------
    def _fetch(self, cycle: int) -> None:
        space = self.config.decode_buffer - len(self.decode_buffer)
        if space <= 0:
            return
        group = self.fetch_unit.fetch(cycle, space)
        if group:
            self.decode_buffer.extend(group)


class _CopyProbe:
    """Stand-in used to dry-run FIFO placement of a not-yet-created copy.

    A copy's only provider is the current remote provider of the copied
    register, so the probe borrows the *consumer's* providers to test
    tail-dependence placement conservatively (a probe never matches a
    tail, which makes the dry run strictly pessimistic: it demands an
    empty FIFO for each copy).
    """

    __slots__ = ("providers", "seq")

    def __init__(self, consumer: DynInst, reg: int) -> None:
        self.providers = ()
        self.seq = consumer.seq
