"""Completion calendar: the event wheel behind event-driven wakeup.

The naive issue stage re-scans every window entry and re-polls every
provider's ``complete_cycle`` each cycle — O(window x operands) per
cycle, the software analogue of the broadcast wakeup the paper's
clustered hardware is designed to avoid.  The event-driven scheduler
inverts the dependence: each window entry carries a pending-operand
counter (:attr:`~repro.isa.DynInst.pending_ops`), each in-flight
producer a consumer list (:attr:`~repro.isa.DynInst.waiters`), and this
calendar maps completion cycles to the producers completing then.  When
the issue stage fires a cycle, every producer bucketed there walks its
waiters, decrements their counters, and hands the newly ready ones to
the issue queues — total work proportional to the number of dependence
edges, not to window size x cycles.

Exactness invariants (these make the event path cycle-for-cycle
identical to the reference scan):

* a producer's event is registered exactly once, when its
  ``complete_cycle`` is assigned; consumers registering *after* that
  see the assigned value and never enroll for a completion in the past
  (simulated time is monotonic, so a fired event is never re-awaited);
* a completion assigned at or before the current cycle (zero-latency
  bypasses, jumps completing at dispatch) wakes its waiters
  immediately — mirroring how the reference scan observes
  ``complete_cycle <= cycle`` the moment it is written;
* waiter lists may hold duplicates (an instruction reading the same
  register twice registers twice) so the counter decrements once per
  operand, exactly like the per-operand poll it replaces.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..isa import DynInst


class WakeupCalendar:
    """Cycle-indexed event wheel keyed by ``complete_cycle``."""

    __slots__ = ("_events", "_on_ready")

    def __init__(self, on_ready: Callable[[DynInst], None]) -> None:
        #: cycle -> producers whose completion becomes visible then.
        self._events: Dict[int, List[DynInst]] = {}
        self._on_ready = on_ready

    def __len__(self) -> int:
        """Producers still scheduled to complete (diagnostics only)."""
        return sum(len(bucket) for bucket in self._events.values())

    # ------------------------------------------------------------------
    def complete(self, dyn: DynInst, complete_cycle: int, now: int) -> None:
        """Record that *dyn* completes at *complete_cycle* (assigned at
        cycle *now*).

        Future completions are bucketed for :meth:`fire`; completions at
        or before *now* (zero-latency paths) wake their waiters on the
        spot.
        """
        dyn.complete_cycle = complete_cycle
        if complete_cycle > now:
            bucket = self._events.get(complete_cycle)
            if bucket is None:
                self._events[complete_cycle] = [dyn]
            else:
                bucket.append(dyn)
        else:
            self.wake(dyn)

    def fire(self, cycle: int) -> None:
        """Deliver every completion scheduled for *cycle*.

        The issue stage calls this once per cycle before selecting, so a
        bucket is only ever popped for the cycle being simulated — events
        are always registered strictly before their cycle fires.
        """
        producers = self._events.pop(cycle, None)
        if producers is not None:
            wake = self.wake
            for producer in producers:
                wake(producer)

    def wake(self, producer: DynInst) -> None:
        """Decrement every waiter of *producer*; report the newly ready."""
        waiters = producer.waiters
        if waiters is None:
            return
        producer.waiters = None
        on_ready = self._on_ready
        for waiter in waiters:
            waiter.pending_ops -= 1
            if not waiter.pending_ops:
                on_ready(waiter)
