"""Processor configurations (Table 2 of the paper).

Three machines appear in the evaluation:

* :meth:`ProcessorConfig.default` — the clustered machine: two 4-issue
  clusters, each with 3 simple integer ALUs; cluster 0 adds the complex
  integer unit, cluster 1 the FP units; 64-entry queues, 96 physical
  registers per cluster, 3 inter-cluster bypasses per direction at
  1-cycle latency.
* :meth:`ProcessorConfig.baseline` — the conventional reference: the same
  resources but *no* simple integer capability in the FP cluster and *no*
  inter-cluster bypasses (communication only through memory).
* :meth:`ProcessorConfig.upper_bound` — the 16-way machine (8 integer +
  8 FP issue) used in Figure 14; same integer throughput as the clustered
  machine but without any communication penalty.

These three (plus parametric ablation variants) are registered by name
in :mod:`repro.spec.machines`; experiment-facing code resolves machine
strings through that registry and varies fields via the dotted-path
overrides of :mod:`repro.spec.overrides` rather than constructing
configs by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class ClusterConfig:
    """Execution resources of one cluster."""

    iq_size: int = 64
    issue_width: int = 4
    n_simple_alu: int = 3
    has_complex_int: bool = False
    n_fp_alu: int = 0
    has_fp_complex: bool = False
    phys_regs: int = 96

    def __post_init__(self) -> None:
        if self.iq_size <= 0 or self.issue_width <= 0:
            raise ConfigError("cluster window/width must be positive")
        if self.phys_regs < 32:
            raise ConfigError(
                "each cluster needs at least 32 physical registers to hold "
                "architectural state"
            )


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_kb: int
    assoc: int
    line_bytes: int

    def __post_init__(self) -> None:
        if self.size_kb <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ConfigError(
                "cache size/associativity/line size must be positive"
            )
        if self.size_kb * 1024 < self.assoc * self.line_bytes:
            raise ConfigError(
                "cache must hold at least one set "
                f"({self.size_kb}KB < {self.assoc} ways x "
                f"{self.line_bytes}B lines)"
            )


@dataclass(frozen=True)
class ProcessorConfig:
    """Full machine description."""

    name: str = "clustered"
    fetch_width: int = 8
    decode_width: int = 8
    retire_width: int = 8
    max_in_flight: int = 64
    decode_buffer: int = 16
    clusters: Tuple[ClusterConfig, ClusterConfig] = (
        ClusterConfig(has_complex_int=True),
        ClusterConfig(n_fp_alu=3, has_fp_complex=True),
    )
    # Inter-cluster communication.
    allow_copies: bool = True
    bypass_ports: int = 3
    bypass_latency: int = 1
    # Window organisation (Palacharla-style FIFO comparison).
    fifo_issue: bool = False
    n_fifos: int = 8
    fifo_depth: int = 8
    # Front end.
    redirect_penalty: int = 2
    # Memory system.
    dcache_ports: int = 3
    max_outstanding_misses: int = 8
    l1i: CacheConfig = CacheConfig(64, 2, 32)
    l1d: CacheConfig = CacheConfig(64, 2, 32)
    l2: CacheConfig = CacheConfig(256, 4, 64)
    l1_miss_penalty: int = 6
    memory_first_chunk: int = 16
    memory_interchunk: int = 2
    bus_bytes: int = 16
    # Steering support parameters (paper §3.5: N = 16, threshold = 8).
    imbalance_window: int = 16
    imbalance_threshold: int = 8

    def __post_init__(self) -> None:
        if len(self.clusters) != 2:
            raise ConfigError("the simulated machine has exactly two clusters")
        if self.fetch_width <= 0 or self.decode_width <= 0:
            raise ConfigError("front-end widths must be positive")
        if self.max_in_flight <= 0:
            raise ConfigError("max_in_flight must be positive")
        if self.bypass_ports < 0 or self.bypass_latency < 0:
            raise ConfigError("bypass parameters must be non-negative")
        if not self.clusters[0].has_complex_int:
            raise ConfigError("cluster 0 must host the complex integer unit")
        if self.clusters[1].n_fp_alu <= 0:
            raise ConfigError("cluster 1 must host the FP units")

    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "ProcessorConfig":
        """The clustered machine of Table 2."""
        return cls()

    @classmethod
    def baseline(cls) -> "ProcessorConfig":
        """Conventional machine: no int units in the FP cluster, no
        bypasses.  Speed-ups in the paper are relative to this machine."""
        return cls(
            name="baseline",
            clusters=(
                ClusterConfig(has_complex_int=True),
                ClusterConfig(
                    n_simple_alu=0, n_fp_alu=3, has_fp_complex=True
                ),
            ),
            allow_copies=False,
            bypass_ports=0,
        )

    @classmethod
    def upper_bound(cls) -> "ProcessorConfig":
        """16-way machine (8 int + 8 FP issue), no communication penalty.

        Integer work runs in a single 8-issue cluster with doubled simple
        ALUs and windows, so no copies are ever needed — the IPC bound of
        Figure 14.
        """
        return cls(
            name="upper-bound",
            clusters=(
                ClusterConfig(
                    iq_size=128,
                    issue_width=8,
                    n_simple_alu=6,
                    has_complex_int=True,
                    phys_regs=192,
                ),
                ClusterConfig(
                    iq_size=128,
                    issue_width=8,
                    n_simple_alu=0,
                    n_fp_alu=6,
                    has_fp_complex=True,
                    phys_regs=192,
                ),
            ),
            allow_copies=False,
            bypass_ports=0,
        )

    def with_fifo_issue(self) -> "ProcessorConfig":
        """The same machine with FIFO-organised windows (§3.9)."""
        return replace(self, name=self.name + "+fifo", fifo_issue=True)
