"""Simulation statistics and results.

:class:`SimStats` accumulates raw counters during the measurement window;
:meth:`SimStats.finalize` turns them into an immutable :class:`SimResult`
with the derived metrics the paper reports: IPC (and speed-up over a base
result), communications per dynamic instruction split into critical and
non-critical (Figures 5/8), the workload-balance distribution (Figures
6/9/12), and register replication (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import DynInst, InstrClass

#: Workload-balance histogram range: differences are clamped to ±10, as in
#: the paper's Figures 6, 9 and 12.
BALANCE_RANGE = 10
BALANCE_BINS = 2 * BALANCE_RANGE + 1


class SimStats:
    """Mutable counters filled by the processor during simulation."""

    def __init__(self) -> None:
        self.cycles = 0
        self.committed = 0
        self.committed_by_class: Dict[str, int] = {}
        self.copies_created = 0
        self.copies_issued = 0
        self.critical_copies = 0
        self.steered = [0, 0]
        self.balance_hist = [0] * BALANCE_BINS
        self.replication_sum = 0
        self.rob_occupancy_sum = 0
        self.iq_occupancy_sum = [0, 0]
        self.stall_rob = 0
        self.stall_regs = 0
        self.stall_iq = 0
        self.slice_remaps = 0
        self.committed_ldst_slice = 0
        self.committed_br_slice = 0
        # Environment snapshots (predictor / caches) for delta computation.
        self._env_start: Dict[str, int] = {}
        self._env_end: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Per-event hooks
    # ------------------------------------------------------------------
    def on_cycle(
        self,
        replicated_regs: int,
        ready_counts: Sequence[int],
        rob_occupancy: int = 0,
        iq_occupancy: Optional[Sequence[int]] = None,
    ) -> None:
        """Record one simulated cycle's balance/replication/occupancy.

        ``ready_counts`` is the per-cluster number of issue candidates
        whose operands were all complete this cycle — maintained by the
        event-driven scheduler's ready sets (or counted by the reference
        scan), never recomputed here.
        """
        self.cycles += 1
        self.replication_sum += replicated_regs
        self.rob_occupancy_sum += rob_occupancy
        if iq_occupancy is not None:
            self.iq_occupancy_sum[0] += iq_occupancy[0]
            self.iq_occupancy_sum[1] += iq_occupancy[1]
        diff = ready_counts[1] - ready_counts[0]
        if diff > BALANCE_RANGE:
            diff = BALANCE_RANGE
        elif diff < -BALANCE_RANGE:
            diff = -BALANCE_RANGE
        self.balance_hist[diff + BALANCE_RANGE] += 1

    def on_commit(self, dyn: DynInst) -> None:
        """Record one committed instruction."""
        self.committed += 1
        key = dyn.cls.name
        self.committed_by_class[key] = self.committed_by_class.get(key, 0) + 1
        if dyn.in_ldst_slice:
            self.committed_ldst_slice += 1
        if dyn.in_br_slice:
            self.committed_br_slice += 1

    def snapshot_environment(self, processor) -> None:
        """Capture predictor/cache counters at measurement start."""
        self._env_start = self._environment(processor)

    @staticmethod
    def _environment(processor) -> Dict[str, int]:
        h = processor.hierarchy
        p = processor.predictor
        return {
            "predictions": p.predictions,
            "mispredictions": p.mispredictions,
            "l1d_hits": h.l1d.hits,
            "l1d_misses": h.l1d.misses,
            "l1i_hits": h.l1i.hits,
            "l1i_misses": h.l1i.misses,
            "l2_hits": h.l2.hits,
            "l2_misses": h.l2.misses,
        }

    # ------------------------------------------------------------------
    def finalize(
        self,
        processor,
        benchmark: str,
        scheme: str,
    ) -> "SimResult":
        """Produce the immutable result for the measurement window."""
        self._env_end = self._environment(processor)
        start = self._env_start or {k: 0 for k in self._env_end}
        delta = {k: self._env_end[k] - start.get(k, 0) for k in self._env_end}

        def rate(misses: str, hits: str) -> float:
            total = delta[misses] + delta[hits]
            return delta[misses] / total if total else 0.0

        predictions = delta["predictions"]
        accuracy = (
            1.0 - delta["mispredictions"] / predictions if predictions else 1.0
        )
        cycles = max(1, self.cycles)
        committed = self.committed
        hist_total = sum(self.balance_hist) or 1
        return SimResult(
            benchmark=benchmark,
            scheme=scheme,
            config_name=processor.config.name,
            cycles=self.cycles,
            instructions=committed,
            ipc=committed / cycles,
            copies_created=self.copies_created,
            copies_issued=self.copies_issued,
            critical_copies=self.critical_copies,
            comms_per_instr=(
                self.copies_issued / committed if committed else 0.0
            ),
            critical_comms_per_instr=(
                self.critical_copies / committed if committed else 0.0
            ),
            balance_distribution=tuple(
                count / hist_total for count in self.balance_hist
            ),
            avg_replication=self.replication_sum / cycles,
            avg_rob_occupancy=self.rob_occupancy_sum / cycles,
            avg_iq_occupancy=(
                self.iq_occupancy_sum[0] / cycles,
                self.iq_occupancy_sum[1] / cycles,
            ),
            branch_accuracy=accuracy,
            l1d_miss_rate=rate("l1d_misses", "l1d_hits"),
            l1i_miss_rate=rate("l1i_misses", "l1i_hits"),
            l2_miss_rate=rate("l2_misses", "l2_hits"),
            steered=tuple(self.steered),
            committed_by_class=dict(self.committed_by_class),
            stalls={
                "rob": self.stall_rob,
                "regs": self.stall_regs,
                "iq": self.stall_iq,
            },
            slice_remaps=self.slice_remaps,
            slice_fraction_ldst=(
                self.committed_ldst_slice / committed if committed else 0.0
            ),
            slice_fraction_br=(
                self.committed_br_slice / committed if committed else 0.0
            ),
        )


@dataclass(frozen=True)
class SimResult:
    """Immutable metrics of one simulation run."""

    benchmark: str
    scheme: str
    config_name: str
    cycles: int
    instructions: int
    ipc: float
    copies_created: int
    copies_issued: int
    critical_copies: int
    comms_per_instr: float
    critical_comms_per_instr: float
    balance_distribution: Tuple[float, ...]
    avg_replication: float
    avg_rob_occupancy: float
    avg_iq_occupancy: Tuple[float, float]
    branch_accuracy: float
    l1d_miss_rate: float
    l1i_miss_rate: float
    l2_miss_rate: float
    steered: Tuple[int, int]
    committed_by_class: Dict[str, int]
    stalls: Dict[str, int]
    slice_remaps: int = 0
    slice_fraction_ldst: float = 0.0
    slice_fraction_br: float = 0.0

    def speedup_over(self, base: "SimResult") -> float:
        """Fractional IPC improvement over *base* (0.36 == +36%)."""
        if base.ipc <= 0:
            raise ValueError("base result has non-positive IPC")
        return self.ipc / base.ipc - 1.0

    @property
    def noncritical_comms_per_instr(self) -> float:
        """Communications per instruction that delayed no consumer."""
        return self.comms_per_instr - self.critical_comms_per_instr

    def balance_at(self, diff: int) -> float:
        """Fraction of cycles with ``ready_fp - ready_int == diff``.

        *diff* is clamped to ±10 like the figure's x-axis.
        """
        if diff > BALANCE_RANGE:
            diff = BALANCE_RANGE
        elif diff < -BALANCE_RANGE:
            diff = -BALANCE_RANGE
        return self.balance_distribution[diff + BALANCE_RANGE]

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.benchmark:>9s} {self.scheme:<22s} ipc={self.ipc:5.2f} "
            f"comm/instr={self.comms_per_instr:6.3f} "
            f"(crit {self.critical_comms_per_instr:6.3f}) "
            f"repl={self.avg_replication:4.1f}"
        )
