"""Reorder buffer: the in-order commit window.

Table 2 allows 64 in-flight instructions.  Copy instructions are *not*
architectural and do not occupy ROB entries (they are bounded instead by
the issue-queue entries and physical registers they hold).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import SimulationError
from ..isa import DynInst


class ReorderBuffer:
    """Bounded FIFO of in-flight architectural instructions."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no more instructions may dispatch."""
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when nothing is in flight."""
        return not self._entries

    @property
    def head(self) -> Optional[DynInst]:
        """Oldest in-flight instruction (next to commit), if any."""
        return self._entries[0] if self._entries else None

    def push(self, dyn: DynInst) -> None:
        """Insert at dispatch, program order."""
        if self.full:
            raise SimulationError("push into a full ROB")
        if self._entries and dyn.seq <= self._entries[-1].seq:
            raise SimulationError("ROB entries must arrive in program order")
        self._entries.append(dyn)

    def pop(self) -> DynInst:
        """Remove the committed head."""
        if not self._entries:
            raise SimulationError("pop from an empty ROB")
        return self._entries.popleft()
