"""Top-level simulation API.

:func:`simulate` is the one-call entry point used by the examples, the
benchmark harness and most tests:

>>> from repro import simulate
>>> result = simulate("gcc", steering="general-balance",
...                   n_instructions=5000, warmup=1000)
>>> result.ipc > 0
True

Execution routes through :mod:`repro.spec.facade` — the same core that
:func:`repro.run`, the campaign engine and the CLI use — so a call here
behaves identically to the equivalent declarative
:class:`~repro.spec.RunSpec`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.steering import SteeringScheme
from ..workloads import Workload
from .config import ProcessorConfig
from .stats import SimResult

#: Default measured-window length (dynamic instructions).
DEFAULT_INSTRUCTIONS = 20000
#: Default warm-up length (dynamic instructions, not measured).
DEFAULT_WARMUP = 5000


def simulate(
    bench: Union[str, Workload],
    steering: Union[str, SteeringScheme] = "general-balance",
    config: Optional[ProcessorConfig] = None,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
) -> SimResult:
    """Simulate *bench* under a steering scheme and return the metrics.

    Parameters
    ----------
    bench:
        Benchmark name (``"gcc"``, ``"go"``...) or a prebuilt
        :class:`~repro.workloads.Workload`.
    steering:
        Scheme name from :func:`repro.core.steering.available_schemes`,
        or a scheme instance.
    config:
        Machine description; defaults to the clustered machine of
        Table 2.  The FIFO steering scheme automatically switches the
        window organisation when the caller did not.
    n_instructions / warmup:
        Measured-window and warm-up lengths in committed instructions.
    seed:
        Workload generation/trace seed (ignored when *bench* is already a
        :class:`Workload`).
    """
    # Imported here, not at module level: the facade sits above the
    # pipeline package in the import graph.
    from ..spec.facade import execute_resolved

    return execute_resolved(
        bench, steering, config, n_instructions, warmup, seed
    )


def simulate_baseline(
    bench: Union[str, Workload],
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
) -> SimResult:
    """Simulate the conventional base machine (naive partitioning).

    Every speed-up in the paper is measured against this run.
    """
    return simulate(
        bench,
        steering="naive",
        config=ProcessorConfig.baseline(),
        n_instructions=n_instructions,
        warmup=warmup,
        seed=seed,
    )


def simulate_upper_bound(
    bench: Union[str, Workload],
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0,
) -> SimResult:
    """Simulate the 16-way upper-bound machine of Figure 14."""
    return simulate(
        bench,
        steering="naive",
        config=ProcessorConfig.upper_bound(),
        n_instructions=n_instructions,
        warmup=warmup,
        seed=seed,
    )
