"""Cycle-level pipeline: configuration, processor, statistics, driver."""

from .config import CacheConfig, ClusterConfig, ProcessorConfig
from .processor import Processor
from .rob import ReorderBuffer
from .simulator import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    simulate,
    simulate_baseline,
    simulate_upper_bound,
)
from .stats import BALANCE_RANGE, SimResult, SimStats

__all__ = [
    "CacheConfig",
    "ClusterConfig",
    "ProcessorConfig",
    "Processor",
    "ReorderBuffer",
    "DEFAULT_INSTRUCTIONS",
    "DEFAULT_WARMUP",
    "simulate",
    "simulate_baseline",
    "simulate_upper_bound",
    "BALANCE_RANGE",
    "SimResult",
    "SimStats",
]
