"""Core mechanisms: slices, balance estimation, RDG analysis, steering."""

from .balance import ImbalanceEstimator
from .rdg import (
    backward_slice,
    br_slice,
    build_rdg,
    extend_with_neighbors,
    ldst_slice,
    reaching_definitions,
)
from .slices import (
    ClusterTable,
    ParentTable,
    SliceFlagTable,
    SliceIdTable,
)

__all__ = [
    "ImbalanceEstimator",
    "backward_slice",
    "br_slice",
    "build_rdg",
    "extend_with_neighbors",
    "ldst_slice",
    "reaching_definitions",
    "ClusterTable",
    "ParentTable",
    "SliceFlagTable",
    "SliceIdTable",
]
