"""Core mechanisms: slices, balance estimation, RDG analysis, steering."""

from .balance import ImbalanceEstimator
from .rdg import (
    backward_slice,
    br_slice,
    build_rdg,
    cached_rdg,
    extend_with_neighbors,
    ldst_slice,
    rdg_cache_stats,
    reaching_definitions,
    reset_rdg_stats,
)
from .slices import (
    ClusterTable,
    ParentTable,
    SliceFlagTable,
    SliceIdTable,
)

__all__ = [
    "ImbalanceEstimator",
    "backward_slice",
    "br_slice",
    "build_rdg",
    "cached_rdg",
    "extend_with_neighbors",
    "ldst_slice",
    "rdg_cache_stats",
    "reaching_definitions",
    "reset_rdg_stats",
    "ClusterTable",
    "ParentTable",
    "SliceFlagTable",
    "SliceIdTable",
]
