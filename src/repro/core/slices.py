"""Runtime slice-detection hardware (paper §3.3 and Figure 10).

Three small tables implement run-time backward-slice discovery:

* the **parent table** holds, for each logical register, the PC of the
  last decoded instruction that wrote it — following one step of these
  pointers finds an instruction's parents in the register dependence
  graph;
* the **slice flag table** (LdSt / Br slice steering) holds one bit per
  static instruction: memory instructions (resp. branches) set their own
  bit, and any instruction whose bit is set propagates it to its parents,
  so slices grow backward over successive dynamic executions;
* the **slice table + cluster table** (slice balance steering) generalise
  the bit to a slice *identifier* — the PC of the defining load/store or
  branch — and map each slice to its current cluster, with bookkeeping
  for criticality (cache misses / mispredictions of the defining
  instruction) used by the priority scheme.

Address slices follow *address* sources only: a store's data operand is
not part of the LdSt slice (the slice is the backward slice of the
address computation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..isa import DynInst, InstrClass


def _slice_parents(dyn: DynInst) -> Tuple[int, ...]:
    """Source registers through which slice membership propagates."""
    inst = dyn.inst
    if inst.cls is InstrClass.STORE or inst.cls is InstrClass.LOAD:
        return inst.issue_srcs  # address sources only
    return inst.srcs


class ParentTable:
    """Logical register -> PC of its last decoded writer."""

    def __init__(self) -> None:
        self._writer: Dict[int, int] = {}

    def parents_of(self, dyn: DynInst) -> List[int]:
        """PCs of the producers of *dyn*'s slice-relevant sources.

        Must be called *before* :meth:`note_decode` for the same
        instruction so self-updating registers (``r5 = r5 + 4``) resolve
        to the previous writer.
        """
        writer = self._writer
        parents = []
        for reg in _slice_parents(dyn):
            pc = writer.get(reg)
            if pc is not None:
                parents.append(pc)
        return parents

    def note_decode(self, dyn: DynInst) -> None:
        """Record *dyn* as the latest writer of its destination."""
        dst = dyn.inst.dst
        if dst is not None:
            self._writer[dst] = dyn.inst.pc


class SliceFlagTable:
    """PC-indexed one-bit slice membership (LdSt or Br slice steering)."""

    #: Slice kinds and the instruction classes that define them.
    KINDS = {
        "ldst": (InstrClass.LOAD, InstrClass.STORE),
        "br": (InstrClass.BRANCH,),
    }

    def __init__(self, kind: str) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown slice kind {kind!r}")
        self.kind = kind
        self._defining = self.KINDS[kind]
        self._flags: Dict[int, bool] = {}
        #: Monotonic generation counter, bumped every time a flag turns
        #: on.  Flags are sticky (never cleared), so any cached function
        #: of the table's state — e.g. a steering-decision memo keyed by
        #: PC — is valid exactly while ``version`` is unchanged.
        self.version = 0

    def in_slice(self, pc: int) -> bool:
        """Current belief: does the instruction at *pc* belong to the slice?"""
        return self._flags.get(pc, False)

    def observe(self, dyn: DynInst, parents: ParentTable) -> bool:
        """Process one decoded instruction; returns slice membership.

        Implements the hardware of §3.3: defining instructions set their
        own flag; flagged instructions set their parents' flags.
        """
        pc = dyn.inst.pc
        flags = self._flags
        if dyn.cls in self._defining and not flags.get(pc, False):
            flags[pc] = True
            self.version += 1
        if flags.get(pc, False):
            for parent_pc in parents.parents_of(dyn):
                if not flags.get(parent_pc, False):
                    flags[parent_pc] = True
                    self.version += 1
            return True
        return False

    def __len__(self) -> int:
        return sum(1 for v in self._flags.values() if v)


#: Slice table value meaning "belongs to no slice".
NO_SLICE: Optional[int] = None


class SliceIdTable:
    """PC -> slice identifier (the defining instruction's PC)."""

    def __init__(self, kind: str) -> None:
        if kind not in SliceFlagTable.KINDS:
            raise ValueError(f"unknown slice kind {kind!r}")
        self.kind = kind
        self._defining = SliceFlagTable.KINDS[kind]
        self._ids: Dict[int, int] = {}

    def slice_of(self, pc: int) -> Optional[int]:
        """Slice id of the instruction at *pc* (None = no slice)."""
        return self._ids.get(pc)

    def observe(self, dyn: DynInst, parents: ParentTable) -> Optional[int]:
        """Process one decoded instruction; returns its slice id.

        Defining instructions always (re)join their own slice; any
        instruction in a slice propagates the id to its parents.
        """
        pc = dyn.inst.pc
        ids = self._ids
        if dyn.cls in self._defining:
            ids[pc] = pc
        sid = ids.get(pc)
        if sid is not None:
            for parent_pc in parents.parents_of(dyn):
                ids[parent_pc] = sid
        return sid


class ClusterTable:
    """Slice id -> assigned cluster, plus criticality bookkeeping."""

    def __init__(self) -> None:
        self._cluster: Dict[int, int] = {}
        self._events: Dict[int, int] = {}
        self.remaps = 0

    def cluster_of(self, sid: int, default: int) -> int:
        """Cluster the slice is mapped to; assign *default* on first use."""
        cluster = self._cluster.get(sid)
        if cluster is None:
            self._cluster[sid] = default
            return default
        return cluster

    def remap(self, sid: int, cluster: int) -> None:
        """Move the whole slice to *cluster* (strong-imbalance response)."""
        self._cluster[sid] = cluster
        self.remaps += 1

    def record_event(self, sid: int) -> None:
        """Count a cache miss / misprediction of the defining instruction."""
        self._events[sid] = self._events.get(sid, 0) + 1

    def events(self, sid: int) -> int:
        """Criticality event count of a slice."""
        return self._events.get(sid, 0)

    def is_critical(self, sid: int, threshold: int) -> bool:
        """Whether the slice's defining instruction misbehaves often."""
        return self._events.get(sid, 0) >= threshold
