"""Register dependence graph and offline backward slices (paper §3.1).

The RDG has one node per static instruction and an edge for every true
register dependence.  Memory instructions are special: following the
paper, only their *address* sources create incoming edges (the store's
data operand is not part of the address computation), while a load's
destination links the memory value into downstream computation — which is
what makes pointer-chasing code put loads inside the LdSt slice.

Building a static RDG requires knowing which definitions reach each use
across the CFG, so this module implements a classic iterative
reaching-definitions analysis and derives def-use edges from it.  The
result feeds the *static* partitioning comparator (§3.3 / Figure 3,
after Sastry, Palacharla & Smith) and the offline analyses in tests and
examples.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Iterable, Set, Tuple

import networkx as nx

from ..isa import Instruction, InstrClass
from ..workloads.program import StaticProgram


def _incoming_regs(inst: Instruction) -> Tuple[int, ...]:
    """Source registers that create RDG edges into *inst*."""
    if inst.cls is InstrClass.STORE or inst.cls is InstrClass.LOAD:
        return inst.issue_srcs
    return inst.srcs


def reaching_definitions(
    program: StaticProgram,
) -> Dict[int, Dict[int, FrozenSet[int]]]:
    """Definitions reaching each *block entry*.

    Returns ``{block_id: {register: frozenset of defining PCs}}``.  The
    analysis is the standard forward may-analysis with union meet,
    iterated to a fixpoint over the closed CFG.
    """
    blocks = program.blocks
    # GEN/KILL summaries: last definition of each register inside a block.
    gen: Dict[int, Dict[int, int]] = {}
    for block in blocks:
        defs: Dict[int, int] = {}
        for inst in block:
            if inst.dst is not None:
                defs[inst.dst] = inst.pc
        gen[block.block_id] = defs

    preds: Dict[int, Set[int]] = {b.block_id: set() for b in blocks}
    for block in blocks:
        for succ in (block.taken_succ, block.fall_succ):
            if succ is not None:
                preds[succ].add(block.block_id)

    in_sets: Dict[int, Dict[int, FrozenSet[int]]] = {
        b.block_id: {} for b in blocks
    }
    out_sets: Dict[int, Dict[int, FrozenSet[int]]] = {
        b.block_id: {} for b in blocks
    }
    changed = True
    while changed:
        changed = False
        for block in blocks:
            bid = block.block_id
            new_in: Dict[int, Set[int]] = {}
            for pred in preds[bid]:
                for reg, pcs in out_sets[pred].items():
                    new_in.setdefault(reg, set()).update(pcs)
            frozen_in = {reg: frozenset(pcs) for reg, pcs in new_in.items()}
            if frozen_in != in_sets[bid]:
                in_sets[bid] = frozen_in
                changed = True
            new_out = dict(frozen_in)
            for reg, pc in gen[bid].items():
                new_out[reg] = frozenset((pc,))
            if new_out != out_sets[bid]:
                out_sets[bid] = new_out
                changed = True
    return in_sets


def build_rdg(program: StaticProgram) -> nx.DiGraph:
    """Build the register dependence graph of *program*.

    Nodes are instruction PCs (with the static :class:`Instruction` as a
    ``inst`` attribute); a directed edge ``u -> v`` means *v* may consume
    a value produced by *u*.
    """
    graph = nx.DiGraph()
    for inst in program.all_instructions():
        graph.add_node(inst.pc, inst=inst)
    entry_defs = reaching_definitions(program)
    for block in program.blocks:
        live: Dict[int, FrozenSet[int]] = dict(entry_defs[block.block_id])
        for inst in block:
            for reg in _incoming_regs(inst):
                for def_pc in live.get(reg, ()):  # may be undefined
                    graph.add_edge(def_pc, inst.pc)
            if inst.dst is not None:
                live[inst.dst] = frozenset((inst.pc,))
    return graph


#: One RDG per live program: reaching definitions dominate the cost of
#: static steering setup, and the graph is immutable once built, so every
#: scheme steering the same program can share it.  Weak keys let programs
#: (and their graphs) be collected when no workload holds them any more.
_RDG_CACHE: "weakref.WeakKeyDictionary[StaticProgram, nx.DiGraph]" = (
    weakref.WeakKeyDictionary()
)
_RDG_STATS = {"builds": 0, "hits": 0}


def cached_rdg(program: StaticProgram) -> nx.DiGraph:
    """The RDG of *program*, built at most once per live program object."""
    graph = _RDG_CACHE.get(program)
    if graph is None:
        graph = build_rdg(program)
        _RDG_CACHE[program] = graph
        _RDG_STATS["builds"] += 1
    else:
        _RDG_STATS["hits"] += 1
    return graph


def rdg_cache_stats() -> Dict[str, int]:
    """Snapshot of ``{"builds": ..., "hits": ...}`` since the last reset."""
    return dict(_RDG_STATS)


def reset_rdg_stats() -> None:
    """Zero the build/hit counters (test isolation)."""
    _RDG_STATS["builds"] = 0
    _RDG_STATS["hits"] = 0


def backward_slice(graph: nx.DiGraph, pc: int) -> Set[int]:
    """Nodes from which *pc* is reachable, including *pc* (paper §3.1)."""
    if pc not in graph:
        raise KeyError(f"pc {pc:#x} not in RDG")
    nodes = set(nx.ancestors(graph, pc))
    nodes.add(pc)
    return nodes


def _slice_union(
    program: StaticProgram,
    graph: nx.DiGraph,
    classes: Iterable[InstrClass],
) -> Set[int]:
    targets = [
        inst.pc
        for inst in program.all_instructions()
        if inst.cls in tuple(classes)
    ]
    result: Set[int] = set()
    for pc in targets:
        result |= backward_slice(graph, pc)
    return result


def ldst_slice(program: StaticProgram, graph: nx.DiGraph = None) -> Set[int]:
    """Static LdSt slice: union of backward slices of address computations."""
    graph = graph if graph is not None else cached_rdg(program)
    return _slice_union(
        program, graph, (InstrClass.LOAD, InstrClass.STORE)
    )


def br_slice(program: StaticProgram, graph: nx.DiGraph = None) -> Set[int]:
    """Static Br slice: union of backward slices of branches."""
    graph = graph if graph is not None else cached_rdg(program)
    return _slice_union(program, graph, (InstrClass.BRANCH,))


def extend_with_neighbors(
    graph: nx.DiGraph, slice_pcs: Set[int], hops: int = 1
) -> Set[int]:
    """Sastry-style slice extension: add forward neighbours.

    The static partitioning of [18] extends the LdSt slice with nearby
    instructions to improve workload balance; *hops* successive layers of
    RDG successors are folded in.
    """
    result = set(slice_pcs)
    frontier = set(slice_pcs)
    for _ in range(max(0, hops)):
        nxt: Set[int] = set()
        for pc in frontier:
            nxt.update(graph.successors(pc))
        nxt -= result
        if not nxt:
            break
        result |= nxt
        frontier = nxt
    return result
