"""Dynamic cluster assignment mechanisms (the paper's contribution)."""

from .base import (
    FP_CLUSTER,
    INT_CLUSTER,
    SteeringScheme,
    affinity_cluster,
    least_loaded,
    operand_presence,
    resolve_steering_hooks,
)
from .context import SteeringContext, context_for
from .extensions import (
    AffinityOnlySteering,
    BalanceOnlySteering,
    PrimaryClusterSteering,
)
from .fifo import FifoSteering
from .general import GeneralBalanceSteering
from .modulo import ModuloSteering
from .naive import NaiveSteering
from .nonslice_balance import NonSliceBalanceSteering
from .priority import PrioritySliceBalanceSteering
from .registry import (
    available_schemes,
    make_steering,
    register_scheme,
    scheme_api,
    scheme_description,
)
from .slice_balance import SliceBalanceSteering
from .slice_steering import BrSliceSteering, LdStSliceSteering, SliceSteering
from .static import StaticLdStSliceSteering

__all__ = [
    "FP_CLUSTER",
    "INT_CLUSTER",
    "SteeringScheme",
    "affinity_cluster",
    "least_loaded",
    "operand_presence",
    "resolve_steering_hooks",
    "SteeringContext",
    "context_for",
    "AffinityOnlySteering",
    "BalanceOnlySteering",
    "PrimaryClusterSteering",
    "FifoSteering",
    "GeneralBalanceSteering",
    "ModuloSteering",
    "NaiveSteering",
    "NonSliceBalanceSteering",
    "PrioritySliceBalanceSteering",
    "available_schemes",
    "make_steering",
    "register_scheme",
    "scheme_api",
    "scheme_description",
    "SliceBalanceSteering",
    "BrSliceSteering",
    "LdStSliceSteering",
    "SliceSteering",
    "StaticLdStSliceSteering",
]
