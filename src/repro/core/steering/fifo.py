"""FIFO-based steering (Palacharla, Jouppi & Smith; paper §3.9).

The comparison scheme of Figure 16: each cluster's window is a collection
of FIFOs holding chains of dependent instructions (see
:class:`~repro.cluster.fifo_iq.FifoIssueQueue`).  Cluster choice follows
the dependence-chain heuristic: steer to the cluster where a source
operand's producer currently sits at a FIFO tail (the chain continues in
place); otherwise start a new chain in the cluster with the lighter
window.

The scheme requires the machine to be configured with FIFO windows
(``ProcessorConfig.with_fifo_issue()``); the registry takes care of that
pairing.
"""

from __future__ import annotations

from ...errors import SteeringError
from ...isa import DynInst
from .base import SteeringScheme


class FifoSteering(SteeringScheme):
    """Dependence-chain steering over FIFO windows."""

    name = "fifo"
    requires_fifo_issue = True

    def reset(self, machine) -> None:
        super().reset(machine)
        if not machine.config.fifo_issue:
            raise SteeringError(
                "fifo steering needs ProcessorConfig.with_fifo_issue()"
            )

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        map_table = ctx.map_table
        iqs = ctx.iqs
        srcs = dyn.inst.issue_srcs
        if srcs:
            # Follow the chain of the *first* operand, as the original
            # heuristic does; later operands produced elsewhere become
            # inter-cluster communications (the paper measures 0.162 of
            # them per instruction for this scheme).  Only *in-flight*
            # producers continue a chain — a committed value does not pin
            # new chains to its cluster.
            reg = srcs[0]
            for cluster in (0, 1):
                provider = map_table.provider(reg, cluster)
                if provider is None or provider.issued:
                    continue
                if iqs[cluster].tails_producing(provider):
                    return cluster
                # The producer is in flight but already has a consumer
                # queued behind it (it is not a FIFO tail): the chain
                # cannot be extended, so this instruction starts a new
                # chain — possibly in the other cluster, which is where
                # this scheme's communications come from.
        # New chain: the original heuristic starts it wherever a FIFO is
        # free, without consulting operand locations — spreading chains
        # blindly is what drives this scheme's communication rate (the
        # paper measures 0.162 copies per instruction against 0.042 for
        # general balance steering).
        o0 = iqs[0].occupancy()
        o1 = iqs[1].occupancy()
        if abs(o0 - o1) > ctx.config.fifo_depth:
            return 0 if o0 < o1 else 1
        return dyn.seq & 1
