"""The documented read-view steering schemes receive (batch steering API).

Steering schemes used to poke directly into :class:`Processor` internals
(``machine.map_table``, ``machine.iqs``, ``machine.ready_counts``, …).
:class:`SteeringContext` replaces those ad-hoc pokes with a stable,
documented surface passed to :meth:`SteeringScheme.choose_cluster` and
:meth:`SteeringScheme.on_dispatch`:

``masks``
    Flat per-logical-register presence masks (bit ``c`` set = the value
    has a physical register in cluster ``c``), maintained in place by
    the rename map table.  ``None`` only for exotic machine stand-ins
    without a map table; :meth:`presence_mask` falls back gracefully.
``ready_counts``
    Per-cluster ready-instruction counts from the last issue stage (the
    paper's instantaneous-workload signal).
``iq_occupancy(c)`` / ``iqs``
    Window occupancy per cluster and, on real processors, the queues
    themselves (the FIFO scheme inspects tail producers).
``batch``
    The current dispatch group (the decode buffer, oldest first); the
    instruction being steered is ``batch[0]``.  Read-only.
``memo`` / ``memo_hits`` / ``memo_misses``
    A per-processor steering-decision memo dictionary.  Schemes whose
    decision is a pure function of (pc, slice-state version) cache it
    here and count hits/misses; the processor publishes the counters to
    :mod:`repro.telemetry.metrics` as ``steering.memo.hits`` /
    ``steering.memo.misses`` at the end of each run.
``machine``
    Escape hatch to the full processor (legacy schemes, stats access).

The context wraps any machine-like object (including the lightweight
fakes unit tests use), so scheme code and the helpers in
:mod:`repro.core.steering.base` accept either a context or a bare
machine.
"""

from __future__ import annotations

from .base import FP_CLUSTER


class SteeringContext:
    """Read-only machine view handed to steering schemes."""

    __slots__ = (
        "machine",
        "config",
        "map_table",
        "masks",
        "iqs",
        "program",
        "batch",
        "memo",
        "memo_hits",
        "memo_misses",
    )

    def __init__(self, machine) -> None:
        self.machine = machine
        self.config = machine.config
        map_table = getattr(machine, "map_table", None)
        self.map_table = map_table
        self.masks = getattr(map_table, "masks", None)
        self.iqs = getattr(machine, "iqs", None)
        self.program = getattr(machine, "program", None)
        self.batch = ()
        self.memo = {}
        self.memo_hits = 0
        self.memo_misses = 0

    # ------------------------------------------------------------------
    # Live machine state (re-read on every access)
    # ------------------------------------------------------------------
    @property
    def ready_counts(self):
        """Per-cluster ready counts from the last issue stage."""
        return self.machine.ready_counts

    @property
    def stats(self):
        """The processor's statistics record (slice remap counters)."""
        return self.machine.stats

    def presence_mask(self, reg: int) -> int:
        """Bit mask of clusters where logical register *reg* resides."""
        masks = self.masks
        if masks is not None:
            return masks[reg]
        return self.machine.presence_mask(reg)

    def iq_occupancy(self, cluster: int) -> int:
        """Instructions currently waiting in *cluster*'s window."""
        iqs = self.iqs
        if iqs is not None:
            return len(iqs[cluster])
        return self.machine.iq_occupancy(cluster)

    def least_loaded(self) -> int:
        """Cluster with the lighter instantaneous load.

        Same policy as :func:`repro.core.steering.base.least_loaded`:
        ready counts first, window occupancy as tiebreak, FP cluster on
        a full tie.
        """
        r0, r1 = self.machine.ready_counts
        if r0 != r1:
            return 0 if r0 < r1 else 1
        iqs = self.iqs
        if iqs is not None:
            o0 = len(iqs[0])
            o1 = len(iqs[1])
        else:
            o0 = self.machine.iq_occupancy(0)
            o1 = self.machine.iq_occupancy(1)
        if o0 != o1:
            return 0 if o0 < o1 else 1
        return FP_CLUSTER

    def __repr__(self) -> str:
        return f"<SteeringContext over {self.machine!r}>"


def context_for(machine) -> SteeringContext:
    """The machine's steering context, building a transient one if needed.

    Real processors create and pin their context at construction; this
    helper serves the legacy call paths (``scheme.choose(dyn, machine)``
    with a bare machine or test fake) that need a context on the fly.
    """
    if isinstance(machine, SteeringContext):
        return machine
    ctx = getattr(machine, "_steer_ctx", None)
    if ctx is not None:
        return ctx
    return SteeringContext(machine)
