"""Non-slice balance steering (paper §3.5).

Slice instructions behave exactly as in plain slice steering (to the
integer cluster).  Non-slice instructions improve the workload balance:
under *strong* imbalance (the combined I1/I2 counter beyond its
threshold) they go to the least-loaded cluster; otherwise they follow
their operands to avoid communications.
"""

from __future__ import annotations

from ...isa import DynInst
from ..balance import ImbalanceEstimator
from ..slices import ParentTable, SliceFlagTable
from .base import INT_CLUSTER, SteeringScheme, affinity_cluster


class NonSliceBalanceSteering(SteeringScheme):
    """Slice steering plus imbalance-driven placement of non-slice code."""

    def __init__(self, kind: str) -> None:
        if kind not in SliceFlagTable.KINDS:
            raise ValueError(f"unknown slice kind {kind!r}")
        self.kind = kind
        self.name = f"{kind}-nonslice-balance"

    def reset(self, machine) -> None:
        super().reset(machine)
        config = machine.config
        self.parents = ParentTable()
        self.flags = SliceFlagTable(self.kind)
        self.imbalance = ImbalanceEstimator(
            window=config.imbalance_window,
            threshold=config.imbalance_threshold,
            issue_widths=[c.issue_width for c in config.clusters],
        )

    # ------------------------------------------------------------------
    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        if self.flags.in_slice(dyn.inst.pc):
            return INT_CLUSTER
        if self.imbalance.strongly_imbalanced:
            return self.imbalance.preferred_cluster
        cluster, _tie = affinity_cluster(dyn, ctx)
        return cluster

    def on_dispatch(self, ctx, dyn: DynInst, cluster: int) -> None:
        if dyn.is_copy:
            return
        in_slice = self.flags.observe(dyn, self.parents)
        if self.kind == "ldst":
            dyn.in_ldst_slice = in_slice
        else:
            dyn.in_br_slice = in_slice
        self.parents.note_decode(dyn)
        self.imbalance.on_steer(cluster)

    def on_cycle(self, machine) -> None:
        self.imbalance.on_cycle(machine.ready_counts)
