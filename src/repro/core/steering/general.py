"""General balance steering (paper §3.8) — the headline scheme.

The limit case of the priority scheme where no slice is ever critical:
every instruction is steered individually.  Instructions go to the
least-loaded cluster when there is a strong workload imbalance or when
their operands split evenly between the clusters; otherwise they go where
most of their operands reside.  No slice-detection hardware is needed at
all, and the paper reports the best performance of all schemes: +36% on
average over the base machine, 8% below the 16-way upper bound.
"""

from __future__ import annotations

from ...isa import DynInst
from ..balance import ImbalanceEstimator
from .base import SteeringScheme, affinity_cluster, least_loaded


class GeneralBalanceSteering(SteeringScheme):
    """Operand affinity with an imbalance override, no slices."""

    name = "general-balance"

    def reset(self, machine) -> None:
        super().reset(machine)
        config = machine.config
        self.imbalance = ImbalanceEstimator(
            window=config.imbalance_window,
            threshold=config.imbalance_threshold,
            issue_widths=[c.issue_width for c in config.clusters],
        )

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        if self.imbalance.strongly_imbalanced:
            return self.imbalance.preferred_cluster
        masks = ctx.masks
        if masks is not None:
            # Inline operand affinity over the flat presence masks — the
            # hottest steering path on the headline scheme.
            c0 = c1 = 0
            for reg in dyn.inst.srcs:
                mask = masks[reg]
                if mask & 1:
                    c0 += 1
                if mask & 2:
                    c1 += 1
            if c0 != c1:
                return 0 if c0 > c1 else 1
            return ctx.least_loaded()
        cluster, tie = affinity_cluster(dyn, ctx)
        if tie:
            return least_loaded(ctx)
        return cluster

    def on_dispatch(self, ctx, dyn: DynInst, cluster: int) -> None:
        if not dyn.is_copy:
            self.imbalance.on_steer(cluster)

    def on_cycle(self, machine) -> None:
        self.imbalance.on_cycle(machine.ready_counts)
