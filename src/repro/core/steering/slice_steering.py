"""LdSt / Br slice steering (paper §3.3-3.4).

Instructions believed to belong to the LdSt slice (resp. Br slice) are
dispatched to the integer cluster; everything else goes to the FP cluster
(complex integer instructions excepted, which the processor forces to the
integer cluster).  Slice membership is discovered at run time with the
flag and parent tables of §3.3.

The cluster choice is a pure function of ``(pc, flag-table state)``, and
the flag table is sticky (bits only ever turn on), so decisions are
memoised in the steering context keyed by PC and invalidated wholesale
whenever the table's generation counter moves — repeated executions of a
hot loop hit the memo instead of re-querying the table.
"""

from __future__ import annotations

from ...isa import DynInst
from ..slices import ParentTable, SliceFlagTable
from .base import FP_CLUSTER, INT_CLUSTER, SteeringScheme


class SliceSteering(SteeringScheme):
    """Runtime slice detection; slice to cluster 0, the rest to cluster 1."""

    def __init__(self, kind: str) -> None:
        if kind not in SliceFlagTable.KINDS:
            raise ValueError(f"unknown slice kind {kind!r}")
        self.kind = kind
        self.name = f"{kind}-slice"

    def reset(self, machine) -> None:
        super().reset(machine)
        self.parents = ParentTable()
        self.flags = SliceFlagTable(self.kind)
        self._memo_version = -1

    # ------------------------------------------------------------------
    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        flags = self.flags
        memo = ctx.memo
        if flags.version != self._memo_version:
            memo.clear()
            self._memo_version = flags.version
        pc = dyn.inst.pc
        cluster = memo.get(pc, -1)
        if cluster >= 0:
            ctx.memo_hits += 1
            return cluster
        ctx.memo_misses += 1
        cluster = INT_CLUSTER if flags.in_slice(pc) else FP_CLUSTER
        memo[pc] = cluster
        return cluster

    def on_dispatch(self, ctx, dyn: DynInst, cluster: int) -> None:
        if dyn.is_copy:
            return
        in_slice = self.flags.observe(dyn, self.parents)
        if self.kind == "ldst":
            dyn.in_ldst_slice = in_slice
        else:
            dyn.in_br_slice = in_slice
        self.parents.note_decode(dyn)


class LdStSliceSteering(SliceSteering):
    """Backward slices of address computations to the integer cluster."""

    def __init__(self) -> None:
        super().__init__("ldst")


class BrSliceSteering(SliceSteering):
    """Backward slices of branches to the integer cluster."""

    def __init__(self) -> None:
        super().__init__("br")
