"""LdSt / Br slice steering (paper §3.3-3.4).

Instructions believed to belong to the LdSt slice (resp. Br slice) are
dispatched to the integer cluster; everything else goes to the FP cluster
(complex integer instructions excepted, which the processor forces to the
integer cluster).  Slice membership is discovered at run time with the
flag and parent tables of §3.3.
"""

from __future__ import annotations

from ...isa import DynInst
from ..slices import ParentTable, SliceFlagTable
from .base import FP_CLUSTER, INT_CLUSTER, SteeringScheme


class SliceSteering(SteeringScheme):
    """Runtime slice detection; slice to cluster 0, the rest to cluster 1."""

    def __init__(self, kind: str) -> None:
        if kind not in SliceFlagTable.KINDS:
            raise ValueError(f"unknown slice kind {kind!r}")
        self.kind = kind
        self.name = f"{kind}-slice"

    def reset(self, machine) -> None:
        super().reset(machine)
        self.parents = ParentTable()
        self.flags = SliceFlagTable(self.kind)

    # ------------------------------------------------------------------
    def choose(self, dyn: DynInst, machine) -> int:
        if self.flags.in_slice(dyn.inst.pc):
            return INT_CLUSTER
        return FP_CLUSTER

    def on_dispatch(self, dyn: DynInst, cluster: int) -> None:
        if dyn.is_copy:
            return
        in_slice = self.flags.observe(dyn, self.parents)
        if self.kind == "ldst":
            dyn.in_ldst_slice = in_slice
        else:
            dyn.in_br_slice = in_slice
        self.parents.note_decode(dyn)


class LdStSliceSteering(SliceSteering):
    """Backward slices of address computations to the integer cluster."""

    def __init__(self) -> None:
        super().__init__("ldst")


class BrSliceSteering(SliceSteering):
    """Backward slices of branches to the integer cluster."""

    def __init__(self) -> None:
        super().__init__("br")
