"""Slice balance steering (paper §3.6, Figure 10 hardware).

Whole backward slices — identified at run time by the PC of their
defining load/store (or branch) — are mapped to clusters through the
cluster table, so one slice's instructions stay together while different
slices spread across both clusters.  Under strong imbalance the whole
slice of the instruction being steered is re-mapped to the other cluster.
Non-slice instructions follow the non-slice balance policy.
"""

from __future__ import annotations

from ...isa import DynInst
from ..balance import ImbalanceEstimator
from ..slices import ClusterTable, ParentTable, SliceIdTable
from .base import SteeringScheme, affinity_cluster, least_loaded


class SliceBalanceSteering(SteeringScheme):
    """Per-slice cluster assignment with imbalance-driven re-mapping."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.name = f"{kind}-slice-balance"

    def reset(self, machine) -> None:
        super().reset(machine)
        config = machine.config
        self.parents = ParentTable()
        self.slice_ids = SliceIdTable(self.kind)
        self.clusters = ClusterTable()
        self.imbalance = ImbalanceEstimator(
            window=config.imbalance_window,
            threshold=config.imbalance_threshold,
            issue_widths=[c.issue_width for c in config.clusters],
        )

    # ------------------------------------------------------------------
    def _steer_slice(self, sid: int, ctx) -> int:
        """Cluster of slice *sid*, re-mapping it under strong imbalance."""
        cluster = self.clusters.cluster_of(sid, default=least_loaded(ctx))
        if (
            self.imbalance.strongly_imbalanced
            and cluster == self.imbalance.overloaded_cluster
        ):
            cluster = 1 - cluster
            self.clusters.remap(sid, cluster)
            ctx.stats.slice_remaps += 1
        return cluster

    def _steer_nonslice(self, dyn: DynInst, ctx) -> int:
        if self.imbalance.strongly_imbalanced:
            return self.imbalance.preferred_cluster
        cluster, _tie = affinity_cluster(dyn, ctx)
        return cluster

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        sid = self.slice_ids.slice_of(dyn.inst.pc)
        if sid is not None:
            return self._steer_slice(sid, ctx)
        return self._steer_nonslice(dyn, ctx)

    # ------------------------------------------------------------------
    def on_dispatch(self, ctx, dyn: DynInst, cluster: int) -> None:
        if dyn.is_copy:
            return
        sid = self.slice_ids.observe(dyn, self.parents)
        if self.kind == "ldst":
            dyn.in_ldst_slice = sid is not None
        else:
            dyn.in_br_slice = sid is not None
        self.parents.note_decode(dyn)
        self.imbalance.on_steer(cluster)

    def on_cycle(self, machine) -> None:
        self.imbalance.on_cycle(machine.ready_counts)
