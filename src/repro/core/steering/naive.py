"""Naive integer/FP partitioning (the conventional machine).

This is the code partitioning of current superscalars the paper's
introduction describes: integer instructions to the integer cluster, FP
instructions to the FP cluster, communication only through memory.  It is
the scheme the *base* architecture runs, and the denominator of every
speed-up in the paper.
"""

from __future__ import annotations

from ...isa import DynInst, InstrClass
from .base import FP_CLUSTER, INT_CLUSTER, SteeringScheme


class NaiveSteering(SteeringScheme):
    """Integer work to cluster 0, FP work to cluster 1."""

    name = "naive"

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        if dyn.cls is InstrClass.FP:
            return FP_CLUSTER
        return INT_CLUSTER
