"""Extension schemes beyond the paper's main line.

Section 3.8 notes that *"similar schemes to the General Balance one can
be found in a work of the same authors"* (Canal, Parcerisa & González,
PACT 1999).  This module provides the natural neighbours of general
balance steering, both as usable schemes and as a decomposition ablation
of what makes the headline scheme work:

* :class:`AffinityOnlySteering` — follow the operands, never balance.
  Minimises communications but lets the workload collapse onto one
  cluster (dependence chains attract their consumers for ever).
* :class:`BalanceOnlySteering` — always pick the least-loaded cluster,
  ignore operand locations.  Nearly ideal balance, communications close
  to modulo steering.
* :class:`PrimaryClusterSteering` — an RMBS-flavoured scheme (after the
  authors' follow-up work on register-mapping-based steering): each
  logical register has a *primary* cluster fixed by a hash of its index;
  instructions go to the primary cluster of their destination register
  unless strong imbalance overrides.  It needs no operand-location
  lookups at all (cheaper hardware than general balance) and lands
  between modulo and general balance.

The ``benchmarks/test_ablation_decomposition.py`` bench races all of
these against general balance, demonstrating that *both* ingredients —
affinity and the imbalance override — are necessary.
"""

from __future__ import annotations

from ...isa import DynInst
from ..balance import ImbalanceEstimator
from .base import SteeringScheme, affinity_cluster, least_loaded


class AffinityOnlySteering(SteeringScheme):
    """Operand affinity with no balance correction at all."""

    name = "affinity-only"

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        cluster, tie = affinity_cluster(dyn, ctx)
        if tie:
            # Without a balance signal, break ties toward the integer
            # cluster (the conventional home of integer code).
            return 0
        return cluster


class BalanceOnlySteering(SteeringScheme):
    """Always steer to the least-loaded cluster, ignoring operands."""

    name = "balance-only"

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        return ctx.least_loaded()


class PrimaryClusterSteering(SteeringScheme):
    """Register-mapping-based steering: destination picks the cluster.

    Each logical register is statically owned by a *primary* cluster
    (even registers -> cluster 0, odd -> cluster 1, mirroring a banked
    register file).  An instruction executes in its destination's
    primary cluster, so consumers of that register always know where to
    find it; the imbalance counter overrides under strong imbalance
    exactly like the paper's schemes.
    """

    name = "primary-cluster"

    def reset(self, machine) -> None:
        super().reset(machine)
        config = machine.config
        self.imbalance = ImbalanceEstimator(
            window=config.imbalance_window,
            threshold=config.imbalance_threshold,
            issue_widths=[c.issue_width for c in config.clusters],
        )

    @staticmethod
    def primary_of(reg: int) -> int:
        """Primary cluster of a logical register (banked by parity)."""
        return reg & 1

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        if self.imbalance.strongly_imbalanced:
            return self.imbalance.preferred_cluster
        dst = dyn.inst.dst
        if dst is not None:
            return self.primary_of(dst)
        srcs = dyn.inst.issue_srcs
        if srcs:
            return self.primary_of(srcs[0])
        return least_loaded(ctx)

    def on_dispatch(self, ctx, dyn: DynInst, cluster: int) -> None:
        if not dyn.is_copy:
            self.imbalance.on_steer(cluster)

    def on_cycle(self, machine) -> None:
        self.imbalance.on_cycle(machine.ready_counts)
