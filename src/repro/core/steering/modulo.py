"""Modulo steering (paper §3.6, Figures 12 and 14).

Alternates steerable instructions between the clusters.  It achieves an
almost perfect workload balance but generates so many inter-cluster
communications that its speed-up stays tiny (2.8% on average in the
paper) — the motivating counter-example for balance-only policies.
"""

from __future__ import annotations

from ...isa import DynInst
from .base import SteeringScheme


class ModuloSteering(SteeringScheme):
    """Round-robin cluster assignment."""

    name = "modulo"

    def reset(self, machine) -> None:
        super().reset(machine)
        self._next = 0

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        cluster = self._next
        self._next ^= 1
        return cluster
