"""Static LdSt-slice partitioning (Sastry, Palacharla & Smith [18]).

The compile-time comparator of §3.3 / Figure 3: the LdSt slice is
computed *offline* on the program's register dependence graph (with
reaching definitions merging all control-flow paths) and optionally
extended with neighbouring instructions; every dynamic instance of a
slice instruction then executes in the integer cluster.

The conservatism of the static analysis — a single instruction on *any*
path into an address computation joins the slice for ever — is exactly
why the dynamic tables of §3.3 win: measured over SpecInt95 the paper
reports 3% (static) versus 16% (dynamic LdSt slice steering).
"""

from __future__ import annotations

from typing import Set

from ...isa import DynInst
from ..rdg import cached_rdg, extend_with_neighbors, ldst_slice
from .base import FP_CLUSTER, INT_CLUSTER, SteeringScheme


class StaticLdStSliceSteering(SteeringScheme):
    """Compiler-style partitioning from the offline RDG."""

    def __init__(self, neighbor_hops: int = 0) -> None:
        self.neighbor_hops = neighbor_hops
        self.name = (
            "static-ldst"
            if not neighbor_hops
            else f"static-ldst+{neighbor_hops}"
        )
        self._slice: Set[int] = set()

    def reset(self, machine) -> None:
        super().reset(machine)
        graph = cached_rdg(machine.program)
        slice_pcs = ldst_slice(machine.program, graph)
        if self.neighbor_hops:
            slice_pcs = extend_with_neighbors(
                graph, slice_pcs, hops=self.neighbor_hops
            )
        self._slice = slice_pcs

    @property
    def slice_pcs(self) -> Set[int]:
        """The static slice in effect (for analysis and tests)."""
        return set(self._slice)

    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        # The static slice never changes after reset, so the per-PC memo
        # needs no invalidation at all.
        pc = dyn.inst.pc
        cluster = ctx.memo.get(pc, -1)
        if cluster >= 0:
            ctx.memo_hits += 1
            return cluster
        ctx.memo_misses += 1
        cluster = INT_CLUSTER if pc in self._slice else FP_CLUSTER
        ctx.memo[pc] = cluster
        return cluster

    def on_dispatch(self, ctx, dyn: DynInst, cluster: int) -> None:
        if not dyn.is_copy:
            dyn.in_ldst_slice = dyn.inst.pc in self._slice
