"""Priority slice balance steering (paper §3.7).

Only *critical* slices — those whose defining load misses the cache, or
whose defining branch mispredicts, often enough — are kept together on
one cluster; all other instructions are steered individually like in the
non-slice balance scheme, which gives the balancer more freedom and
avoids re-mapping communications inside critical slices.

The criticality threshold self-adjusts: every 8192 cycles the scheme
compares how many dispatched instructions belonged to critical slices
against half of all dispatched instructions, raising the threshold when
critical slices cover too much of the program and lowering it otherwise
(targeting ~50% coverage, the paper's operating point).
"""

from __future__ import annotations

from ...isa import DynInst, InstrClass
from .slice_balance import SliceBalanceSteering

#: Threshold-adjustment period (2**13 cycles, a 13-bit hardware counter).
ADJUST_PERIOD = 8192


class PrioritySliceBalanceSteering(SliceBalanceSteering):
    """Slice balance applied to critical slices only."""

    def __init__(self, kind: str, target_fraction: float = 0.5) -> None:
        super().__init__(kind)
        self.name = f"{kind}-priority"
        if not 0.0 < target_fraction < 1.0:
            raise ValueError("target_fraction must be in (0, 1)")
        self.target_fraction = target_fraction

    def reset(self, machine) -> None:
        super().reset(machine)
        self.threshold = 1
        self._critical_dispatched = 0
        self._total_dispatched = 0
        self._cycles = 0

    # ------------------------------------------------------------------
    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        sid = self.slice_ids.slice_of(dyn.inst.pc)
        if sid is not None and self.clusters.is_critical(sid, self.threshold):
            return self._steer_slice(sid, ctx)
        return self._steer_nonslice(dyn, ctx)

    def on_dispatch(self, ctx, dyn: DynInst, cluster: int) -> None:
        if dyn.is_copy:
            return
        super().on_dispatch(ctx, dyn, cluster)
        self._total_dispatched += 1
        sid = self.slice_ids.slice_of(dyn.inst.pc)
        if sid is not None and self.clusters.is_critical(sid, self.threshold):
            self._critical_dispatched += 1

    def on_cycle(self, machine) -> None:
        super().on_cycle(machine)
        self._cycles += 1
        if self._cycles >= ADJUST_PERIOD:
            self._cycles = 0
            target = self._total_dispatched * self.target_fraction
            if self._critical_dispatched > target:
                self.threshold += 1
            elif self.threshold > 1:
                self.threshold -= 1
            self._critical_dispatched = 0
            self._total_dispatched = 0

    # ------------------------------------------------------------------
    def on_commit(self, dyn: DynInst) -> None:
        """Criticality feedback: misses and mispredictions of defining
        instructions raise their slice's event count."""
        cls = dyn.cls
        if cls is InstrClass.LOAD:
            hit_latency = self.machine.hierarchy.timing.l1_hit
            if dyn.mem_latency > hit_latency:
                self.clusters.record_event(dyn.inst.pc)
        elif cls is InstrClass.BRANCH and dyn.mispredicted:
            self.clusters.record_event(dyn.inst.pc)
