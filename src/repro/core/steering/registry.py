"""Name-based steering scheme registry.

``make_steering("general-balance")`` builds a fresh scheme instance; the
registry is the single place the CLI, the experiment harness and the
public :func:`repro.simulate` API resolve scheme names.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ...errors import ConfigError
from .base import SteeringScheme
from .extensions import (
    AffinityOnlySteering,
    BalanceOnlySteering,
    PrimaryClusterSteering,
)
from .fifo import FifoSteering
from .general import GeneralBalanceSteering
from .modulo import ModuloSteering
from .naive import NaiveSteering
from .nonslice_balance import NonSliceBalanceSteering
from .priority import PrioritySliceBalanceSteering
from .slice_balance import SliceBalanceSteering
from .slice_steering import BrSliceSteering, LdStSliceSteering
from .static import StaticLdStSliceSteering

_FACTORIES: Dict[str, Callable[[], SteeringScheme]] = {
    "naive": NaiveSteering,
    "modulo": ModuloSteering,
    "ldst-slice": LdStSliceSteering,
    "br-slice": BrSliceSteering,
    "ldst-nonslice-balance": lambda: NonSliceBalanceSteering("ldst"),
    "br-nonslice-balance": lambda: NonSliceBalanceSteering("br"),
    "ldst-slice-balance": lambda: SliceBalanceSteering("ldst"),
    "br-slice-balance": lambda: SliceBalanceSteering("br"),
    "ldst-priority": lambda: PrioritySliceBalanceSteering("ldst"),
    "br-priority": lambda: PrioritySliceBalanceSteering("br"),
    "general-balance": GeneralBalanceSteering,
    "fifo": FifoSteering,
    "static-ldst": StaticLdStSliceSteering,
    "static-ldst+1": lambda: StaticLdStSliceSteering(neighbor_hops=1),
    # Extension schemes (see repro.core.steering.extensions).
    "affinity-only": AffinityOnlySteering,
    "balance-only": BalanceOnlySteering,
    "primary-cluster": PrimaryClusterSteering,
}


#: Optional explicit one-line descriptions (user registrations); names
#: without an entry fall back to the scheme class docstring.
_DESCRIPTIONS: Dict[str, str] = {}


def available_schemes() -> List[str]:
    """All registered scheme names, sorted."""
    return sorted(_FACTORIES)


def scheme_description(name: str) -> str:
    """One-line description of the scheme registered under *name*.

    Uses the description passed to :func:`register_scheme` when present,
    otherwise the first line of the scheme class's docstring — so the
    ``repro-sim schemes list`` output stays in sync with the code.
    """
    if name not in _FACTORIES:
        known = ", ".join(available_schemes())
        raise ConfigError(
            f"unknown steering scheme {name!r}; available: {known}"
        )
    explicit = _DESCRIPTIONS.get(name)
    if explicit:
        return explicit
    doc = make_steering(name).__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def scheme_api(name: str) -> str:
    """Which steering interface the scheme implements.

    ``"context"`` — the batch API: ``choose_cluster(self, ctx, dyn)``
    over a :class:`~repro.core.steering.context.SteeringContext`
    read-view.  ``"legacy"`` — the deprecated per-instruction
    ``choose(self, dyn, machine)`` signature, bridged for one more
    release with a :class:`DeprecationWarning`.
    """
    scheme = make_steering(name)
    cls = type(scheme)
    if cls.choose_cluster is not SteeringScheme.choose_cluster:
        return "context"
    return "legacy"


def make_steering(name: str) -> SteeringScheme:
    """Instantiate the scheme registered under *name*."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_schemes())
        raise ConfigError(
            f"unknown steering scheme {name!r}; available: {known}"
        ) from None
    return factory()


def register_scheme(
    name: str,
    factory: Callable[[], SteeringScheme],
    description: str = "",
) -> None:
    """Register a user-defined scheme (used by the extension example).

    *description* feeds the CLI scheme listing; when omitted, the
    scheme class docstring's first line is used.
    """
    if name in _FACTORIES:
        raise ConfigError(f"steering scheme {name!r} already registered")
    _FACTORIES[name] = factory
    if description:
        _DESCRIPTIONS[name] = description
