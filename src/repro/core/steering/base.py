"""Steering scheme interface.

A steering scheme is the hardware block of Figure 1 deciding, at decode,
which cluster each instruction is dispatched to.  The processor:

* calls :meth:`SteeringScheme.reset` once, handing the scheme the machine
  view (the :class:`~repro.pipeline.processor.Processor` itself — schemes
  read ``config``, ``ready_counts``, ``map_table``, ``iqs``, ``program``);
* calls :meth:`choose` for every *steerable* instruction (complex integer
  and FP instructions are forced to their clusters before the scheme is
  consulted);
* calls :meth:`on_dispatch` for **every** dispatched instruction —
  including forced ones — so I1-style counters see the full stream;
* calls :meth:`on_cycle` once per cycle after issue (ready counts are
  fresh), and :meth:`on_commit` for every committed instruction (the
  criticality feedback used by the priority scheme).

Helper functions shared by several schemes (operand affinity, least
loaded cluster) live here too.
"""

from __future__ import annotations

import abc
from typing import Tuple

from ...isa import DynInst

#: Cluster index of the integer cluster (complex-int units).
INT_CLUSTER = 0
#: Cluster index of the FP cluster (FP units, simple-int capable).
FP_CLUSTER = 1


class SteeringScheme(abc.ABC):
    """Base class of all cluster-assignment mechanisms."""

    #: Registry name; subclasses override.
    name = "abstract"
    #: True when the scheme models the FIFO-window machine of §3.9 and
    #: therefore needs ``config.fifo_issue``.
    requires_fifo_issue = False

    def reset(self, machine) -> None:
        """Bind to a processor at construction time of the machine."""
        self.machine = machine

    @abc.abstractmethod
    def choose(self, dyn: DynInst, machine) -> int:
        """Pick the cluster (0 or 1) for a steerable instruction."""

    def on_dispatch(self, dyn: DynInst, cluster: int) -> None:
        """Observe a dispatched instruction (forced ones included)."""

    def on_cycle(self, machine) -> None:
        """Observe the end of a cycle (ready counts are up to date)."""

    def on_commit(self, dyn: DynInst) -> None:
        """Observe a committed instruction (miss/mispredict feedback)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def operand_presence(dyn: DynInst, machine) -> Tuple[int, int]:
    """Count of *dyn*'s source operands present in each cluster.

    Registers present in both clusters count toward both — the scheme's
    affinity decision is about avoiding copies, and a replicated operand
    needs none either way.
    """
    counts = [0, 0]
    for reg in dyn.inst.srcs:
        mask = machine.presence_mask(reg)
        if mask & 1:
            counts[0] += 1
        if mask & 2:
            counts[1] += 1
    return counts[0], counts[1]


def least_loaded(machine) -> int:
    """Cluster with the lighter instantaneous load.

    Ready-instruction counts are the primary signal (the paper's workload
    measure); window occupancy breaks ties.
    """
    r0, r1 = machine.ready_counts
    if r0 != r1:
        return 0 if r0 < r1 else 1
    o0 = machine.iq_occupancy(0)
    o1 = machine.iq_occupancy(1)
    if o0 != o1:
        return 0 if o0 < o1 else 1
    return FP_CLUSTER  # spare capacity usually sits in the FP cluster


def affinity_cluster(dyn: DynInst, machine) -> Tuple[int, bool]:
    """Operand-affinity choice: ``(cluster, tie)``.

    *tie* is True when both clusters hold the same number of operands
    (including the no-operand case), in which case balance policies take
    over.
    """
    c0, c1 = operand_presence(dyn, machine)
    if c0 == c1:
        return least_loaded(machine), True
    return (0 if c0 > c1 else 1), False
