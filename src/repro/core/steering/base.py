"""Steering scheme interface.

A steering scheme is the hardware block of Figure 1 deciding, at decode,
which cluster each instruction is dispatched to.  The processor:

* calls :meth:`SteeringScheme.reset` once, handing the scheme the machine
  view (the :class:`~repro.pipeline.processor.Processor` itself);
* calls :meth:`choose_cluster` with a
  :class:`~repro.core.steering.context.SteeringContext` for every
  *steerable* instruction (complex integer and FP instructions are
  forced to their clusters before the scheme is consulted);
* calls :meth:`on_dispatch` with the same context for **every**
  dispatched instruction — including forced ones — so I1-style counters
  see the full stream;
* calls :meth:`on_cycle` once per cycle after issue (ready counts are
  fresh), and :meth:`on_commit` for every committed instruction (the
  criticality feedback used by the priority scheme).

The context is the documented read surface (presence masks, IQ
occupancy, ready counts, the dispatch batch, the steering-decision
memo); see :mod:`repro.core.steering.context`.

**Legacy shim (one release):** schemes written against the pre-context
API — ``choose(self, dyn, machine)`` and ``on_dispatch(self, dyn,
cluster)`` — keep working through the base-class bridges below, with a
one-time :class:`DeprecationWarning` per class.  Migrate by renaming
``choose`` to ``choose_cluster(self, ctx, dyn)`` and widening
``on_dispatch`` to ``(self, ctx, dyn, cluster)``; the helpers in this
module accept a context wherever they accepted a machine.

Helper functions shared by several schemes (operand affinity, least
loaded cluster) live here too.
"""

from __future__ import annotations

import warnings
from typing import Set, Tuple

from ...isa import DynInst

#: Cluster index of the integer cluster (complex-int units).
INT_CLUSTER = 0
#: Cluster index of the FP cluster (FP units, simple-int capable).
FP_CLUSTER = 1

#: Scheme classes already warned about a legacy method (warn once each).
_WARNED_LEGACY: Set[Tuple[type, str]] = set()


def warn_legacy(cls: type, method: str) -> None:
    """One-time deprecation warning for a legacy-signature override."""
    key = (cls, method)
    if key in _WARNED_LEGACY:
        return
    _WARNED_LEGACY.add(key)
    replacement = (
        "choose_cluster(self, ctx, dyn)"
        if method == "choose"
        else "on_dispatch(self, ctx, dyn, cluster)"
    )
    warnings.warn(
        f"{cls.__name__}.{method} uses the legacy steering signature; "
        f"implement {replacement} over a SteeringContext instead "
        f"(the compatibility shim will be removed next release)",
        DeprecationWarning,
        stacklevel=3,
    )


class SteeringScheme:
    """Base class of all cluster-assignment mechanisms."""

    #: Registry name; subclasses override.
    name = "abstract"
    #: True when the scheme models the FIFO-window machine of §3.9 and
    #: therefore needs ``config.fifo_issue``.
    requires_fifo_issue = False

    def reset(self, machine) -> None:
        """Bind to a processor at construction time of the machine."""
        self.machine = machine

    # ------------------------------------------------------------------
    # The context API (implement these)
    # ------------------------------------------------------------------
    def choose_cluster(self, ctx, dyn: DynInst) -> int:
        """Pick the cluster (0 or 1) for a steerable instruction.

        *ctx* is the :class:`SteeringContext` read-view.  The base
        implementation bridges to a legacy :meth:`choose` override when
        one exists (with a one-time deprecation warning).
        """
        cls = type(self)
        if cls.choose is SteeringScheme.choose:
            raise NotImplementedError(
                f"{cls.__name__} implements neither choose_cluster nor "
                f"the legacy choose"
            )
        warn_legacy(cls, "choose")
        return self.choose(dyn, ctx.machine if ctx.machine is not None else ctx)

    def on_dispatch(self, ctx, dyn: DynInst, cluster: int) -> None:
        """Observe a dispatched instruction (forced ones included)."""

    # ------------------------------------------------------------------
    # Legacy entry point (callers migrating from the pre-context API)
    # ------------------------------------------------------------------
    def choose(self, dyn: DynInst, machine) -> int:
        """Legacy call surface: delegates to :meth:`choose_cluster`.

        Retained so pre-context callers (``scheme.choose(dyn, machine)``)
        keep working against migrated schemes; new code should build or
        reuse a :class:`SteeringContext` and call :meth:`choose_cluster`.
        """
        cls = type(self)
        if cls.choose_cluster is SteeringScheme.choose_cluster:
            raise NotImplementedError(
                f"{cls.__name__} implements neither choose_cluster nor "
                f"the legacy choose"
            )
        from .context import context_for

        return self.choose_cluster(context_for(machine), dyn)

    def on_cycle(self, machine) -> None:
        """Observe the end of a cycle (ready counts are up to date)."""

    def on_commit(self, dyn: DynInst) -> None:
        """Observe a committed instruction (miss/mispredict feedback)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def resolve_steering_hooks(scheme: SteeringScheme):
    """``(choose_cluster, on_dispatch)`` callables for the hot path.

    The processor resolves the scheme's entry points once at reset: a
    migrated scheme's bound methods are used directly; legacy overrides
    are wrapped in adapters (and warned about once) so the dispatch loop
    always calls the uniform ``fn(ctx, dyn[, cluster])`` shape with no
    per-instruction introspection.
    """
    cls = type(scheme)
    if cls.choose_cluster is not SteeringScheme.choose_cluster:
        choose_fn = scheme.choose_cluster
    elif cls.choose is not SteeringScheme.choose:
        warn_legacy(cls, "choose")
        legacy_choose = scheme.choose

        def choose_fn(ctx, dyn, _choose=legacy_choose):
            return _choose(dyn, ctx.machine)

    else:
        raise NotImplementedError(
            f"{cls.__name__} implements neither choose_cluster nor the "
            f"legacy choose"
        )
    dispatch_override = cls.on_dispatch
    if dispatch_override is SteeringScheme.on_dispatch:
        dispatch_fn = scheme.on_dispatch
    else:
        import inspect

        params = [
            p
            for p in inspect.signature(dispatch_override).parameters.values()
            if p.kind
            in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL)
        ]
        has_varargs = any(
            p.kind is p.VAR_POSITIONAL for p in params
        )
        # New signature: (self, ctx, dyn, cluster) = 4 positionals.
        if has_varargs or len(params) >= 4:
            dispatch_fn = scheme.on_dispatch
        else:
            warn_legacy(cls, "on_dispatch")
            legacy_dispatch = scheme.on_dispatch

            def dispatch_fn(ctx, dyn, cluster, _hook=legacy_dispatch):
                _hook(dyn, cluster)

    return choose_fn, dispatch_fn


def operand_presence(dyn: DynInst, machine) -> Tuple[int, int]:
    """Count of *dyn*'s source operands present in each cluster.

    Registers present in both clusters count toward both — the scheme's
    affinity decision is about avoiding copies, and a replicated operand
    needs none either way.  *machine* may be a processor, a test fake,
    or a :class:`SteeringContext` (all expose ``presence_mask``).
    """
    counts = [0, 0]
    for reg in dyn.inst.srcs:
        mask = machine.presence_mask(reg)
        if mask & 1:
            counts[0] += 1
        if mask & 2:
            counts[1] += 1
    return counts[0], counts[1]


def least_loaded(machine) -> int:
    """Cluster with the lighter instantaneous load.

    Ready-instruction counts are the primary signal (the paper's workload
    measure); window occupancy breaks ties.  Accepts a machine or a
    :class:`SteeringContext`.
    """
    r0, r1 = machine.ready_counts
    if r0 != r1:
        return 0 if r0 < r1 else 1
    o0 = machine.iq_occupancy(0)
    o1 = machine.iq_occupancy(1)
    if o0 != o1:
        return 0 if o0 < o1 else 1
    return FP_CLUSTER  # spare capacity usually sits in the FP cluster


def affinity_cluster(dyn: DynInst, machine) -> Tuple[int, bool]:
    """Operand-affinity choice: ``(cluster, tie)``.

    *tie* is True when both clusters hold the same number of operands
    (including the no-operand case), in which case balance policies take
    over.  Accepts a machine or a :class:`SteeringContext`.
    """
    c0, c1 = operand_presence(dyn, machine)
    if c0 == c1:
        return least_loaded(machine), True
    return (0 if c0 > c1 else 1), False
