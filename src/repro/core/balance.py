"""Workload-imbalance estimation (paper §3.5).

The paper combines two signals into one signed counter:

* **I1** — the difference in the number of instructions steered to each
  cluster: the counter is incremented for every instruction steered to
  cluster 0 and decremented for cluster 1, so consecutive instructions
  decoded in the same cycle each see an updated value (avoiding massive
  same-cycle steering to one side).
* **I2** — the *instant* workload imbalance: meaningful only when one
  cluster has more ready instructions than its issue width while the
  other has fewer (otherwise both clusters can issue at full rate and the
  workload counts as balanced).  The counter is updated with the average
  of I2 over a window of N cycles.

The paper empirically picks N = 16 and a strong-imbalance threshold of 8.
Positive counter values mean cluster 0 is the more loaded one.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigError


class ImbalanceEstimator:
    """The combined I1/I2 imbalance counter."""

    def __init__(
        self,
        window: int = 16,
        threshold: int = 8,
        issue_widths: Sequence[int] = (4, 4),
    ) -> None:
        if window <= 0:
            raise ConfigError("imbalance window must be positive")
        if threshold < 0:
            raise ConfigError("imbalance threshold must be non-negative")
        self.window = window
        self.threshold = threshold
        self.issue_widths = tuple(issue_widths)
        self.counter = 0
        self._samples: List[int] = []

    # ------------------------------------------------------------------
    def on_steer(self, cluster: int) -> None:
        """I1 update: one instruction was steered to *cluster*."""
        self.counter += 1 if cluster == 0 else -1

    def instant_imbalance(self, ready_counts: Sequence[int]) -> int:
        """I2 sample for the current cycle (positive = cluster 0 loaded)."""
        r0, r1 = ready_counts
        w0, w1 = self.issue_widths
        if r0 > w0 and r1 < w1:
            return r0 - r1
        if r1 > w1 and r0 < w0:
            return r0 - r1  # negative
        return 0

    def on_cycle(self, ready_counts: Sequence[int]) -> None:
        """Accumulate I2; fold its window average into the counter."""
        self._samples.append(self.instant_imbalance(ready_counts))
        if len(self._samples) >= self.window:
            avg = sum(self._samples) / len(self._samples)
            self.counter += round(avg)
            self._samples.clear()

    # ------------------------------------------------------------------
    @property
    def strongly_imbalanced(self) -> bool:
        """True when the combined counter exceeds the threshold."""
        return abs(self.counter) > self.threshold

    @property
    def overloaded_cluster(self) -> int:
        """The cluster the counter currently points at as busier."""
        return 0 if self.counter > 0 else 1

    @property
    def preferred_cluster(self) -> int:
        """The least-loaded cluster according to the counter."""
        return 1 if self.counter > 0 else 0

    def reset(self) -> None:
        """Clear all state (new measurement window)."""
        self.counter = 0
        self._samples.clear()
