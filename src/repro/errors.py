"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch everything coming out of the simulator with one clause
while still being able to distinguish configuration mistakes from runtime
model violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid processor or workload configuration was supplied."""


class ISAError(ReproError):
    """An instruction violates the ISA contract (bad operands, opcode...)."""


class SteeringError(ReproError):
    """A steering scheme produced an illegal decision.

    For example steering a complex integer instruction to the FP cluster,
    or returning a cluster index outside the machine.
    """


class SimulationError(ReproError):
    """The timing model reached an inconsistent state.

    This always indicates a bug in the simulator (or a hand-built workload
    that breaks an invariant such as reading a register never written).
    """


class WorkloadError(ReproError):
    """A synthetic workload could not be generated or executed."""


class SpecError(ReproError):
    """A declarative experiment spec could not be decoded.

    Raised for malformed :class:`~repro.spec.RunSpec` /
    :class:`~repro.spec.SuiteSpec` data (missing keys, unsupported
    format versions, unreadable suite files).  Invalid *contents* — an
    unknown machine name, a bad override path — raise
    :class:`ConfigError` instead, exactly as they would when passed
    programmatically.
    """


class DistError(ReproError):
    """Distributed execution failed at the infrastructure level.

    Raised for malfunctioning execution backends — a worker subprocess
    that violates the JSON-lines protocol, a job directory with a
    corrupt manifest, a merge over an incomplete job.  Failures of
    individual simulation points are *not* DistErrors; they surface
    through :class:`~repro.analysis.campaign.CampaignError` exactly as
    they do for in-process execution.
    """


class PerfError(ReproError):
    """The perf-profile ledger was misused.

    Raised for unreadable or unversioned profile documents, lookups of
    ledger entries that do not exist (or resolve ambiguously), and
    appends that would silently overwrite a recorded profile.  Invalid
    *field values* inside a profile — a malformed provenance stamp, a
    non-numeric sample — raise :class:`ConfigError` naming the offending
    field, exactly as the spec layer does.
    """


class ScenarioError(ReproError):
    """The scenario corpus was misused.

    Raised for registry conflicts (duplicate family or suite names),
    lookups of unknown families/suites, and malformed or truncated
    ``.rtrace`` files.
    """
