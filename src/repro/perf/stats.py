"""Pure-python two-sample tests for the degradation detector.

CI installs only the simulator's own dependencies — no scipy — so the
two tests the detector leans on are implemented here from their
textbook definitions:

* :func:`mann_whitney_u` — the rank-sum test with tie correction and a
  normal approximation (continuity-corrected).  Distribution-free, the
  right default once each side has enough repeats for the approximation
  to hold (the detector requires >= 6 per side).
* :func:`welch_t` — Welch's unequal-variance t-test with the
  Welch–Satterthwaite degrees of freedom; usable down to 3 repeats per
  side.  The Student-t tail probability comes from the regularized
  incomplete beta function (Lentz's continued fraction), accurate to
  ~1e-10 over the detector's range.

Both return two-sided p-values.  They are deliberately tiny, dependency
free, and covered by reference-value tests in ``tests/test_perf.py``.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def _mean_var(samples: Sequence[float]) -> Tuple[float, float]:
    """Mean and unbiased (n-1) variance."""
    n = len(samples)
    mean = sum(samples) / n
    if n < 2:
        return mean, 0.0
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return mean, var


def normal_sf(z: float) -> float:
    """Standard-normal survival function P(Z > z)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (Lentz)."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast for x < (a+1)/(a+b+2);
    # otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """Student-t survival function P(T > t) for df degrees of freedom."""
    if df <= 0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * betainc(df / 2.0, 0.5, x)
    return tail if t >= 0 else 1.0 - tail


def welch_t(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Welch's two-sample t-test: ``(t_statistic, two_sided_p)``.

    Degenerate inputs degrade conservatively: with both variances zero
    the p-value is 1.0 for equal means and 0.0 otherwise (the samples
    are exact and so is the difference).
    """
    if len(a) < 2 or len(b) < 2:
        raise ValueError("welch_t needs at least 2 samples per side")
    mean_a, var_a = _mean_var(a)
    mean_b, var_b = _mean_var(b)
    se2 = var_a / len(a) + var_b / len(b)
    if se2 == 0.0:
        return (0.0, 1.0) if mean_a == mean_b else (math.inf, 0.0)
    t = (mean_a - mean_b) / math.sqrt(se2)
    df = se2 * se2 / (
        (var_a / len(a)) ** 2 / (len(a) - 1)
        + (var_b / len(b)) ** 2 / (len(b) - 1)
    )
    p = 2.0 * student_t_sf(abs(t), df)
    return t, min(1.0, p)


def mann_whitney_u(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float]:
    """Mann-Whitney U test: ``(u_statistic, two_sided_p)``.

    Uses midranks for ties, the tie-corrected normal approximation and
    a 0.5 continuity correction.  All-tied inputs (zero variance in the
    pooled ranks) return p = 1.0.
    """
    n1, n2 = len(a), len(b)
    if n1 < 1 or n2 < 1:
        raise ValueError("mann_whitney_u needs at least 1 sample per side")
    pooled = sorted(
        [(value, 0) for value in a] + [(value, 1) for value in b]
    )
    ranks = [0.0] * len(pooled)
    tie_term = 0.0
    i = 0
    while i < len(pooled):
        j = i
        while j + 1 < len(pooled) and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[k] = midrank
        t = j - i + 1
        if t > 1:
            tie_term += t ** 3 - t
        i = j + 1
    rank_sum_a = sum(
        rank for rank, (_, side) in zip(ranks, pooled) if side == 0
    )
    u1 = rank_sum_a - n1 * (n1 + 1) / 2.0
    u = min(u1, n1 * n2 - u1)
    n = n1 + n2
    mu = n1 * n2 / 2.0
    sigma2 = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if sigma2 <= 0.0:
        return u, 1.0
    z = (abs(u - mu) - 0.5) / math.sqrt(sigma2)
    if z < 0.0:
        z = 0.0
    p = 2.0 * normal_sf(z)
    return u, min(1.0, p)
