"""The ``repro-sim perf`` surface: record | check | diff | log | prune.

The ledger workflow::

    repro-sim perf record              # measure, stamp, append to ledger
    git add BENCH_history BENCH_*.json && git commit
    repro-sim perf check               # CI: candidate vs recorded history
    repro-sim perf diff 8745a1f 3638d8 --suite core
    repro-sim perf log --suite campaign

``perf record`` runs the benchmark scripts (or converts an existing
``BENCH_*.json`` / profile document via ``--from-json``), stamps the
result with provenance, and appends it to ``BENCH_history/``.  ``perf
check`` is the CI entry point: it compares a candidate profile against
the newest ledger entry from a *different* commit using the statistical
detector and exits non-zero when any gated label degrades or vanishes.
``perf diff`` renders any two recorded profiles (commit prefixes or
file paths) side by side with per-label verdicts.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

from ..errors import ConfigError, PerfError
from . import provenance
from .detect import DetectorConfig, compare_profiles
from .ledger import DEFAULT_LEDGER, Ledger, resolve_profile
from .model import Profile, load_profile
from .views import render_comparison, render_label_history, render_log

#: suite name -> (benchmark script, legacy document at the repo root).
SUITES = {
    "core": ("bench_core.py", "BENCH_core.json"),
    "campaign": ("bench_campaign.py", "BENCH_campaign.json"),
}


def _add_ledger_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        default=DEFAULT_LEDGER,
        metavar="DIR",
        help=f"profile ledger directory (default {DEFAULT_LEDGER})",
    )


def _add_detector_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--alpha", type=float, default=0.05,
        help="significance level for the statistical tests (default 0.05)",
    )
    parser.add_argument(
        "--min-effect", type=float, default=0.05,
        help="minimum relative shift that can fail the gate, so "
        "tiny-but-significant deltas pass (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.30,
        help="ratio-fallback threshold for sample-starved labels "
        "(default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--method", default="auto",
        choices=("auto", "mannwhitney", "welch", "ratio"),
        help="force one comparison method (default: auto by sample count)",
    )
    parser.add_argument(
        "--gate-absolute", action="store_true",
        help="also gate raw throughput metrics (same-host comparisons)",
    )
    parser.add_argument(
        "--ignore-vanished", action="store_true",
        help="report labels missing from the candidate without failing",
    )


def add_perf_parser(sub) -> None:
    """Wire the ``perf`` subcommand into the main parser."""
    perf = sub.add_parser(
        "perf",
        help="perf-profile ledger: record history, detect degradations",
    )
    psub = perf.add_subparsers(dest="perf_cmd", required=True)

    record = psub.add_parser(
        "record",
        help="measure a benchmark suite and append the profile to the "
        "ledger",
    )
    record.add_argument(
        "--suite", default="all", choices=("all", *SUITES),
        help="benchmark suite to record (default: all)",
    )
    record.add_argument(
        "--from-json", default=None, metavar="FILE",
        help="convert an existing BENCH_*.json (or profile) document "
        "instead of re-measuring; the suite is inferred",
    )
    record.add_argument(
        "--repeat", type=int, default=3,
        help="timed repeats per measured point (default 3)",
    )
    record.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="also write the recorded profile document to this file",
    )
    record.add_argument(
        "--no-append", action="store_true",
        help="do not write the profile into the ledger",
    )
    record.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing ledger entry for the same commit",
    )
    _add_ledger_arg(record)

    check = psub.add_parser(
        "check",
        help="gate a candidate profile against the ledger baseline "
        "(the CI entry point; exit 1 on degradation)",
    )
    check.add_argument(
        "--suite", default="all",
        help="suite to check, or 'all' recorded suites (default: all)",
    )
    check.add_argument(
        "--candidate", default=None, metavar="FILE",
        help="candidate profile or BENCH_*.json document "
        "(default: the ledger's newest entry)",
    )
    check.add_argument(
        "--baseline", default=None, metavar="REF",
        help="baseline: commit prefix or profile file (default: the "
        "newest ledger entry from a different commit than the candidate)",
    )
    check.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="also write the rendered report to this file",
    )
    _add_detector_args(check)
    _add_ledger_arg(check)

    diff = psub.add_parser(
        "diff",
        help="render two recorded profiles side by side with per-label "
        "verdicts",
    )
    diff.add_argument(
        "refs", nargs="*", metavar="REF",
        help="two profiles: commit prefixes or file paths (default: the "
        "suite's previous and latest ledger entries)",
    )
    diff.add_argument(
        "--suite", default=None,
        help="suite for commit-prefix refs (default: the ledger's only "
        "suite)",
    )
    diff.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="also write the rendered diff to this file",
    )
    _add_detector_args(diff)
    _add_ledger_arg(diff)

    log = psub.add_parser("log", help="list recorded profiles, newest first")
    log.add_argument(
        "--suite", default="all",
        help="suite to list, or 'all' (default: all)",
    )
    log.add_argument(
        "--limit", type=int, default=0,
        help="show at most this many entries per suite (0 = all)",
    )
    log.add_argument(
        "--label", default=None, metavar="LABEL",
        help="sparkline the history of this metric label (exact match, "
        "else case-insensitive substring) instead of listing entries",
    )
    _add_ledger_arg(log)

    prune = psub.add_parser(
        "prune", help="drop the oldest ledger entries beyond --keep"
    )
    prune.add_argument(
        "--suite", default="all",
        help="suite to prune, or 'all' (default: all)",
    )
    prune.add_argument(
        "--keep", type=int, required=True,
        help="newest entries to retain per suite",
    )
    _add_ledger_arg(prune)


def _detector_config(args: argparse.Namespace) -> DetectorConfig:
    return DetectorConfig(
        alpha=args.alpha,
        min_effect=args.min_effect,
        max_regression=args.max_regression,
        method=args.method,
        gate_absolute=args.gate_absolute,
        ignore_vanished=getattr(args, "ignore_vanished", False),
    )


def _suite_names(ledger: Ledger, requested: str):
    if requested != "all":
        if requested not in SUITES and requested not in ledger.suites():
            raise PerfError(
                f"unknown suite {requested!r} (known: "
                f"{', '.join(sorted(set(SUITES) | set(ledger.suites())))})"
            )
        return [requested]
    recorded = ledger.suites()
    return recorded if recorded else sorted(SUITES)


def _stamped(profile: Profile, repo_root: str) -> Profile:
    """Stamp fresh provenance unless the document already carried one."""
    if profile.provenance.recorded_at:
        return profile
    return profile.with_provenance(provenance.collect(repo_root))


def _measure(suite: str, repeat: int, repo_root: str) -> Profile:
    """Run a benchmark script and load its (legacy) output document."""
    script, legacy_doc = SUITES[suite]
    script_path = os.path.join(repo_root, "benchmarks", script)
    if not os.path.isfile(script_path):
        raise PerfError(
            f"benchmark script {script_path!r} not found — run from a "
            f"repository checkout, or convert an existing document with "
            f"--from-json"
        )
    output = os.path.join(repo_root, legacy_doc)
    env = dict(os.environ)
    src = os.path.join(repo_root, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, script_path, "--repeat", str(repeat),
         "--output", output],
        env=env,
    )
    if result.returncode != 0:
        raise PerfError(
            f"benchmark {script!r} exited with status {result.returncode}"
        )
    return load_profile(output)


def _write_document(profile: Profile, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(profile.to_document(), fh, indent=1)
        fh.write("\n")


def _cmd_record(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    repo_root = os.path.dirname(os.path.abspath(args.ledger)) or "."
    if args.from_json:
        profiles = [load_profile(args.from_json)]
        if args.suite != "all" and profiles[0].suite != args.suite:
            raise PerfError(
                f"--from-json document is a {profiles[0].suite!r} "
                f"profile, not {args.suite!r}"
            )
    else:
        suites = sorted(SUITES) if args.suite == "all" else [args.suite]
        profiles = [
            _measure(suite, args.repeat, repo_root) for suite in suites
        ]
    for profile in profiles:
        profile = _stamped(profile, repo_root)
        if not args.no_append:
            path = ledger.append(profile, overwrite=args.overwrite)
            print(f"recorded {profile.describe()} -> {path}")
        else:
            print(f"measured {profile.describe()} (not appended)")
        if args.output:
            _write_document(profile, args.output)
            print(f"wrote {args.output}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    config = _detector_config(args)
    repo_root = os.path.dirname(os.path.abspath(args.ledger)) or "."
    if args.candidate:
        candidates = [_stamped(load_profile(args.candidate), repo_root)]
        suites = [candidates[0].suite]
        if args.suite != "all" and suites != [args.suite]:
            raise PerfError(
                f"--candidate is a {suites[0]!r} profile, "
                f"not {args.suite!r}"
            )
    else:
        suites = _suite_names(ledger, args.suite)
        candidates = [ledger.lookup(suite) for suite in suites]
    failed = 0
    reports = []
    for suite, candidate in zip(suites, candidates):
        if args.baseline:
            baseline, origin = resolve_profile(ledger, suite, args.baseline)
        else:
            baseline = ledger.baseline_for(suite, candidate)
            if baseline is None:
                reports.append(
                    f"{suite}: only {candidate.provenance.describe()} is "
                    f"recorded — nothing older to compare against"
                )
                continue
        comparison = compare_profiles(baseline, candidate, config)
        reports.append(render_comparison(comparison))
        failed += len(comparison.failures)
    text = "\n\n".join(reports)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    if failed:
        print(f"\nperf check FAILED: {failed} gated label(s) degraded")
        return 1
    print("\nperf check ok")
    return 0


def _diff_suite(ledger: Ledger, args: argparse.Namespace) -> str:
    if args.suite is not None:
        return args.suite
    recorded = ledger.suites()
    if len(recorded) == 1:
        return recorded[0]
    raise PerfError(
        f"--suite is required to resolve commit refs (ledger has: "
        f"{', '.join(recorded) or 'no suites'})"
    )


def _cmd_diff(args: argparse.Namespace) -> int:
    if len(args.refs) > 2:
        raise PerfError(
            f"perf diff takes at most two refs, got {len(args.refs)}"
        )
    ledger = Ledger(args.ledger)
    refs = list(args.refs)
    needs_ledger = len(refs) < 2 or any(
        not os.path.isfile(ref) for ref in refs
    )
    suite = _diff_suite(ledger, args) if needs_ledger else args.suite
    if len(refs) == 0:
        entries = ledger.entries(suite)
        if len(entries) < 2:
            raise PerfError(
                f"suite {suite!r} has {len(entries)} recorded "
                f"profile(s); perf diff needs two (or pass refs)"
            )
        base, base_origin = entries[1], entries[1].provenance.key
        cand, cand_origin = entries[0], entries[0].provenance.key
    elif len(refs) == 1:
        base, base_origin = resolve_profile(ledger, suite, refs[0])
        cand = ledger.lookup(suite)
        cand_origin = cand.provenance.key
    else:
        base, base_origin = resolve_profile(ledger, suite, refs[0])
        cand, cand_origin = resolve_profile(ledger, suite, refs[1])
    if base.suite != cand.suite:
        raise PerfError(
            f"cannot diff across suites: {base.suite!r} vs {cand.suite!r}"
        )
    comparison = compare_profiles(base, cand, _detector_config(args))
    title = (
        f"{cand.suite}: {base_origin} ({base.provenance.describe()}) -> "
        f"{cand_origin} ({cand.provenance.describe()})"
    )
    text = render_comparison(comparison, title=title)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_log(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    suites = _suite_names(ledger, args.suite)
    if not args.label:
        for suite in suites:
            print(render_log(ledger, suite, limit=args.limit))
        return 0
    rendered = 0
    for suite in suites:
        try:
            print(render_label_history(
                ledger, suite, args.label, limit=args.limit
            ))
        except PerfError:
            # With --suite all, a label naturally lives in one suite
            # only; re-raise when the user pinned the suite themselves.
            if args.suite != "all":
                raise
            continue
        rendered += 1
    if not rendered:
        raise PerfError(
            f"no recorded label matches {args.label!r} in any suite "
            f"({', '.join(suites)})"
        )
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    ledger = Ledger(args.ledger)
    for suite in _suite_names(ledger, args.suite):
        removed = ledger.prune(suite, args.keep)
        print(f"{suite}: pruned {len(removed)} entr(y/ies)")
        for path in removed:
            print(f"  removed {path}")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    handlers = {
        "record": _cmd_record,
        "check": _cmd_check,
        "diff": _cmd_diff,
        "log": _cmd_log,
        "prune": _cmd_prune,
    }
    try:
        return handlers[args.perf_cmd](args)
    except (ConfigError, PerfError) as error:
        print(f"perf {args.perf_cmd} failed: {error}")
        return 2 if isinstance(error, ConfigError) else 1
