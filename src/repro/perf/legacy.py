"""The legacy v0 ratio gate, retained for the transition to the ledger.

This is the original ``benchmarks/check_regression.py`` logic — a
single fractional-ratio threshold over the ``BENCH_*.json`` summary
numbers — moved under :mod:`repro.perf` so the script can stay as a
thin shim while downstream callers migrate to ``repro-sim perf check``
(raw-sample statistical tests against the ``BENCH_history/`` ledger).

The schema is detected from the document's ``benchmark`` field:

* ``core-scheduler`` — every (bench, scheme, machine) point's
  ``speedup_vs_scan`` ratio is compared (machine-portable: both
  schedulers run on the same host, so the ratio cancels hardware), and
  the event scheduler's absolute ``instr_per_sec`` is reported for
  context but only gated when ``--gate-absolute`` is passed.
* ``campaign-backends`` — each backend label is gated on a *compound*
  signal: its throughput relative to the same run's serial number
  (cancelling host speed) AND its raw points/sec must both drop beyond
  the threshold before the gate fires.

Metrics present only in the fresh run are reported as ``new (ungated)``
rather than silently skipped; metrics missing from the fresh run are
gated failures.  Known blind spot, accepted for cross-host portability:
a *uniform* slowdown of everything passes the ratio gates; same-host
runs can add ``--gate-absolute``.  The statistical checker inherits all
of these semantics (see :mod:`repro.perf.detect`) and adds raw-sample
tests on top.
"""

from __future__ import annotations

import argparse
import json
from typing import Iterator, Tuple

#: (name, baseline value, fresh value, gated?)
Metric = Tuple[str, float, float, bool]


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def core_metrics(baseline: dict, fresh: dict, gate_absolute: bool
                 ) -> Iterator[Metric]:
    def by_point(doc):
        # Dispatch points (columnar/object rows) share (bench, scheme,
        # machine) with scheduler points, so the kind joins the key.
        return {
            (p["bench"], p["scheme"], p["machine"],
             p.get("kind", "scheduler")): p
            for p in doc["points"]
        }

    def rows(name, point):
        if "columnar" in point:
            return (
                (f"{name} dispatch speedup_vs_object",
                 point["speedup_vs_object"], True),
                (f"{name} columnar instr/s",
                 point["columnar"]["instr_per_sec"], gate_absolute),
            )
        return (
            (f"{name} speedup_vs_scan", point["speedup_vs_scan"], True),
            (f"{name} event instr/s",
             point["event"]["instr_per_sec"], gate_absolute),
        )

    base_points, fresh_points = by_point(baseline), by_point(fresh)
    for key, base in sorted(base_points.items()):
        new = fresh_points.get(key)
        name = "/".join(key[:3])
        if new is None:
            ratio_key = (
                "speedup_vs_object" if "columnar" in base
                else "speedup_vs_scan"
            )
            yield (f"{name} [missing from fresh run]",
                   base[ratio_key], 0.0, True)
            continue
        for (label, base_value, gated), (_, new_value, _unused) in zip(
            rows(name, base), rows(name, new)
        ):
            yield (label, base_value, new_value, gated)
    for key, new in sorted(fresh_points.items()):
        if key in base_points:
            continue
        label, value, _ = rows("/".join(key[:3]), new)[0]
        yield (f"{label} [new in fresh run]", 0.0, value, False)


def campaign_metrics(baseline: dict, fresh: dict, gate_absolute: bool
                     ) -> Iterator[Metric]:
    base_backends = baseline["backends"]
    fresh_backends = fresh["backends"]
    base_serial = base_backends["serial"]["points_per_second"]
    fresh_serial = fresh_backends["serial"]["points_per_second"]
    for label, base in sorted(base_backends.items()):
        new = fresh_backends.get(label)
        if new is None:
            yield (f"{label} [missing from fresh run]",
                   base["points_per_second"], 0.0, True)
            continue
        rel_ratio = (
            (new["points_per_second"] / fresh_serial)
            / (base["points_per_second"] / base_serial)
        )
        raw_ratio = new["points_per_second"] / base["points_per_second"]
        # Compound gate: the serial-relative ratio cancels host speed but
        # also moves when *serial alone* gets faster, and the raw number
        # moves with runner hardware.  Only the combination — this
        # backend slower both relative to serial AND in absolute terms —
        # is strong evidence of a real backend regression, so the gated
        # value is the better of the two ratios.
        yield (f"{label} points/s (rel&raw)",
               1.0, max(rel_ratio, raw_ratio), label != "serial")
        yield (f"{label} points/s",
               base["points_per_second"], new["points_per_second"],
               gate_absolute)
    # Labels only the fresh run has: not comparable (no baseline), but a
    # new backend must show up in the report instead of shipping
    # invisible to the gate — record the baseline the next run inherits.
    for label, new in sorted(fresh_backends.items()):
        if label in base_backends:
            continue
        yield (f"{label} points/s [new in fresh run]",
               0.0, new["points_per_second"], False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="fractional drop that fails the gate (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--gate-absolute",
        action="store_true",
        help="also gate raw throughput numbers (same-host comparisons)",
    )
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    kind = baseline.get("benchmark")
    if fresh.get("benchmark") != kind:
        print(
            f"schema mismatch: baseline is {kind!r}, "
            f"fresh is {fresh.get('benchmark')!r}"
        )
        return 1
    if kind == "core-scheduler":
        metrics = core_metrics(baseline, fresh, args.gate_absolute)
    elif kind == "campaign-backends":
        metrics = campaign_metrics(baseline, fresh, args.gate_absolute)
    else:
        print(f"unknown benchmark schema {kind!r}")
        return 1

    failed = 0
    floor = 1.0 - args.max_regression
    for name, base, new, gated in metrics:
        if base <= 0:
            # No baseline to ratio against (a metric new in the fresh
            # run): report it so it is visible, never gate it.
            print(
                f"{'new (ungated)':>20s}  {name:<55s} "
                f"baseline={base:10.2f} fresh={new:10.2f}"
            )
            continue
        ratio = new / base
        status = "ok"
        if ratio < floor:
            status = "REGRESSION" if gated else "regressed (ungated)"
            failed += gated
        print(
            f"{status:>20s}  {name:<55s} "
            f"baseline={base:10.2f} fresh={new:10.2f} ({ratio:5.2f}x)"
        )
    if failed:
        print(
            f"\n{failed} metric(s) regressed more than "
            f"{args.max_regression:.0%} vs {args.baseline}"
        )
        return 1
    print(f"\nno gated metric regressed more than {args.max_regression:.0%}")
    return 0
