"""Statistical degradation detection between two perf profiles.

The single-ratio CI gate this replaces had two failure modes the
ledger's raw samples let us fix: a noisy benchmark (std up to 15% of
mean in ``BENCH_core.json``) can both hide a real regression inside the
30% allowance and trip the gate on pure noise.  :func:`compare_profiles`
instead classifies every label by running a **two-sample statistical
test on the raw per-repeat samples**:

* Mann-Whitney U when both sides carry enough repeats for the rank
  approximation (>= ``min_mw_samples`` each) — distribution-free, robust
  to the long right tail wall-clock timings have;
* Welch's t-test for small-but-multiple repeats (>= ``min_stat_samples``);
* a plain ratio check as the fallback when a label has too few samples
  for either (legacy single-value profiles land here, preserving the
  old gate's behaviour).

A label is **degraded** only when the shift is statistically
significant (``p < alpha``) *and* at least ``min_effect`` in relative
size — the minimum-effect floor keeps a 0.5% slowdown measured with
tiny variance from failing CI.  Shifts in the good direction are
**improved** and never fail.  Labels only the candidate has are **new**
(reported, never gated); labels only the baseline has are **vanished**
and *fail* gated metrics — a silently dropped benchmark point must not
read as a pass.

Compound groups (the campaign suite's serial-relative + raw throughput
pairs) fail only when *every* groomed member degrades, preserving the
legacy compound gate: relative-only drops also happen when serial alone
speeds up, raw-only drops when the runner is slower hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from .model import Metric, Profile
from .stats import mann_whitney_u, welch_t

VERDICTS = ("improved", "stable", "degraded", "new", "vanished")


@dataclass(frozen=True)
class DetectorConfig:
    """Knobs for the degradation detector (all validated eagerly)."""

    alpha: float = 0.05
    min_effect: float = 0.05
    max_regression: float = 0.30
    min_stat_samples: int = 3
    min_mw_samples: int = 6
    method: str = "auto"  # auto | mannwhitney | welch | ratio
    gate_absolute: bool = False
    ignore_vanished: bool = False

    def __post_init__(self):
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(
                f"alpha must be in (0, 1), got {self.alpha!r}"
            )
        if not 0.0 <= self.min_effect < 1.0:
            raise ConfigError(
                f"min_effect must be in [0, 1), got {self.min_effect!r}"
            )
        if not 0.0 < self.max_regression < 1.0:
            raise ConfigError(
                f"max_regression must be in (0, 1), "
                f"got {self.max_regression!r}"
            )
        if self.method not in ("auto", "mannwhitney", "welch", "ratio"):
            raise ConfigError(
                f"method must be auto, mannwhitney, welch or ratio, "
                f"got {self.method!r}"
            )


@dataclass
class LabelDelta:
    """One label's verdict comparing candidate against baseline."""

    label: str
    verdict: str
    unit: str = ""
    gate: str = "gated"
    group: Optional[str] = None
    method: str = "none"
    p_value: Optional[float] = None
    #: Signed relative shift in the *good* direction (+3% = 3% better).
    effect: Optional[float] = None
    base_mean: Optional[float] = None
    cand_mean: Optional[float] = None
    base_n: int = 0
    cand_n: int = 0
    #: Whether this delta fails the gate (filled by compare_profiles,
    #: after compound groups are resolved).
    fails: bool = False
    note: str = ""


@dataclass
class Comparison:
    """The full candidate-vs-baseline report."""

    baseline: Profile
    candidate: Profile
    deltas: List[LabelDelta] = field(default_factory=list)
    config: DetectorConfig = field(default_factory=DetectorConfig)

    @property
    def failures(self) -> List[LabelDelta]:
        return [d for d in self.deltas if d.fails]

    @property
    def ok(self) -> bool:
        return not self.failures

    def counts(self) -> Dict[str, int]:
        counts = {verdict: 0 for verdict in VERDICTS}
        for delta in self.deltas:
            counts[delta.verdict] += 1
        return counts


def _pick_method(config: DetectorConfig, n_base: int, n_cand: int) -> str:
    if config.method != "auto":
        if config.method == "ratio":
            return "ratio"
        if min(n_base, n_cand) < 2:
            return "ratio"  # forced tests still need 2+ samples per side
        return config.method
    smaller = min(n_base, n_cand)
    if smaller >= config.min_mw_samples:
        return "mannwhitney"
    if smaller >= config.min_stat_samples:
        return "welch"
    return "ratio"


def compare_metric(
    base: Metric, cand: Metric, config: DetectorConfig
) -> LabelDelta:
    """Classify one label present in both profiles."""
    delta = LabelDelta(
        label=cand.label,
        verdict="stable",
        unit=cand.unit or base.unit,
        gate=cand.gate,
        group=cand.group,
        base_mean=base.mean,
        cand_mean=cand.mean,
        base_n=base.n,
        cand_n=cand.n,
    )
    if base.mean <= 0:
        delta.method = "none"
        delta.note = "baseline mean is not positive; not comparable"
        return delta
    shift = (cand.mean - base.mean) / base.mean
    goodness = shift if cand.direction == "higher" else -shift
    delta.effect = goodness
    method = _pick_method(config, base.n, cand.n)
    delta.method = method
    if method == "ratio":
        if goodness <= -config.max_regression:
            delta.verdict = "degraded"
        elif goodness >= config.max_regression:
            delta.verdict = "improved"
        return delta
    if method == "mannwhitney":
        _, p_value = mann_whitney_u(base.samples, cand.samples)
    else:
        _, p_value = welch_t(base.samples, cand.samples)
    delta.p_value = p_value
    significant = (
        p_value < config.alpha and abs(goodness) >= config.min_effect
    )
    if significant:
        delta.verdict = "degraded" if goodness < 0 else "improved"
    return delta


def _gate(deltas: List[LabelDelta], config: DetectorConfig) -> None:
    """Resolve per-delta ``fails`` flags, honouring compound groups."""
    degraded_by_group: Dict[str, List[LabelDelta]] = {}
    members_by_group: Dict[str, List[LabelDelta]] = {}
    for delta in deltas:
        if delta.group is not None and delta.gate in ("gated", "absolute"):
            members_by_group.setdefault(delta.group, []).append(delta)
            if delta.verdict == "degraded":
                degraded_by_group.setdefault(delta.group, []).append(delta)
    for delta in deltas:
        gated = delta.gate == "gated" or (
            delta.gate == "absolute" and config.gate_absolute
        )
        if not gated or delta.verdict in ("improved", "stable", "new"):
            continue
        if delta.verdict == "vanished":
            delta.fails = not config.ignore_vanished
            if config.ignore_vanished:
                delta.note = (delta.note + " ignored (--ignore-vanished)"
                              ).strip()
            continue
        # verdict == "degraded"
        if delta.group is None or config.gate_absolute:
            delta.fails = True
            continue
        members = members_by_group.get(delta.group, [delta])
        degraded = degraded_by_group.get(delta.group, [])
        if len(degraded) == len(members):
            delta.fails = True
        else:
            delta.note = (
                delta.note
                + " compound: group sibling(s) held steady, not gated"
            ).strip()


def compare_profiles(
    baseline: Profile,
    candidate: Profile,
    config: Optional[DetectorConfig] = None,
) -> Comparison:
    """Classify every label across two profiles and resolve the gate."""
    config = config or DetectorConfig()
    base_metrics = baseline.by_label()
    cand_metrics = candidate.by_label()
    deltas: List[LabelDelta] = []
    for metric in baseline.metrics:
        cand = cand_metrics.get(metric.label)
        if cand is None:
            deltas.append(LabelDelta(
                label=metric.label,
                verdict="vanished",
                unit=metric.unit,
                gate=metric.gate,
                group=metric.group,
                base_mean=metric.mean,
                base_n=metric.n,
                note="label recorded in the baseline is missing from "
                     "the candidate",
            ))
            continue
        deltas.append(compare_metric(metric, cand, config))
    for metric in candidate.metrics:
        if metric.label in base_metrics:
            continue
        deltas.append(LabelDelta(
            label=metric.label,
            verdict="new",
            unit=metric.unit,
            gate=metric.gate,
            group=metric.group,
            cand_mean=metric.mean,
            cand_n=metric.n,
            note="no recorded baseline; reported, never gated",
        ))
    _gate(deltas, config)
    return Comparison(
        baseline=baseline, candidate=candidate, deltas=deltas, config=config
    )
