"""The perf-profile model: versioned documents of raw measurement samples.

A :class:`Profile` is one recorded benchmark run of one *suite* (the
``core`` scheduler benchmark or the ``campaign`` backend benchmark): an
ordered set of labelled :class:`Metric` series, each carrying the **raw
per-repeat samples** (not just mean/std — the degradation detector runs
statistical tests on these), its unit, its goodness direction, and how
the CI gate should treat it.  Every profile is stamped with
:class:`~repro.perf.provenance.Provenance` so the ledger can answer
"which commit produced these numbers".

The on-disk format is versioned (``repro-perf-profile/1``).  The
pre-ledger ``BENCH_core.json`` / ``BENCH_campaign.json`` documents are
readable as **legacy v0 profiles** via :func:`profile_from_document`,
which recognises their ``benchmark`` field and converts each measured
point into metrics — using the raw ``seconds`` sample vectors when the
benchmark recorded them, and falling back to the single summary value
for documents written before raw samples were kept.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..errors import ConfigError, PerfError
from .provenance import Provenance

PROFILE_FORMAT = "repro-perf-profile/1"

#: How the CI gate treats a metric:
#: ``gated``    — a degradation fails the gate (subject to compound
#:               groups, see :mod:`repro.perf.detect`);
#: ``absolute`` — raw-throughput numbers, not comparable across runner
#:               hardware: reported always, gated only under
#:               ``gate_absolute`` (but they still participate in their
#:               compound group's verdict);
#: ``report``   — context only, never gated.
GATES = ("gated", "absolute", "report")

DIRECTIONS = ("higher", "lower")

#: Known suites and the legacy documents they grew out of.
LEGACY_KINDS = {
    "core-scheduler": "core",
    "campaign-backends": "campaign",
}


@dataclass(frozen=True)
class Metric:
    """One labelled measurement series inside a profile."""

    label: str
    samples: Tuple[float, ...]
    unit: str = ""
    direction: str = "higher"
    gate: str = "gated"
    group: Optional[str] = None

    def __post_init__(self):
        if not self.label or not isinstance(self.label, str):
            raise ConfigError(
                f"metric.label must be a non-empty string, got {self.label!r}"
            )
        if self.direction not in DIRECTIONS:
            raise ConfigError(
                f"metric {self.label!r}: direction must be one of "
                f"{DIRECTIONS}, got {self.direction!r}"
            )
        if self.gate not in GATES:
            raise ConfigError(
                f"metric {self.label!r}: gate must be one of {GATES}, "
                f"got {self.gate!r}"
            )
        if not self.samples:
            raise ConfigError(
                f"metric {self.label!r}: samples must be a non-empty "
                f"sequence of numbers"
            )
        cleaned = []
        for sample in self.samples:
            if isinstance(sample, bool) or not isinstance(
                sample, (int, float)
            ):
                raise ConfigError(
                    f"metric {self.label!r}: samples must be numbers, "
                    f"got {sample!r}"
                )
            cleaned.append(float(sample))
        object.__setattr__(self, "samples", tuple(cleaned))

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def n(self) -> int:
        return len(self.samples)

    def to_document(self) -> dict:
        doc = {
            "label": self.label,
            "unit": self.unit,
            "direction": self.direction,
            "gate": self.gate,
            "samples": list(self.samples),
        }
        if self.group is not None:
            doc["group"] = self.group
        return doc

    @classmethod
    def from_document(cls, document) -> "Metric":
        if not isinstance(document, dict):
            raise ConfigError(
                f"metric must be a mapping, got {type(document).__name__}"
            )
        samples = document.get("samples")
        if not isinstance(samples, (list, tuple)):
            raise ConfigError(
                f"metric {document.get('label')!r}: samples must be a "
                f"list, got {samples!r}"
            )
        return cls(
            label=document.get("label", ""),
            samples=tuple(samples),
            unit=document.get("unit", ""),
            direction=document.get("direction", "higher"),
            gate=document.get("gate", "gated"),
            group=document.get("group"),
        )


@dataclass(frozen=True)
class Profile:
    """One recorded benchmark run: labelled sample series + provenance."""

    suite: str
    metrics: Tuple[Metric, ...]
    provenance: Provenance = field(default_factory=Provenance)
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.suite or not isinstance(self.suite, str):
            raise ConfigError(
                f"profile.suite must be a non-empty string, got {self.suite!r}"
            )
        seen = set()
        for metric in self.metrics:
            if metric.label in seen:
                raise ConfigError(
                    f"profile.metrics: duplicate label {metric.label!r}"
                )
            seen.add(metric.label)

    def by_label(self) -> Dict[str, Metric]:
        return {m.label: m for m in self.metrics}

    def with_provenance(self, provenance: Provenance) -> "Profile":
        return replace(self, provenance=provenance)

    def describe(self) -> str:
        return (
            f"{self.suite}: {len(self.metrics)} metric(s), "
            f"{self.provenance.describe()}"
        )

    def to_document(self) -> dict:
        return {
            "format": PROFILE_FORMAT,
            "suite": self.suite,
            "provenance": self.provenance.to_document(),
            "meta": dict(self.meta),
            "metrics": [m.to_document() for m in self.metrics],
        }

    @classmethod
    def from_document(cls, document) -> "Profile":
        if not isinstance(document, dict):
            raise PerfError(
                f"profile must be a mapping, got {type(document).__name__}"
            )
        fmt = document.get("format")
        if fmt != PROFILE_FORMAT:
            raise PerfError(
                f"unsupported profile format {fmt!r} "
                f"(this build reads {PROFILE_FORMAT!r})"
            )
        metrics = document.get("metrics")
        if not isinstance(metrics, list):
            raise ConfigError(
                f"profile.metrics must be a list, got {metrics!r}"
            )
        meta = document.get("meta", {})
        if not isinstance(meta, dict):
            raise ConfigError(f"profile.meta must be a mapping, got {meta!r}")
        return cls(
            suite=document.get("suite", ""),
            metrics=tuple(Metric.from_document(m) for m in metrics),
            provenance=Provenance.from_document(
                document.get("provenance", {})
            ),
            meta=meta,
        )


def _seconds_samples(row: dict) -> Optional[Tuple[float, ...]]:
    """The raw per-repeat ``seconds`` vector, when the bench recorded it."""
    seconds = row.get("seconds")
    if (
        isinstance(seconds, (list, tuple))
        and seconds
        and all(isinstance(s, (int, float)) and s > 0 for s in seconds)
    ):
        return tuple(float(s) for s in seconds)
    return None


def _ratio_and_throughput(point, fast_key, slow_key, ratio_key,
                          n_instructions):
    """Paired ratio samples + absolute instr/s for one A/B point.

    Per-repeat ratio samples pair the two variants' i-th timed runs
    (both run on the same host, so each pair cancels hardware); the
    fast variant's absolute instr/sec rides along for same-host charts.
    """
    fast, slow = point[fast_key], point[slow_key]
    fast_secs = _seconds_samples(fast)
    slow_secs = _seconds_samples(slow)
    if fast_secs and slow_secs and len(fast_secs) == len(slow_secs):
        ratio_samples = tuple(
            s / f for f, s in zip(fast_secs, slow_secs)
        )
    else:
        ratio_samples = (float(point[ratio_key]),)
    if fast_secs and n_instructions:
        ips_samples = tuple(n_instructions / s for s in fast_secs)
    else:
        ips_samples = (float(fast["instr_per_sec"]),)
    return ratio_samples, ips_samples


def _core_profile(document: dict) -> Profile:
    """Convert a ``BENCH_core.json`` document (legacy v0) to a profile.

    Two point shapes convert: scheduler points (``event``/``scan`` rows,
    ``speedup_vs_scan``) and dispatch points (``columnar``/``object``
    rows, ``speedup_vs_object``).  Per point, the A/B ratio is the
    machine-portable gated metric and the optimised variant's absolute
    instr/sec is recorded as an ``absolute`` metric (gated only on
    same-host runs).
    """
    n_instructions = document.get("n_instructions", 0)
    metrics = []
    for point in document.get("points", ()):
        name = f"{point['bench']}/{point['scheme']}/{point['machine']}"
        if "columnar" in point:
            ratio_samples, ips_samples = _ratio_and_throughput(
                point, "columnar", "object", "speedup_vs_object",
                point.get("n_instructions", n_instructions),
            )
            metrics.append(Metric(
                label=f"{name} dispatch speedup_vs_object",
                samples=ratio_samples,
                unit="ratio",
                direction="higher",
                gate="gated",
            ))
            metrics.append(Metric(
                label=f"{name} columnar instr/s",
                samples=ips_samples,
                unit="instr/s",
                direction="higher",
                gate="absolute",
            ))
            continue
        ratio_samples, ips_samples = _ratio_and_throughput(
            point, "event", "scan", "speedup_vs_scan", n_instructions
        )
        metrics.append(Metric(
            label=f"{name} speedup_vs_scan",
            samples=ratio_samples,
            unit="ratio",
            direction="higher",
            gate="gated",
        ))
        metrics.append(Metric(
            label=f"{name} event instr/s",
            samples=ips_samples,
            unit="instr/s",
            direction="higher",
            gate="absolute",
        ))
    meta = {
        key: document[key]
        for key in ("suite", "n_instructions", "warmup", "recorded", "python")
        if key in document
    }
    meta["legacy_benchmark"] = "core-scheduler"
    return Profile(suite="core", metrics=tuple(metrics), meta=meta)


def _campaign_profile(document: dict) -> Profile:
    """Convert a ``BENCH_campaign.json`` document (legacy v0) to a profile.

    Each backend label becomes a compound **group** of two metrics: its
    throughput relative to the same run's serial number (``gated`` —
    host speed cancels) and its raw points/sec (``absolute``).  The
    detector fails the group only when *both* degrade, preserving the
    legacy compound gate's semantics: a relative drop alone also happens
    when serial alone speeds up, a raw drop alone when the runner is
    merely slower hardware.
    """
    backends = document.get("backends", {})
    n_points = document.get("n_points", 0)
    serial_secs = _seconds_samples(backends.get("serial", {}))
    serial_pps = backends.get("serial", {}).get("points_per_second")
    metrics = []
    for label in backends:
        row = backends[label]
        secs = _seconds_samples(row)
        if secs and n_points:
            pps_samples = tuple(n_points / s for s in secs)
        else:
            pps_samples = (float(row["points_per_second"]),)
        metrics.append(Metric(
            label=f"{label} points/s",
            samples=pps_samples,
            unit="points/s",
            direction="higher",
            gate="absolute",
            group=label,
        ))
        if label == "serial":
            continue
        if secs and serial_secs and len(secs) == len(serial_secs):
            rel_samples = tuple(s / b for b, s in zip(secs, serial_secs))
        elif serial_pps:
            rel_samples = (float(row["points_per_second"]) / serial_pps,)
        else:
            continue
        metrics.append(Metric(
            label=f"{label} points/s vs serial",
            samples=rel_samples,
            unit="ratio",
            direction="higher",
            gate="gated",
            group=label,
        ))
    meta = {
        key: document[key]
        for key in ("suite", "n_points", "n_instructions", "warmup",
                    "recorded", "python")
        if key in document
    }
    meta["legacy_benchmark"] = "campaign-backends"
    return Profile(suite="campaign", metrics=tuple(metrics), meta=meta)


def profile_from_document(document) -> Profile:
    """Decode any known profile document — native or legacy v0.

    Native ``repro-perf-profile/1`` documents round-trip exactly;
    ``BENCH_core.json`` / ``BENCH_campaign.json`` documents convert via
    their ``benchmark`` field (with an all-default provenance — stamp
    one with :meth:`Profile.with_provenance` before appending to a
    ledger).
    """
    if isinstance(document, dict) and "format" in document:
        return Profile.from_document(document)
    if isinstance(document, dict):
        kind = document.get("benchmark")
        if kind == "core-scheduler":
            return _core_profile(document)
        if kind == "campaign-backends":
            return _campaign_profile(document)
        raise PerfError(
            f"document is neither a {PROFILE_FORMAT!r} profile nor a "
            f"known legacy benchmark ({', '.join(sorted(LEGACY_KINDS))}); "
            f"got benchmark={kind!r}"
        )
    raise PerfError(
        f"profile document must be a mapping, got {type(document).__name__}"
    )


def load_profile(path: str) -> Profile:
    """Read a profile (native or legacy v0) from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except OSError as error:
        raise PerfError(f"cannot read profile {path!r}: {error}") from error
    except ValueError as error:
        raise PerfError(f"profile {path!r} is not JSON: {error}") from error
    return profile_from_document(document)
