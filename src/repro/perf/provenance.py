"""Provenance stamps for recorded perf profiles.

Every profile in the ledger says *where its numbers came from*: the
commit (and whether the working tree was dirty), the branch, the host
and platform, the Python version, and a UTC timestamp.  Without this a
ledger full of profiles is just a pile of numbers — a regression can
only be attributed when the profile names the exact tree that produced
it.

:func:`collect` gathers the stamp from ``git`` and the interpreter;
:meth:`Provenance.from_document` validates a decoded stamp field by
field, raising :class:`~repro.errors.ConfigError` naming the offending
field (the same contract the spec layer's override validation keeps).
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
import time
from dataclasses import asdict, dataclass
from typing import Optional

from ..errors import ConfigError

#: Placeholder when the profile was recorded outside a git checkout.
UNKNOWN_COMMIT = "unknown"

_HEX = set("0123456789abcdef")


def _git(args, cwd) -> Optional[str]:
    """One git query, or ``None`` when git/the repo is unavailable."""
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


@dataclass(frozen=True)
class Provenance:
    """Where and when a profile's samples were measured."""

    commit: str = UNKNOWN_COMMIT
    dirty: bool = False
    branch: str = UNKNOWN_COMMIT
    host: str = ""
    platform: str = ""
    python: str = ""
    recorded_at: str = ""  # ISO-8601 UTC, e.g. 2026-08-07T12:00:00Z

    @property
    def short_commit(self) -> str:
        return self.commit[:12]

    @property
    def key(self) -> str:
        """The ledger key: one profile per (suite, key).

        Dirty trees get their own key so an uncommitted re-record never
        silently replaces the clean profile of the same commit.
        """
        return self.short_commit + ("-dirty" if self.dirty else "")

    def describe(self) -> str:
        date = self.recorded_at[:10] or "undated"
        state = "dirty" if self.dirty else "clean"
        return f"{self.short_commit} ({date}, {state}, {self.host or '?'})"

    def to_document(self) -> dict:
        return asdict(self)

    @classmethod
    def from_document(cls, document) -> "Provenance":
        """Decode and validate a provenance mapping.

        Raises :class:`ConfigError` naming the offending field for any
        value that is not what a recorder could have written.
        """
        if not isinstance(document, dict):
            raise ConfigError(
                f"provenance must be a mapping, got {type(document).__name__}"
            )
        known = {f: document.get(f, d) for f, d in (
            ("commit", UNKNOWN_COMMIT),
            ("dirty", False),
            ("branch", UNKNOWN_COMMIT),
            ("host", ""),
            ("platform", ""),
            ("python", ""),
            ("recorded_at", ""),
        )}
        commit = known["commit"]
        if not isinstance(commit, str) or not commit:
            raise ConfigError(
                f"provenance.commit must be a non-empty string, got {commit!r}"
            )
        if commit != UNKNOWN_COMMIT and (
            len(commit) < 7 or not set(commit.lower()) <= _HEX
        ):
            raise ConfigError(
                f"provenance.commit must be a hex commit hash of at least "
                f"7 characters (or {UNKNOWN_COMMIT!r}), got {commit!r}"
            )
        if not isinstance(known["dirty"], bool):
            raise ConfigError(
                f"provenance.dirty must be a boolean, got {known['dirty']!r}"
            )
        for field in ("branch", "host", "platform", "python", "recorded_at"):
            if not isinstance(known[field], str):
                raise ConfigError(
                    f"provenance.{field} must be a string, "
                    f"got {known[field]!r}"
                )
        recorded = known["recorded_at"]
        if recorded and (len(recorded) < 10 or recorded[4] != "-"):
            raise ConfigError(
                f"provenance.recorded_at must be an ISO-8601 UTC timestamp "
                f"(YYYY-MM-DD...), got {recorded!r}"
            )
        return cls(**known)


def collect(repo_root: Optional[str] = None) -> Provenance:
    """The current checkout's provenance stamp.

    Degrades gracefully outside a git repository (commit and branch
    become ``"unknown"``) so profiles can still be recorded from an
    exported tarball.
    """
    cwd = repo_root or os.getcwd()
    commit = _git(["rev-parse", "HEAD"], cwd) or UNKNOWN_COMMIT
    branch = _git(["rev-parse", "--abbrev-ref", "HEAD"], cwd) or UNKNOWN_COMMIT
    # Untracked files (bench output, fresh ledger entries awaiting
    # `git add`) don't make the *measured code* dirty — only tracked
    # modifications do.
    status = _git(["status", "--porcelain", "--untracked-files=no"], cwd)
    dirty = bool(status) if status is not None else False
    return Provenance(
        commit=commit,
        dirty=dirty,
        branch=branch,
        host=socket.gethostname(),
        platform=platform.platform(),
        python=platform.python_version(),
        recorded_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )
