"""Perf-profile version control and statistical degradation detection.

The ``repro.perf`` subsystem makes performance a first-class, versioned
artifact instead of a single checked-in snapshot:

* :mod:`repro.perf.model` — the versioned profile format
  (``repro-perf-profile/1``): labelled **raw per-repeat sample
  vectors** with units, goodness direction and gate policy, plus the
  legacy ``BENCH_*.json`` documents readable as v0 profiles.
* :mod:`repro.perf.provenance` — commit / dirty-tree / branch / host /
  python stamps on every profile, validated field by field.
* :mod:`repro.perf.ledger` — ``BENCH_history/``: one profile per
  (suite, commit) with atomic append, lookup, log, prune.
* :mod:`repro.perf.detect` — the degradation detector: Mann-Whitney U /
  Welch's t on the raw samples with a configurable alpha, a
  minimum-effect floor, and a ratio fallback for sample-starved labels;
  verdicts improved / stable / degraded / new / vanished.
* :mod:`repro.perf.views` — ``perf diff`` / ``perf check`` renderings.
* :mod:`repro.perf.cli` — the ``repro-sim perf record|check|diff|log|
  prune`` surface; ``perf check`` is the CI entry point.
* :mod:`repro.perf.legacy` — the retained v0 ratio gate behind the
  ``benchmarks/check_regression.py`` shim.
"""

from .detect import (
    Comparison,
    DetectorConfig,
    LabelDelta,
    compare_metric,
    compare_profiles,
)
from .ledger import DEFAULT_LEDGER, Ledger, resolve_profile
from .model import (
    PROFILE_FORMAT,
    Metric,
    Profile,
    load_profile,
    profile_from_document,
)
from .provenance import Provenance, collect
from .views import (
    render_comparison,
    render_label_history,
    render_log,
    sparkline,
)

__all__ = [
    "Comparison",
    "DetectorConfig",
    "DEFAULT_LEDGER",
    "LabelDelta",
    "Ledger",
    "Metric",
    "PROFILE_FORMAT",
    "Profile",
    "Provenance",
    "collect",
    "compare_metric",
    "compare_profiles",
    "load_profile",
    "profile_from_document",
    "render_comparison",
    "render_label_history",
    "render_log",
    "sparkline",
    "resolve_profile",
]
