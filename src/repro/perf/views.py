"""Text renderings of profile comparisons and ledger history.

One renderer serves both CLI surfaces: ``perf diff`` (any two recorded
profiles side by side with per-label verdicts) and ``perf check`` (the
same view for candidate vs baseline, plus the gate summary CI tails
into its log and uploads as an artifact).  ``perf log --label`` adds
per-label sparklines over the ledger's history, so a throughput
trajectory across commits is readable at a glance.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import PerfError
from .detect import Comparison, LabelDelta, VERDICTS
from .ledger import Ledger

#: Eight-level bar glyphs for sparklines, lowest to highest.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: Placeholder for ledger entries that never recorded the label.
SPARK_GAP = "·"


def _value(mean, n) -> str:
    if mean is None:
        return "-"
    if abs(mean) >= 1000:
        text = f"{mean:,.0f}"
    else:
        text = f"{mean:.3f}"
    return f"{text} (n={n})"


def _evidence(delta: LabelDelta) -> str:
    parts = []
    if delta.method not in ("none",):
        parts.append(delta.method)
    if delta.p_value is not None:
        parts.append(f"p={delta.p_value:.3f}")
    if delta.gate != "gated":
        parts.append(delta.gate)
    return " ".join(parts)


def _verdict(delta: LabelDelta) -> str:
    text = delta.verdict
    if delta.fails:
        text = text.upper() + " *"
    return text


def render_comparison(comparison: Comparison, title: str = "") -> str:
    """The side-by-side per-label table plus a verdict summary."""
    lines: List[str] = []
    base, cand = comparison.baseline, comparison.candidate
    header = title or (
        f"{base.suite}: {base.provenance.describe()} -> "
        f"{cand.provenance.describe()}"
    )
    lines.append(header)
    width = max(
        [len(delta.label) for delta in comparison.deltas] + [5]
    )
    lines.append(
        f"  {'label':<{width}}  {'baseline':>18}  {'candidate':>18}  "
        f"{'delta':>8}  verdict"
    )
    for delta in comparison.deltas:
        effect = (
            f"{delta.effect:+.1%}" if delta.effect is not None else "-"
        )
        evidence = _evidence(delta)
        row = (
            f"  {delta.label:<{width}}  "
            f"{_value(delta.base_mean, delta.base_n):>18}  "
            f"{_value(delta.cand_mean, delta.cand_n):>18}  "
            f"{effect:>8}  {_verdict(delta)}"
        )
        if evidence:
            row += f"  [{evidence}]"
        lines.append(row)
        if delta.note:
            lines.append(f"  {'':<{width}}  note: {delta.note}")
    counts = comparison.counts()
    summary = ", ".join(
        f"{counts[verdict]} {verdict}" for verdict in VERDICTS
        if counts[verdict]
    ) or "no labels"
    lines.append(f"summary: {summary}")
    failures = comparison.failures
    if failures:
        lines.append(
            f"GATE: {len(failures)} label(s) fail "
            f"(alpha={comparison.config.alpha:g}, "
            f"min-effect={comparison.config.min_effect:.0%}, "
            f"ratio fallback at {comparison.config.max_regression:.0%}):"
        )
        for delta in failures:
            lines.append(f"  {delta.label}: {delta.verdict}")
    else:
        lines.append(
            f"GATE: ok (alpha={comparison.config.alpha:g}, "
            f"min-effect={comparison.config.min_effect:.0%}, "
            f"ratio fallback at {comparison.config.max_regression:.0%})"
        )
    return "\n".join(lines)


def sparkline(values: List[Optional[float]]) -> str:
    """Map *values* onto eight-level bars; ``None`` renders as a gap.

    The scale is min..max over the present values, so the line shows the
    *shape* of the trajectory — absolute magnitudes belong in the
    accompanying table.  A flat series renders mid-scale.
    """
    present = [v for v in values if v is not None]
    if not present:
        return SPARK_GAP * len(values)
    lo, hi = min(present), max(present)
    span = hi - lo
    chars = []
    for value in values:
        if value is None:
            chars.append(SPARK_GAP)
        elif span <= 0:
            chars.append(SPARK_LEVELS[len(SPARK_LEVELS) // 2])
        else:
            index = int((value - lo) / span * (len(SPARK_LEVELS) - 1))
            chars.append(SPARK_LEVELS[index])
    return "".join(chars)


def render_label_history(
    ledger: Ledger, suite: str, label: str, limit: int = 0
) -> str:
    """Sparkline trajectories of every recorded label matching *label*.

    *label* selects by exact match first, falling back to a
    case-insensitive substring so ``--label dispatch`` covers the whole
    dispatch family.  Entries run oldest -> newest, one sparkline per
    matched label, each annotated with its first/last means and the
    net relative change across the recorded window.
    """
    entries = ledger.entries(suite)
    if limit:
        entries = entries[:limit]
    if not entries:
        return f"{suite}: no recorded profiles in {ledger.root}"
    entries = list(reversed(entries))  # chronological, oldest first

    labels: List[str] = []
    for profile in entries:
        for metric in profile.metrics:
            if metric.label not in labels:
                labels.append(metric.label)
    matched = [name for name in labels if name == label]
    if not matched:
        needle = label.lower()
        matched = [name for name in labels if needle in name.lower()]
    if not matched:
        raise PerfError(
            f"no recorded label matches {label!r} in suite {suite!r} "
            f"(recorded: {', '.join(labels) or 'none'})"
        )

    first, last = entries[0].provenance, entries[-1].provenance
    lines = [
        f"{suite}: {len(entries)} profile(s), "
        f"{first.key} -> {last.key}"
    ]
    width = max(len(name) for name in matched)
    for name in matched:
        means: List[Optional[float]] = []
        unit = ""
        for profile in entries:
            metric = profile.by_label().get(name)
            means.append(metric.mean if metric else None)
            if metric and metric.unit:
                unit = metric.unit
        present = [m for m in means if m is not None]
        start, end = present[0], present[-1]
        if start:
            net = f"{(end - start) / abs(start):+.1%}"
        else:
            net = "-"
        suffix = f" {unit}" if unit else ""
        lines.append(
            f"  {name:<{width}}  {sparkline(means)}  "
            f"{start:.3g} -> {end:.3g}{suffix}  ({net})"
        )
    return "\n".join(lines)


def render_log(ledger: Ledger, suite: str, limit: int = 0) -> str:
    """The ledger's history of *suite*, newest first."""
    entries = ledger.entries(suite)
    if limit:
        entries = entries[:limit]
    if not entries:
        return f"{suite}: no recorded profiles in {ledger.root}"
    lines = [f"{suite}: {len(entries)} recorded profile(s) in {ledger.root}"]
    for profile in entries:
        prov = profile.provenance
        branch = f" {prov.branch}" if prov.branch not in ("", "unknown") else ""
        lines.append(
            f"  {prov.key:<20}  {prov.recorded_at or 'undated':<20} "
            f"{len(profile.metrics):>3} metric(s){branch}"
            f"  py{prov.python or '?'}"
        )
    return "\n".join(lines)
