"""Text renderings of profile comparisons and ledger history.

One renderer serves both CLI surfaces: ``perf diff`` (any two recorded
profiles side by side with per-label verdicts) and ``perf check`` (the
same view for candidate vs baseline, plus the gate summary CI tails
into its log and uploads as an artifact).
"""

from __future__ import annotations

from typing import List

from .detect import Comparison, LabelDelta, VERDICTS
from .ledger import Ledger


def _value(mean, n) -> str:
    if mean is None:
        return "-"
    if abs(mean) >= 1000:
        text = f"{mean:,.0f}"
    else:
        text = f"{mean:.3f}"
    return f"{text} (n={n})"


def _evidence(delta: LabelDelta) -> str:
    parts = []
    if delta.method not in ("none",):
        parts.append(delta.method)
    if delta.p_value is not None:
        parts.append(f"p={delta.p_value:.3f}")
    if delta.gate != "gated":
        parts.append(delta.gate)
    return " ".join(parts)


def _verdict(delta: LabelDelta) -> str:
    text = delta.verdict
    if delta.fails:
        text = text.upper() + " *"
    return text


def render_comparison(comparison: Comparison, title: str = "") -> str:
    """The side-by-side per-label table plus a verdict summary."""
    lines: List[str] = []
    base, cand = comparison.baseline, comparison.candidate
    header = title or (
        f"{base.suite}: {base.provenance.describe()} -> "
        f"{cand.provenance.describe()}"
    )
    lines.append(header)
    width = max(
        [len(delta.label) for delta in comparison.deltas] + [5]
    )
    lines.append(
        f"  {'label':<{width}}  {'baseline':>18}  {'candidate':>18}  "
        f"{'delta':>8}  verdict"
    )
    for delta in comparison.deltas:
        effect = (
            f"{delta.effect:+.1%}" if delta.effect is not None else "-"
        )
        evidence = _evidence(delta)
        row = (
            f"  {delta.label:<{width}}  "
            f"{_value(delta.base_mean, delta.base_n):>18}  "
            f"{_value(delta.cand_mean, delta.cand_n):>18}  "
            f"{effect:>8}  {_verdict(delta)}"
        )
        if evidence:
            row += f"  [{evidence}]"
        lines.append(row)
        if delta.note:
            lines.append(f"  {'':<{width}}  note: {delta.note}")
    counts = comparison.counts()
    summary = ", ".join(
        f"{counts[verdict]} {verdict}" for verdict in VERDICTS
        if counts[verdict]
    ) or "no labels"
    lines.append(f"summary: {summary}")
    failures = comparison.failures
    if failures:
        lines.append(
            f"GATE: {len(failures)} label(s) fail "
            f"(alpha={comparison.config.alpha:g}, "
            f"min-effect={comparison.config.min_effect:.0%}, "
            f"ratio fallback at {comparison.config.max_regression:.0%}):"
        )
        for delta in failures:
            lines.append(f"  {delta.label}: {delta.verdict}")
    else:
        lines.append(
            f"GATE: ok (alpha={comparison.config.alpha:g}, "
            f"min-effect={comparison.config.min_effect:.0%}, "
            f"ratio fallback at {comparison.config.max_regression:.0%})"
        )
    return "\n".join(lines)


def render_log(ledger: Ledger, suite: str, limit: int = 0) -> str:
    """The ledger's history of *suite*, newest first."""
    entries = ledger.entries(suite)
    if limit:
        entries = entries[:limit]
    if not entries:
        return f"{suite}: no recorded profiles in {ledger.root}"
    lines = [f"{suite}: {len(entries)} recorded profile(s) in {ledger.root}"]
    for profile in entries:
        prov = profile.provenance
        branch = f" {prov.branch}" if prov.branch not in ("", "unknown") else ""
        lines.append(
            f"  {prov.key:<20}  {prov.recorded_at or 'undated':<20} "
            f"{len(profile.metrics):>3} metric(s){branch}"
            f"  py{prov.python or '?'}"
        )
    return "\n".join(lines)
