"""The perf-profile ledger: version control for recorded profiles.

``BENCH_history/`` at the repository root stores one profile per
(suite, commit) — ``BENCH_history/<suite>/<commit12>[-dirty].json`` —
so perf is a *trajectory* the gate can test against, not a single
checked-in snapshot.  Operations: :meth:`Ledger.append` (atomic write,
refuses to silently replace a recorded profile), :meth:`Ledger.lookup`
(by commit prefix or latest), :meth:`Ledger.log` (newest first),
:meth:`Ledger.baseline_for` (the newest entry from a *different*
commit — what a CI check compares a freshly recorded candidate
against), and :meth:`Ledger.prune` (drop the oldest entries).

Dirty working trees get a ``-dirty`` suffix in their key, so an
uncommitted re-record never replaces the clean profile of the same
commit.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import List, Optional, Tuple

from ..errors import PerfError
from .model import Profile, profile_from_document

DEFAULT_LEDGER = "BENCH_history"


class Ledger:
    """A directory of recorded perf profiles, one per (suite, commit)."""

    def __init__(self, root: str = DEFAULT_LEDGER):
        self.root = root

    def _suite_dir(self, suite: str) -> str:
        return os.path.join(self.root, suite)

    def path_for(self, profile: Profile) -> str:
        return os.path.join(
            self._suite_dir(profile.suite),
            f"{profile.provenance.key}.json",
        )

    def suites(self) -> List[str]:
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name for name in os.listdir(self.root)
            if os.path.isdir(os.path.join(self.root, name))
        )

    def entries(self, suite: str) -> List[Profile]:
        """Every recorded profile of *suite*, newest first."""
        suite_dir = self._suite_dir(suite)
        if not os.path.isdir(suite_dir):
            return []
        profiles = []
        for name in sorted(os.listdir(suite_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(suite_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    document = json.load(fh)
            except (OSError, ValueError) as error:
                raise PerfError(
                    f"ledger entry {path!r} is unreadable: {error}"
                ) from error
            profiles.append(profile_from_document(document))
        profiles.sort(
            key=lambda p: (p.provenance.recorded_at, p.provenance.key),
            reverse=True,
        )
        return profiles

    # Alias matching the CLI verb.
    log = entries

    def append(self, profile: Profile, overwrite: bool = False) -> str:
        """Record *profile* under its (suite, commit) key; return the path.

        The write is atomic (temp file + rename in the suite directory)
        so a crashed recorder never leaves a truncated entry.  An entry
        already recorded for the same key raises :class:`PerfError`
        unless *overwrite* is passed — re-records must be deliberate.
        """
        path = self.path_for(profile)
        if os.path.exists(path) and not overwrite:
            raise PerfError(
                f"ledger already has a {profile.suite!r} profile for "
                f"{profile.provenance.key} at {path!r} "
                f"(pass overwrite=True to replace it)"
            )
        suite_dir = self._suite_dir(profile.suite)
        os.makedirs(suite_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=suite_dir, prefix=".append-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(profile.to_document(), fh, indent=1)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def lookup(self, suite: str, ref: Optional[str] = None) -> Profile:
        """Resolve *ref* (a commit/key prefix) — or the latest entry.

        Raises :class:`PerfError` when nothing (or more than one entry)
        matches.
        """
        entries = self.entries(suite)
        if not entries:
            raise PerfError(
                f"ledger {self.root!r} has no {suite!r} profiles "
                f"(record one with 'perf record')"
            )
        if ref is None:
            return entries[0]
        matches = [
            p for p in entries
            if p.provenance.key.startswith(ref)
            or p.provenance.commit.startswith(ref)
        ]
        if not matches:
            known = ", ".join(p.provenance.key for p in entries)
            raise PerfError(
                f"no {suite!r} profile matches {ref!r} (recorded: {known})"
            )
        if len(matches) > 1:
            ambiguous = ", ".join(p.provenance.key for p in matches)
            raise PerfError(
                f"{ref!r} is ambiguous among {suite!r} profiles: {ambiguous}"
            )
        return matches[0]

    def baseline_for(
        self, suite: str, candidate: Profile
    ) -> Optional[Profile]:
        """The newest entry not recorded at the candidate's commit.

        This is what a CI check compares against right after appending
        the fresh candidate: the candidate's own entry is skipped, the
        previous commit's profile is the baseline.  ``None`` when the
        ledger holds nothing older.
        """
        for profile in self.entries(suite):
            if profile.provenance.key != candidate.provenance.key:
                return profile
        return None

    def prune(self, suite: str, keep: int) -> List[str]:
        """Drop the oldest entries beyond *keep*; return removed paths."""
        if keep < 1:
            raise PerfError(f"prune keep must be at least 1, got {keep}")
        removed = []
        for profile in self.entries(suite)[keep:]:
            path = self.path_for(profile)
            os.unlink(path)
            removed.append(path)
        return removed


def resolve_profile(
    ledger: Ledger, suite: str, ref: Optional[str]
) -> Tuple[Profile, str]:
    """*ref* as a profile: a JSON file path, a commit prefix, or latest.

    Returns ``(profile, origin)`` where origin names where it came from
    (for the diff header).  File paths win over commit prefixes so
    ``perf diff old.json new.json`` works outside any ledger.
    """
    if ref is not None and (os.sep in ref or os.path.isfile(ref)):
        from .model import load_profile

        return load_profile(ref), ref
    profile = ledger.lookup(suite, ref)
    return profile, os.path.relpath(ledger.path_for(profile))
