"""Scenario corpus: portable traces, workload families, named suites.

This package turns the repo's workloads from a fixed table into an
extensible corpus with three layers:

* :mod:`~repro.scenarios.rtrace` — a versioned, compressed ``.rtrace``
  file format that freezes a workload's committed path so it can be
  shipped between machines and replayed byte-identically without
  regenerating the program;
* :mod:`~repro.scenarios.registry` — a plugin-style registry where the
  SpecInt95 stand-ins, parametric stress families (pointer-chase,
  branch-hostile, streaming, high-ILP, memory-stress) and imported
  traces all appear as named workload families;
* :mod:`~repro.scenarios.suites` — named scenario suites
  (``paper-table1``, ``branchy``, ``comm-bound``...) that expand into
  campaign grids and run through the campaign engine.  Suites are
  :class:`~repro.spec.SuiteSpec` objects: ``paper-table1`` and ``smoke``
  are loaded from the checked-in ``suites/*.json`` data files, and any
  suite can be exported to / re-run from such a file
  (:func:`export_suite`, :func:`register_suite_file`, ``repro-sim suite
  export|run``).

Importing this package registers the built-in families and suites;
:func:`repro.workloads.workload` triggers that import automatically on
the first unknown benchmark name, so corpus members resolve everywhere —
including campaign worker processes.

Quickstart::

    import repro.scenarios as scenarios

    run = scenarios.run_suite("comm-bound", workers=4)
    meta = scenarios.export_trace(workload("gcc"), "gcc.rtrace", 25000)
    wl = scenarios.register_trace("gcc.rtrace", name="gcc-recorded")
"""

from .registry import (
    WorkloadFamily,
    available_families,
    corpus_benches,
    corpus_members,
    family_of,
    get_family,
    register_family,
    register_trace,
    unregister_trace,
)
from .rtrace import (
    EXPORT_CUSHION,
    FrozenTrace,
    TraceMeta,
    export_trace,
    export_trace_bytes,
    import_trace,
    import_trace_bytes,
    read_meta,
)
from .suites import (
    DATA_FILE_SUITES,
    ScenarioSuite,
    available_suites,
    export_suite,
    get_suite,
    load_suite_file,
    register_suite,
    register_suite_file,
    run_suite,
    suite_data_dir,
)

__all__ = [
    "WorkloadFamily",
    "available_families",
    "corpus_benches",
    "corpus_members",
    "family_of",
    "get_family",
    "register_family",
    "register_trace",
    "unregister_trace",
    "EXPORT_CUSHION",
    "FrozenTrace",
    "TraceMeta",
    "export_trace",
    "export_trace_bytes",
    "import_trace",
    "import_trace_bytes",
    "read_meta",
    "DATA_FILE_SUITES",
    "ScenarioSuite",
    "available_suites",
    "export_suite",
    "get_suite",
    "load_suite_file",
    "register_suite",
    "register_suite_file",
    "run_suite",
    "suite_data_dir",
]
