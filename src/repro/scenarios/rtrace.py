"""Portable trace format: versioned, compressed ``.rtrace`` files.

An ``.rtrace`` file freezes one workload's committed path — the static
program plus a prefix of the dynamic :class:`~repro.workloads.trace.SharedTrace`
records — so the exact instruction stream can be shipped between machines
and replayed byte-identically without regenerating the program.  This is
the natural unit of work for distributed campaigns: a remote host that
receives the file needs neither the generator nor its RNG, only this
module.

File layout::

    magic   8 bytes   b"RTRACE\\x01\\n"   (format id + major version)
    body    zlib-compressed UTF-8 JSON document

The JSON body carries a minor ``version``, provenance metadata (workload
name, seed, generator profile when known), the full static program
(instructions, CFG successors, branch/memory behaviours) and the trace
records in column form (``pc`` / ``taken`` / ``addr`` parallel lists)
with a CRC-32 over the columns for corruption detection.

Imported traces replay through :class:`FrozenTrace`, a
:class:`~repro.workloads.trace.SharedTrace` that serves the recorded
records and refuses to extend past them: a frozen trace has no executor,
so running a longer window than was exported raises
:class:`~repro.errors.ScenarioError` instead of silently diverging.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ScenarioError
from ..isa import Instruction
from ..isa.opcodes import Opcode
from ..workloads import Workload, WorkloadProfile
from ..workloads.program import (
    BasicBlock,
    BranchBehavior,
    MemBehavior,
    StaticProgram,
)
from ..workloads.columns import TraceColumns
from ..workloads.trace import SharedTrace, TraceRecord

#: File magic: format id, major format version, newline guard against
#: text-mode mangling.
MAGIC = b"RTRACE\x01\n"

#: Minor format version carried inside the JSON body.  Readers accept
#: equal-or-older minors of the same major.
VERSION = 1

#: Default cushion of extra records exported beyond the caller's window:
#: the fetch unit runs a few hundred instructions ahead of commit, so a
#: replayed simulation needs slightly more trace than it commits.
EXPORT_CUSHION = 4096


class FrozenTrace(SharedTrace):
    """A :class:`SharedTrace` replaying recorded records only.

    Behaves exactly like a live shared trace up to its recorded length
    and raises :class:`ScenarioError` beyond it (no executor exists to
    extend the buffer).  Frozen traces do not count as trace *builds* in
    :func:`repro.workloads.trace_build_counts` — nothing is decoded.

    A frozen trace is backed by the classic record list, by a pinned
    :class:`~repro.workloads.columns.TraceColumns` set (the columnar
    import path), or both.  Column-backed traces materialise the record
    list lazily, only if an object-path consumer asks for records — the
    columnar pipeline never does.
    """

    def __init__(
        self,
        program: StaticProgram,
        seed: int,
        records: Optional[List[TraceRecord]] = None,
        columns=None,
    ) -> None:
        # Deliberately no super().__init__(): there is no TraceExecutor
        # behind a frozen trace, and importing one must not bump the
        # build counters the campaign tests use to prove "no regeneration".
        if records is None and columns is None:
            raise ScenarioError("frozen trace needs records or columns")
        self.program = program
        self.seed = seed
        self._source = None
        self._records = list(records) if records is not None else None
        self._columns = columns
        if columns is not None:
            columns._trace = self

    @property
    def n_recorded(self) -> int:
        """Length of the recorded committed path."""
        if self._records is not None:
            return len(self._records)
        return self._columns.n

    def __len__(self) -> int:
        return self.n_recorded

    def ensure(self, n: int) -> None:
        """Check the recorded prefix covers *n* records (never extends)."""
        if n > self.n_recorded:
            raise ScenarioError(
                f"frozen trace of {self.program.name!r} holds "
                f"{self.n_recorded} records but {n} were requested; "
                f"re-export the trace with a larger --records"
            )

    def record(self, index: int) -> TraceRecord:
        """The *index*-th recorded committed instruction."""
        self.ensure(index + 1)
        if self._records is None:
            # Object-path consumer of a column-backed trace: regenerate
            # the record list once.  Deprecated — see the README's
            # Experiment API notes; the columnar pipeline reads the
            # pinned columns directly and never takes this branch.
            self._records = self._columns.to_records()
        return self._records[index]


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def _instruction_to_row(inst: Instruction) -> list:
    return [inst.pc, int(inst.opcode), inst.dst, list(inst.srcs), inst.target]


def _instruction_from_row(row: list) -> Instruction:
    pc, opcode, dst, srcs, target = row
    return Instruction(
        pc=pc,
        opcode=Opcode(opcode),
        dst=dst,
        srcs=tuple(srcs),
        target=target,
    )


def _program_to_doc(program: StaticProgram) -> dict:
    return {
        "name": program.name,
        "entry": program.entry,
        "blocks": [
            {
                "taken": block.taken_succ,
                "fall": block.fall_succ,
                "insts": [_instruction_to_row(i) for i in block.instructions],
            }
            for block in program.blocks
        ],
        "branch_behaviors": [
            [pc, b.kind, b.taken_prob, b.trip]
            for pc, b in sorted(program.branch_behaviors.items())
        ],
        "mem_behaviors": [
            [pc, m.kind, m.base, m.region, m.stride]
            for pc, m in sorted(program.mem_behaviors.items())
        ],
    }


def _program_from_doc(doc: dict) -> StaticProgram:
    blocks = [
        BasicBlock(
            block_id,
            [_instruction_from_row(row) for row in entry["insts"]],
            taken_succ=entry["taken"],
            fall_succ=entry["fall"],
        )
        for block_id, entry in enumerate(doc["blocks"])
    ]
    return StaticProgram(
        name=doc["name"],
        blocks=blocks,
        entry=doc["entry"],
        branch_behaviors={
            pc: BranchBehavior(kind, taken_prob=prob, trip=trip)
            for pc, kind, prob, trip in doc["branch_behaviors"]
        },
        mem_behaviors={
            pc: MemBehavior(kind, base=base, region=region, stride=stride)
            for pc, kind, base, region, stride in doc["mem_behaviors"]
        },
    )


def _records_crc(pcs: List[int], taken: List[int], addrs: List[int]) -> int:
    crc = zlib.crc32(b"rtrace-records")
    for column in (pcs, taken, addrs):
        crc = zlib.crc32(",".join(map(str, column)).encode("ascii"), crc)
    return crc


@dataclass(frozen=True)
class TraceMeta:
    """Provenance and shape of one ``.rtrace`` file."""

    name: str
    seed: int
    n_records: int
    version: int = VERSION
    has_profile: bool = False
    static_instructions: int = 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        profile = "with profile" if self.has_profile else "no profile"
        return (
            f"{self.name!r} seed={self.seed}: {self.n_records} records, "
            f"{self.static_instructions} static instructions, "
            f"format v{self.version}, {profile}"
        )


def export_trace_bytes(
    wl: Workload,
    n_records: int,
    cushion: int = EXPORT_CUSHION,
) -> Tuple[bytes, TraceMeta]:
    """*wl*'s committed path as in-memory ``.rtrace`` file contents.

    The byte form is what :func:`export_trace` writes to disk and what
    the worker protocol's ``preload`` op ships over the wire — one
    serialisation, two transports.  Returns ``(data, meta)``.
    """
    total = n_records + cushion
    shared = wl.shared_trace()
    shared.ensure(total)
    pcs = []
    taken = []
    addrs = []
    for index in range(total):
        record = shared.record(index)
        pcs.append(record.inst.pc)
        taken.append(1 if record.taken else 0)
        addrs.append(record.mem_addr)
    profile_doc: Optional[Dict[str, object]] = None
    if wl.profile is not None:
        profile_doc = asdict(wl.profile)
    doc = {
        "format": "rtrace",
        "version": VERSION,
        "name": wl.name,
        "seed": wl.seed,
        "profile": profile_doc,
        "program": _program_to_doc(wl.program),
        "records": {"pc": pcs, "taken": taken, "addr": addrs},
        "crc": _records_crc(pcs, taken, addrs),
    }
    payload = zlib.compress(
        json.dumps(doc, separators=(",", ":")).encode("utf-8"), level=6
    )
    meta = TraceMeta(
        name=wl.name,
        seed=wl.seed,
        n_records=total,
        has_profile=profile_doc is not None,
        static_instructions=wl.program.num_instructions,
    )
    return MAGIC + payload, meta


def export_trace(
    wl: Workload,
    path: str,
    n_records: int,
    cushion: int = EXPORT_CUSHION,
) -> TraceMeta:
    """Write *wl*'s committed path to *path* as an ``.rtrace`` file.

    Materialises the workload's shared trace out to
    ``n_records + cushion`` records first, so a replayed simulation of an
    ``n_records`` window has the fetch-ahead headroom it needs.  Returns
    the metadata of the written file.
    """
    data, meta = export_trace_bytes(wl, n_records, cushion)
    with open(path, "wb") as fh:
        fh.write(data)
    return meta


def _parse_doc(data: bytes, origin: str) -> dict:
    head, body = data[: len(MAGIC)], data[len(MAGIC):]
    if head != MAGIC:
        raise ScenarioError(
            f"{origin}: not an .rtrace file (bad magic {head!r})"
        )
    try:
        doc = json.loads(zlib.decompress(body).decode("utf-8"))
    except (zlib.error, ValueError) as error:
        raise ScenarioError(
            f"{origin}: corrupt .rtrace body ({error})"
        ) from None
    if doc.get("format") != "rtrace":
        raise ScenarioError(f"{origin}: unrecognised payload format")
    if doc.get("version", 0) > VERSION:
        raise ScenarioError(
            f"{origin}: format v{doc.get('version')} is newer than this "
            f"reader (v{VERSION}); upgrade repro"
        )
    return doc


def _read_doc(path: str) -> dict:
    with open(path, "rb") as fh:
        data = fh.read()
    return _parse_doc(data, path)


def read_meta(path: str) -> TraceMeta:
    """Read only the metadata of an ``.rtrace`` file."""
    doc = _read_doc(path)
    return TraceMeta(
        name=doc["name"],
        seed=doc["seed"],
        n_records=len(doc["records"]["pc"]),
        version=doc["version"],
        has_profile=doc.get("profile") is not None,
        static_instructions=sum(
            len(b["insts"]) for b in doc["program"]["blocks"]
        ),
    )


def import_trace(
    path: str, name: Optional[str] = None, columnar: bool = True
) -> Workload:
    """Load an ``.rtrace`` file into a replayable :class:`Workload`.

    The returned workload carries the reconstructed static program and a
    :class:`FrozenTrace` over the recorded committed path; simulating it
    never touches the program generator or the trace executor.  *name*
    overrides the recorded workload name (useful when registering several
    traces of the same benchmark).

    With ``columnar=True`` (the default) the record columns of the file
    are decoded straight into a pinned
    :class:`~repro.workloads.columns.TraceColumns` set — the form the
    columnar fetch/dispatch core consumes — and the classic per-record
    ``TraceRecord`` list is only regenerated if an object-path consumer
    asks for it.  ``columnar=False`` restores the eager record build.
    """
    return _workload_from_doc(_read_doc(path), path, name, columnar)


def import_trace_bytes(
    data: bytes,
    name: Optional[str] = None,
    origin: str = "<bytes>",
    columnar: bool = True,
) -> Workload:
    """:func:`import_trace` for in-memory ``.rtrace`` contents.

    This is the receiving half of the worker protocol's ``preload`` op:
    the dispatcher ships :func:`export_trace_bytes` output and the worker
    pins the resulting :class:`FrozenTrace` without touching the
    filesystem.  The same magic/CRC guards apply — corrupt bytes raise
    :class:`~repro.errors.ScenarioError` naming *origin*.  *columnar*
    behaves as in :func:`import_trace`.
    """
    return _workload_from_doc(_parse_doc(data, origin), origin, name, columnar)


def _workload_from_doc(
    doc: dict,
    origin: str,
    name: Optional[str] = None,
    columnar: bool = True,
) -> Workload:
    columns = doc["records"]
    pcs, taken, addrs = columns["pc"], columns["taken"], columns["addr"]
    if not len(pcs) == len(taken) == len(addrs):
        raise ScenarioError(f"{origin}: record columns have unequal lengths")
    if doc.get("crc") != _records_crc(pcs, taken, addrs):
        raise ScenarioError(f"{origin}: record checksum mismatch")
    program = _program_from_doc(doc["program"])
    if columnar:
        # Decode the wire columns straight into the structure-of-arrays
        # form — no intermediate TraceRecord tuples.  The frozen trace
        # pins the columns; records regenerate lazily if ever needed.
        cols = TraceColumns.from_arrays(program, pcs, taken, addrs)
        frozen = FrozenTrace(program, doc["seed"], columns=cols)
    else:
        records = [
            TraceRecord(program.instruction_at(pc), bool(t), addr)
            for pc, t, addr in zip(pcs, taken, addrs)
        ]
        frozen = FrozenTrace(program, doc["seed"], records)
    profile = None
    if doc.get("profile") is not None:
        profile_doc = dict(doc["profile"])
        profile_doc["data_branch_bias"] = tuple(
            profile_doc["data_branch_bias"]
        )
        profile = WorkloadProfile(**profile_doc)
    return Workload(
        name=name or doc["name"],
        profile=profile,
        program=program,
        seed=doc["seed"],
        _shared_trace=frozen,
    )
