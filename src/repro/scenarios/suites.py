"""Named scenario suites: declarative bundles of campaign grids.

A suite names a *question* — "how do the schemes rank on branch-hostile
code?" — and fixes the benches, schemes, machines, seeds and window sizes
that answer it.  Suites are plain :class:`~repro.spec.SuiteSpec` objects
(``ScenarioSuite`` is the back-compat alias), so everything the spec
layer provides — dotted-path overrides, JSON data-file round trips,
:func:`repro.run` — and everything the campaign engine provides (shared
traces, worker processes, JSON/CSV stores, incremental resume, seed
aggregation) applies to a suite run unchanged.

Two kinds of suites register here:

* **data-file suites** — checked-in JSON definitions under the
  repository's ``suites/`` directory (``paper-table1``, ``smoke``),
  located via :func:`suite_data_dir` (override with the
  ``REPRO_SUITE_DIR`` environment variable).  ``repro-sim suite
  export|run`` moves suites between the registry and such files;
* **in-code suites** — the stress-scenario grids defined below.

>>> from repro.scenarios import get_suite
>>> suite = get_suite("smoke")
>>> len(suite.points(n_instructions=500, warmup=150)) == len(
...     suite.benches) * len(suite.schemes)
True
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.campaign import IncrementalRun, run_campaign
from ..errors import ScenarioError, SpecError
from ..spec.specs import SuiteSpec

#: Back-compat alias: a scenario suite *is* a declarative suite spec.
ScenarioSuite = SuiteSpec

#: All registered suites by name.
_SUITES: Dict[str, SuiteSpec] = {}

#: Data-file suites expected in the suite data directory.
DATA_FILE_SUITES = ("paper-table1", "smoke")


def register_suite(suite: SuiteSpec) -> SuiteSpec:
    """Register *suite*, rejecting duplicate names."""
    if suite.name in _SUITES:
        raise ScenarioError(
            f"scenario suite {suite.name!r} is already registered"
        )
    _SUITES[suite.name] = suite
    return suite


def get_suite(name: str) -> SuiteSpec:
    """Look up a suite by name (raises for unknown names)."""
    try:
        return _SUITES[name]
    except KeyError:
        known = ", ".join(sorted(_SUITES))
        hint = ""
        if name in DATA_FILE_SUITES and suite_data_dir() is None:
            hint = (
                "; its data file was not found — point REPRO_SUITE_DIR "
                "at the directory holding the checked-in suites/*.json"
            )
        raise ScenarioError(
            f"unknown scenario suite {name!r}; available: {known}{hint}"
        ) from None


def available_suites() -> Tuple[str, ...]:
    """Registered suite names, sorted."""
    return tuple(sorted(_SUITES))


def run_suite(
    name: str,
    workers: int = 1,
    n_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    store: Optional[str] = None,
    resume: bool = False,
) -> IncrementalRun:
    """Expand and execute one named suite through the campaign engine.

    With *store*/*resume* the run is incremental: points already present
    in the store are reused, only missing ones are simulated, and the
    merged result set is written back.
    """
    suite = get_suite(name)
    points = suite.points(
        n_instructions=n_instructions, warmup=warmup, seeds=seeds
    )
    return run_campaign(
        points, workers=workers, store=store, resume=resume
    )


# ----------------------------------------------------------------------
# Data-file suites
# ----------------------------------------------------------------------
def suite_data_dir() -> Optional[str]:
    """Directory holding the checked-in suite data files, or ``None``.

    ``REPRO_SUITE_DIR`` wins when set; otherwise the repository root is
    located by walking up from this module looking for a ``suites/``
    directory with the expected files.
    """
    env = os.environ.get("REPRO_SUITE_DIR")
    if env:
        return env
    here = os.path.dirname(os.path.abspath(__file__))
    for _ in range(6):
        candidate = os.path.join(here, "suites")
        if os.path.isfile(
            os.path.join(candidate, f"{DATA_FILE_SUITES[0]}.json")
        ):
            return candidate
        parent = os.path.dirname(here)
        if parent == here:
            break
        here = parent
    return None


def load_suite_file(path: str) -> SuiteSpec:
    """Read (and validate) one suite data file without registering it."""
    return SuiteSpec.load(path)


def register_suite_file(path: str) -> SuiteSpec:
    """Load a suite data file and register it under its recorded name."""
    return register_suite(load_suite_file(path))


def export_suite(name: str, path: str) -> SuiteSpec:
    """Write the registered suite *name* to the data file *path*.

    The file round-trips exactly: ``repro-sim suite run`` on it expands
    to the identical campaign grid (same points, same stores).
    """
    suite = get_suite(name)
    suite.save(path)
    return suite


def _register_data_file_suites() -> None:
    """Register the checked-in suites (``paper-table1``, ``smoke``).

    These grids live in ``suites/*.json``, not in code — the data file
    *is* the definition.  A missing directory (e.g. an installed wheel
    without the repo checkout) just leaves them unregistered;
    :func:`get_suite` then names the ``REPRO_SUITE_DIR`` escape hatch.
    """
    directory = suite_data_dir()
    if directory is None:
        return
    for name in DATA_FILE_SUITES:
        path = os.path.join(directory, f"{name}.json")
        if not os.path.isfile(path):
            continue
        try:
            suite = load_suite_file(path)
        except SpecError as err:
            raise ScenarioError(
                f"checked-in suite file {path!r} is invalid: {err}"
            ) from err
        if suite.name != name:
            raise ScenarioError(
                f"suite file {path!r} declares name {suite.name!r}; "
                f"expected {name!r}"
            )
        register_suite(suite)


_register_data_file_suites()


# ----------------------------------------------------------------------
# Built-in in-code suites (stress scenarios around the paper's corpus)
# ----------------------------------------------------------------------
register_suite(
    SuiteSpec(
        name="branchy",
        description="branch-hostile codes: does balance steering survive "
        "constant mispredict recovery?",
        benches=("go", "branchy-mild", "branchy-hostile"),
        schemes=("modulo", "br-slice", "br-slice-balance", "general-balance"),
    )
)

register_suite(
    SuiteSpec(
        name="stress-memory",
        description="miss-dominated workloads: steering under long memory "
        "latencies",
        benches=("compress", "stream-cold", "memhog-512k", "memhog-2m"),
        schemes=(
            "modulo",
            "ldst-slice",
            "ldst-slice-balance",
            "general-balance",
        ),
    )
)

register_suite(
    SuiteSpec(
        name="comm-bound",
        description="pointer-chase chains where inter-cluster copies sit "
        "on the critical path",
        benches=("li", "pchase-mild", "pchase-heavy", "pchase-extreme"),
        schemes=(
            "modulo",
            "ldst-slice",
            "ldst-priority",
            "general-balance",
        ),
    )
)

register_suite(
    SuiteSpec(
        name="high-ilp",
        description="wide low-communication dataflow: the regime where "
        "any balanced scheme should approach the upper bound",
        benches=("ijpeg", "ilp-wide", "ilp-lowcomm", "stream-hot"),
        schemes=("modulo", "general-balance", "fifo"),
    )
)
