"""Named scenario suites: declarative bundles of campaign grids.

A suite names a *question* — "how do the schemes rank on branch-hostile
code?" — and fixes the benches, schemes, machines, seeds and window sizes
that answer it.  Suites expand into :class:`~repro.analysis.campaign`
grids, so everything the campaign engine provides (shared traces, worker
processes, JSON/CSV stores, incremental resume, seed aggregation) applies
to a suite run unchanged.

>>> from repro.scenarios import get_suite
>>> suite = get_suite("smoke")
>>> len(suite.points(n_instructions=500, warmup=150)) == len(
...     suite.benches) * len(suite.schemes)
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.campaign import CampaignPoint, IncrementalRun, expand_grid, run_campaign
from ..errors import ScenarioError
from ..workloads import FIGURE_ORDER

#: All registered suites by name.
_SUITES: Dict[str, "ScenarioSuite"] = {}


@dataclass(frozen=True)
class ScenarioSuite:
    """A declarative campaign grid with a name and a purpose."""

    name: str
    description: str
    benches: Tuple[str, ...]
    schemes: Tuple[str, ...]
    machines: Tuple[str, ...] = ("clustered",)
    seeds: Tuple[int, ...] = (0,)
    overrides: Tuple[Tuple[Tuple[str, object], ...], ...] = ((),)
    n_instructions: int = 8000
    warmup: int = 2000

    def points(
        self,
        n_instructions: Optional[int] = None,
        warmup: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> List[CampaignPoint]:
        """Expand the suite into campaign points.

        The window sizes and seeds can be overridden per run (smoke jobs
        shrink them; scenario studies widen them) without touching the
        suite definition.
        """
        return expand_grid(
            list(self.benches),
            list(self.schemes),
            machines=self.machines,
            overrides=self.overrides,
            seeds=tuple(seeds) if seeds is not None else self.seeds,
            n_instructions=(
                n_instructions
                if n_instructions is not None
                else self.n_instructions
            ),
            warmup=warmup if warmup is not None else self.warmup,
        )


def register_suite(suite: ScenarioSuite) -> ScenarioSuite:
    """Register *suite*, rejecting duplicate names."""
    if suite.name in _SUITES:
        raise ScenarioError(
            f"scenario suite {suite.name!r} is already registered"
        )
    _SUITES[suite.name] = suite
    return suite


def get_suite(name: str) -> ScenarioSuite:
    """Look up a suite by name (raises for unknown names)."""
    try:
        return _SUITES[name]
    except KeyError:
        known = ", ".join(sorted(_SUITES))
        raise ScenarioError(
            f"unknown scenario suite {name!r}; available: {known}"
        ) from None


def available_suites() -> Tuple[str, ...]:
    """Registered suite names, sorted."""
    return tuple(sorted(_SUITES))


def run_suite(
    name: str,
    workers: int = 1,
    n_instructions: Optional[int] = None,
    warmup: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    store: Optional[str] = None,
    resume: bool = False,
) -> IncrementalRun:
    """Expand and execute one named suite through the campaign engine.

    With *store*/*resume* the run is incremental: points already present
    in the store are reused, only missing ones are simulated, and the
    merged result set is written back.
    """
    suite = get_suite(name)
    points = suite.points(
        n_instructions=n_instructions, warmup=warmup, seeds=seeds
    )
    return run_campaign(
        points, workers=workers, store=store, resume=resume
    )


# ----------------------------------------------------------------------
# Built-in suites
# ----------------------------------------------------------------------
#: Scheme subset spanning the paper's narrative arc: strawman, the two
#: slice variants, balance refinement, and the FIFO comparator.
_NARRATIVE_SCHEMES = (
    "modulo",
    "ldst-slice",
    "br-slice",
    "general-balance",
    "fifo",
)

register_suite(
    ScenarioSuite(
        name="paper-table1",
        description="the paper's eight benchmarks under the narrative "
        "scheme arc (Table 1 x Figures 3-16 in one grid)",
        benches=FIGURE_ORDER,
        schemes=_NARRATIVE_SCHEMES,
        n_instructions=10000,
        warmup=3000,
    )
)

register_suite(
    ScenarioSuite(
        name="branchy",
        description="branch-hostile codes: does balance steering survive "
        "constant mispredict recovery?",
        benches=("go", "branchy-mild", "branchy-hostile"),
        schemes=("modulo", "br-slice", "br-slice-balance", "general-balance"),
    )
)

register_suite(
    ScenarioSuite(
        name="stress-memory",
        description="miss-dominated workloads: steering under long memory "
        "latencies",
        benches=("compress", "stream-cold", "memhog-512k", "memhog-2m"),
        schemes=(
            "modulo",
            "ldst-slice",
            "ldst-slice-balance",
            "general-balance",
        ),
    )
)

register_suite(
    ScenarioSuite(
        name="comm-bound",
        description="pointer-chase chains where inter-cluster copies sit "
        "on the critical path",
        benches=("li", "pchase-mild", "pchase-heavy", "pchase-extreme"),
        schemes=(
            "modulo",
            "ldst-slice",
            "ldst-priority",
            "general-balance",
        ),
    )
)

register_suite(
    ScenarioSuite(
        name="high-ilp",
        description="wide low-communication dataflow: the regime where "
        "any balanced scheme should approach the upper bound",
        benches=("ijpeg", "ilp-wide", "ilp-lowcomm", "stream-hot"),
        schemes=("modulo", "general-balance", "fifo"),
    )
)

register_suite(
    ScenarioSuite(
        name="smoke",
        description="one synthetic and one stress bench on two schemes; "
        "small windows (CI and quick sanity runs)",
        benches=("gcc", "pchase-heavy"),
        schemes=("modulo", "general-balance"),
        n_instructions=1200,
        warmup=300,
    )
)
