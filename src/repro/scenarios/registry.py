"""Workload-family registry: the pluggable scenario corpus.

A *family* is a named group of workloads produced the same way: the
SpecInt95 stand-ins, a parametric stress generator, or a set of imported
``.rtrace`` traces.  Families register here under unique names, and every
member workload is resolvable globally through
:func:`repro.workloads.workload` — which is what lets campaign grids,
scenario suites and the CLI treat ``"pchase-heavy"`` exactly like
``"gcc"``.

Profile-backed families register their members'
:class:`~repro.workloads.WorkloadProfile` objects into the shared profile
table, so member names resolve in worker processes too (the registration
re-runs whenever :mod:`repro.scenarios` is imported).  Trace-backed
members are registered per-process by :func:`register_trace`; campaigns
over them run serially unless the file is imported in every worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

from ..errors import ScenarioError
from ..workloads import (
    FIGURE_ORDER,
    SPECINT95,
    Workload,
    WorkloadProfile,
    register_profile,
    register_workload_resolver,
    workload,
)
from ..workloads.profiles import KB
from .rtrace import import_trace

#: All registered families by name.
_FAMILIES: Dict[str, "WorkloadFamily"] = {}


@dataclass(frozen=True)
class WorkloadFamily:
    """A named group of workloads sharing one production mechanism.

    ``factory(member, seed)`` builds one member workload; the default
    factory resolves the member through the global profile table, which
    is correct for every profile-backed family.
    """

    name: str
    description: str
    members: Tuple[str, ...]
    factory: Callable[[str, int], Workload] = field(
        default=lambda member, seed: workload(member, seed=seed),
        compare=False,
        repr=False,
    )

    def make(self, member: str, seed: int = 0) -> Workload:
        """Build the *member* workload of this family."""
        if member not in self.members:
            known = ", ".join(self.members)
            raise ScenarioError(
                f"family {self.name!r} has no member {member!r}; "
                f"members: {known}"
            )
        return self.factory(member, seed)


def register_family(family: WorkloadFamily) -> WorkloadFamily:
    """Register *family*, rejecting duplicate names."""
    if family.name in _FAMILIES:
        raise ScenarioError(
            f"workload family {family.name!r} is already registered"
        )
    _FAMILIES[family.name] = family
    return family


def get_family(name: str) -> WorkloadFamily:
    """Look up a family by name (raises for unknown names)."""
    try:
        return _FAMILIES[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILIES))
        raise ScenarioError(
            f"unknown workload family {name!r}; available: {known}"
        ) from None


def available_families() -> Tuple[str, ...]:
    """Registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


def corpus_members() -> Dict[str, Tuple[str, ...]]:
    """``{family name: member names}`` for the whole corpus."""
    return {name: _FAMILIES[name].members for name in sorted(_FAMILIES)}


def corpus_benches() -> Tuple[str, ...]:
    """Every member name in the corpus, sorted (all families pooled).

    Used by the CLI to sanity-check bench names in suite data files
    before a run; names outside this set may still resolve through a
    user-registered profile or resolver hook, so absence is a warning,
    not an error.
    """
    names = set()
    for family in _FAMILIES.values():
        names.update(family.members)
    return tuple(sorted(names))


def family_of(member: str) -> Optional[str]:
    """Name of the family containing *member*, or ``None``."""
    for name in sorted(_FAMILIES):
        if member in _FAMILIES[name].members:
            return name
    return None


# ----------------------------------------------------------------------
# Built-in parametric stress families
# ----------------------------------------------------------------------
#: Neutral middle-of-the-road profile the stress families specialise.
#: (Values sit near the median of the SpecInt95 table.)
_BASE_STRESS = WorkloadProfile(
    name="stress-base",
    input_name="synthetic",
    avg_block_size=5.5,
    frac_load=0.24,
    frac_store=0.10,
    frac_complex=0.01,
    frac_fp=0.0,
    loop_branch_frac=0.65,
    data_branch_bias=(0.25, 0.75),
    footprint_bytes=160 * KB,
    cold_access_frac=0.02,
    pointer_chase_frac=0.08,
    addr_depth=1.2,
    cond_depth=1.2,
    slice_overlap=0.45,
    dep_distance=6.0,
    n_blocks=64,
)


def _profile_family(
    name: str, description: str, profiles: Dict[str, WorkloadProfile]
) -> WorkloadFamily:
    """Register *profiles* globally and wrap them as one family.

    Registration is strict (no ``replace``): this module runs once per
    process, and a name collision with a user-registered profile must
    surface as an error rather than silently flip which program the
    name resolves to.
    """
    for profile in profiles.values():
        register_profile(profile)
    return register_family(
        WorkloadFamily(
            name=name,
            description=description,
            members=tuple(profiles),
        )
    )


def _stress(name: str, description: str, **changes) -> WorkloadProfile:
    return replace(
        _BASE_STRESS, name=name, description=description, **changes
    )


SPECINT95_FAMILY = register_family(
    WorkloadFamily(
        name="specint95",
        description="the paper's eight SpecInt95 stand-ins (Table 1)",
        members=FIGURE_ORDER,
    )
)

POINTER_CHASE_FAMILY = _profile_family(
    "pointer-chase",
    "dependent-load chains of increasing depth (li taken to extremes)",
    {
        "pchase-mild": _stress(
            "pchase-mild",
            "some pointer chasing, short dependence chains",
            pointer_chase_frac=0.25,
            dep_distance=4.5,
            slice_overlap=0.55,
        ),
        "pchase-heavy": _stress(
            "pchase-heavy",
            "half the loads feed the next address",
            pointer_chase_frac=0.5,
            frac_load=0.30,
            addr_depth=0.8,
            dep_distance=3.5,
            slice_overlap=0.6,
        ),
        "pchase-extreme": _stress(
            "pchase-extreme",
            "almost every load is a dependent load; serial address streams",
            pointer_chase_frac=0.75,
            frac_load=0.32,
            addr_depth=0.6,
            dep_distance=2.5,
            slice_overlap=0.65,
            avg_block_size=4.0,
        ),
    },
)

BRANCH_HOSTILE_FAMILY = _profile_family(
    "branch-hostile",
    "short blocks and near-50/50 data-dependent branches (go-like and worse)",
    {
        "branchy-mild": _stress(
            "branchy-mild",
            "half the branches are data-dependent with moderate bias",
            loop_branch_frac=0.45,
            data_branch_bias=(0.3, 0.7),
            avg_block_size=4.5,
            cond_depth=1.6,
        ),
        "branchy-hostile": _stress(
            "branchy-hostile",
            "mostly unpredictable branches every few instructions",
            loop_branch_frac=0.2,
            data_branch_bias=(0.4, 0.6),
            avg_block_size=3.5,
            cond_depth=2.0,
            slice_overlap=0.5,
        ),
    },
)

STREAMING_FAMILY = _profile_family(
    "streaming",
    "regular sequential access with predictable loops (ijpeg-like)",
    {
        "stream-hot": _stress(
            "stream-hot",
            "streaming over a cache-resident working set",
            loop_branch_frac=0.9,
            data_branch_bias=(0.1, 0.9),
            cold_access_frac=0.002,
            footprint_bytes=48 * KB,
            avg_block_size=8.0,
            addr_depth=1.6,
            dep_distance=9.0,
            slice_overlap=0.25,
        ),
        "stream-cold": _stress(
            "stream-cold",
            "streaming over a footprint far beyond the L1",
            loop_branch_frac=0.9,
            data_branch_bias=(0.1, 0.9),
            cold_access_frac=0.1,
            footprint_bytes=768 * KB,
            avg_block_size=8.0,
            addr_depth=1.6,
            dep_distance=9.0,
        ),
    },
)

HIGH_ILP_FAMILY = _profile_family(
    "high-ilp",
    "wide independent dataflow with little inter-slice communication",
    {
        "ilp-wide": _stress(
            "ilp-wide",
            "long dependence distances, big predictable blocks",
            dep_distance=12.0,
            avg_block_size=9.0,
            loop_branch_frac=0.9,
            data_branch_bias=(0.05, 0.95),
            slice_overlap=0.15,
            pointer_chase_frac=0.01,
            cold_access_frac=0.005,
        ),
        "ilp-lowcomm": _stress(
            "ilp-lowcomm",
            "shallow address/condition slices that barely overlap",
            dep_distance=10.0,
            addr_depth=0.4,
            cond_depth=0.4,
            slice_overlap=0.05,
            loop_branch_frac=0.85,
            pointer_chase_frac=0.02,
        ),
    },
)

MEMORY_STRESS_FAMILY = _profile_family(
    "memory-stress",
    "footprints and cold-access rates that thrash the D-cache",
    {
        "memhog-512k": _stress(
            "memhog-512k",
            "compress-like miss rates over half a megabyte",
            footprint_bytes=512 * KB,
            cold_access_frac=0.12,
            frac_load=0.26,
            frac_store=0.12,
        ),
        "memhog-2m": _stress(
            "memhog-2m",
            "random accesses across two megabytes; miss-dominated",
            footprint_bytes=2048 * KB,
            cold_access_frac=0.2,
            frac_load=0.28,
            frac_store=0.12,
            dep_distance=5.0,
        ),
    },
)


# ----------------------------------------------------------------------
# Imported traces
# ----------------------------------------------------------------------
#: Imported-trace workloads by registered name (per-process).
_TRACE_WORKLOADS: Dict[str, Workload] = {}

TRACE_FAMILY = register_family(
    WorkloadFamily(
        name="rtrace",
        description="imported .rtrace traces (grows via register_trace)",
        members=(),
        factory=lambda member, seed: _TRACE_WORKLOADS[member],
    )
)


def register_trace(path: str, name: Optional[str] = None) -> Workload:
    """Import *path* and register its workload in the scenario corpus.

    The workload becomes resolvable by name through
    :func:`repro.workloads.workload` (and therefore usable as a campaign
    bench).  Duplicate names are rejected — against the whole corpus, not
    just other traces.
    """
    wl = import_trace(path, name=name)
    if wl.name in SPECINT95:
        raise ScenarioError(
            f"workload name {wl.name!r} shadows a SpecInt95 benchmark; "
            f"pass name=... to rename the imported trace"
        )
    if wl.name in _TRACE_WORKLOADS or family_of(wl.name) is not None:
        raise ScenarioError(
            f"workload name {wl.name!r} is already registered; pass "
            f"name=... to register the trace under a different name"
        )
    _TRACE_WORKLOADS[wl.name] = wl
    # Rebuild the family with the new member list (families are frozen).
    global TRACE_FAMILY
    TRACE_FAMILY = replace(
        TRACE_FAMILY, members=tuple(sorted(_TRACE_WORKLOADS))
    )
    _FAMILIES["rtrace"] = TRACE_FAMILY
    return wl


def unregister_trace(name: str) -> None:
    """Drop an imported trace from the corpus (no-op for unknown names)."""
    if _TRACE_WORKLOADS.pop(name, None) is not None:
        global TRACE_FAMILY
        TRACE_FAMILY = replace(
            TRACE_FAMILY, members=tuple(sorted(_TRACE_WORKLOADS))
        )
        _FAMILIES["rtrace"] = TRACE_FAMILY


def _resolve_trace_workload(name: str, seed: int) -> Optional[Workload]:
    """Workload resolver hook: serve imported traces by name.

    An imported trace *is* one specific recorded execution, so asking
    for it under a different seed is an error, not a variation: serving
    the same records for every seed would make multi-seed aggregation
    report zero variance over identical runs.
    """
    wl = _TRACE_WORKLOADS.get(name)
    if wl is not None and seed != wl.seed:
        raise ScenarioError(
            f"imported trace {name!r} was recorded at seed {wl.seed} and "
            f"cannot be replayed at seed {seed}; re-export the workload "
            f"at that seed instead"
        )
    return wl


register_workload_resolver(_resolve_trace_workload)
