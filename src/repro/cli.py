"""Command-line interface.

Installed as ``repro-sim``::

    repro-sim list                       # schemes and the workload corpus
    repro-sim machines list              # machine registry + families
    repro-sim schemes list               # steering schemes, described
    repro-sim run -b gcc -s general-balance
    repro-sim run -b gcc -m bypass-latency-2 -O clusters.0.iq_size=128
    repro-sim compare -b gcc             # every scheme on one benchmark
    repro-sim figure fig14               # regenerate one paper figure
    repro-sim figure all                 # the whole evaluation
    repro-sim sweep bypass_ports 1 2 3   # ablation sweeps (dotted paths ok)
    repro-sim campaign -b gcc li -s modulo general-balance -j 4
    repro-sim campaign ... -O l1d.size_kb=32 --json r.json --resume
    repro-sim scenarios list             # workload families and suites
    repro-sim scenarios run branchy --json branchy.json
    repro-sim suite export paper-table1 -o pt1.json   # data-file suites
    repro-sim suite run pt1.json --json store.json --resume
    repro-sim trace export -b gcc -o gcc.rtrace
    repro-sim trace import gcc.rtrace --check
    repro-sim campaign ... --backend worker -j 4   # execution backends
    repro-sim campaign ... --warm -j 4   # warm worker pool (persists)
    repro-sim dist backends              # list execution backends
    repro-sim dist pool status -j 2      # warm pool health + counters
    repro-sim dist package smoke --job-dir job/   # multi-host pipeline
    repro-sim dist worker job/           # claim+simulate until empty
    repro-sim dist status job/
    repro-sim dist merge job/ --json results.json
    repro-sim perf record              # measure + append to BENCH_history/
    repro-sim perf check               # statistical gate vs the ledger
    repro-sim perf diff 8745a1f 3638d8 --suite core
    repro-sim perf log --suite campaign
    repro-sim -v campaign ...          # structured event log on stderr
    repro-sim trace show job-123-1 --log events.jsonl   # span tree
    repro-sim telemetry dump           # logging config + metrics registry
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    FIGURES,
    ExperimentRunner,
    format_balance_histogram,
    format_comm_table,
    format_kv_table,
    format_speedup_table,
    format_value_table,
    table1_workloads,
    table2_parameters,
)
from .core.steering import available_schemes, scheme_description
from .pipeline import simulate, simulate_baseline
from .spec import (
    MachineSpec,
    RunSpec,
    available_machine_families,
    available_machines,
    machine_description,
    parse_override,
)
from .spec import run as run_spec


def _add_override_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-O",
        "--override",
        action="append",
        default=[],
        metavar="PATH=VALUE",
        help="dotted machine override, e.g. clusters.0.iq_size=128 or "
        "l1d.size_kb=32 (repeatable)",
    )


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend (see 'dist backends'); default: serial, "
        "or the process pool when -j > 1",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="dispatch through the warm worker pool (shorthand for "
        "--backend worker; the pool and its preloaded traces persist "
        "for the rest of the process)",
    )
    parser.add_argument(
        "--dist-timeout",
        default=None,
        metavar="SECONDS",
        help="worker backend: per-point reply timeout; 'none' waits "
        "forever (default: the REPRO_DIST_TIMEOUT knob)",
    )
    parser.add_argument(
        "--dist-retries",
        default=None,
        metavar="N",
        help="worker backend: extra attempts after a worker "
        "death/timeout (default: the REPRO_DIST_RETRIES knob, i.e. 1)",
    )
    parser.add_argument(
        "--service-address",
        default=None,
        metavar="HOST:PORT",
        help="service backend: the dist serve daemon to submit to "
        "(default: the REPRO_SERVICE_ADDRESS knob)",
    )


def _backend_arg(args: argparse.Namespace):
    """The backend selected by --backend/--warm and its option flags.

    Returns ``(backend, error)``: a name, a constructed instance (when
    option flags need passing through), or an exit code when the flags
    contradict each other or fail validation.
    """
    backend = getattr(args, "backend", None)
    if getattr(args, "warm", False):
        if backend not in (None, "worker"):
            print(
                f"--warm selects the worker backend; it cannot combine "
                f"with --backend {backend}"
            )
            return None, 2
        backend = "worker"
    timeout = getattr(args, "dist_timeout", None)
    retries = getattr(args, "dist_retries", None)
    address = getattr(args, "service_address", None)
    if timeout is None and retries is None and address is None:
        return backend, None
    if backend not in ("worker", "service"):
        print(
            "--dist-timeout/--dist-retries/--service-address apply to "
            "--backend worker or --backend service"
        )
        return None, 2
    if backend == "service" and (timeout is not None or retries is not None):
        print(
            "--dist-timeout/--dist-retries belong to the daemon "
            "(see 'dist serve'), not to the service client"
        )
        return None, 2
    if backend == "worker" and address is not None:
        print("--service-address applies to --backend service only")
        return None, 2
    from . import dist
    from .errors import ConfigError

    options = {}
    if timeout is not None:
        options["timeout"] = timeout
    if retries is not None:
        options["retries"] = retries
    if address is not None:
        options["address"] = address
    try:
        return dist.backend(backend, **options), None
    except ConfigError as error:
        print(f"invalid backend options: {error}")
        return None, 2


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-n",
        "--instructions",
        type=int,
        default=20000,
        help="measured window length (committed instructions)",
    )
    parser.add_argument(
        "-w", "--warmup", type=int, default=5000, help="warm-up length"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload generation seed"
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    from . import scenarios

    print("steering schemes:")
    for name in available_schemes():
        print(f"  {name}")
    print("workload corpus:")
    for family, members in scenarios.corpus_members().items():
        listed = ", ".join(members) if members else "(empty)"
        print(f"  {family}: {listed}")
    return 0


def _parse_overrides(args: argparse.Namespace):
    """``-O PATH=VALUE`` occurrences as canonical override pairs."""
    return tuple(parse_override(text) for text in args.override)


def _cmd_machines(args: argparse.Namespace) -> int:
    # machines list
    print("machines:")
    for name in available_machines():
        print(f"  {name}: {machine_description(name)}")
    print("parametric families (resolve as <family>-<N>):")
    for prefix in available_machine_families():
        print(f"  {prefix}-<N>: {machine_description(prefix)}")
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    from .core.steering import scheme_api

    # schemes list
    print("steering schemes:")
    for name in available_schemes():
        print(f"  {name} [{scheme_api(name)}]: {scheme_description(name)}")
    print(
        "\ncontract: a scheme implements choose_cluster(self, ctx, dyn) "
        "and on_dispatch(self, ctx, dyn, cluster)\nover the documented "
        "SteeringContext read-view (repro.core.steering.SteeringContext).\n"
        "[legacy] marks schemes still on choose(self, dyn, machine), "
        "bridged for one more release\nwith a DeprecationWarning."
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    base = simulate_baseline(
        args.bench,
        n_instructions=args.instructions,
        warmup=args.warmup,
        seed=args.seed,
    )
    # One declarative spec, executed through the repro.run facade.
    spec = RunSpec(
        bench=args.bench,
        scheme=args.scheme,
        machine=MachineSpec(args.machine, _parse_overrides(args)),
        seed=args.seed,
        n_instructions=args.instructions,
        warmup=args.warmup,
    )
    result = run_spec(spec)
    print(result.summary())
    print(f"  base IPC          {base.ipc:6.3f}")
    print(f"  scheme IPC        {result.ipc:6.3f}")
    print(f"  speed-up          {result.speedup_over(base):+6.1%}")
    print(f"  comms/instr       {result.comms_per_instr:6.3f}")
    print(f"  critical comms    {result.critical_comms_per_instr:6.3f}")
    print(f"  register repl.    {result.avg_replication:6.2f}")
    print(f"  branch accuracy   {result.branch_accuracy:6.1%}")
    print(f"  L1D miss rate     {result.l1d_miss_rate:6.1%}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    base = simulate_baseline(
        args.bench,
        n_instructions=args.instructions,
        warmup=args.warmup,
        seed=args.seed,
    )
    print(f"{args.bench}: base IPC {base.ipc:.3f}")
    print(f"{'scheme':>24s}{'speed-up':>10s}{'comm/i':>8s}{'crit':>7s}")
    for scheme in available_schemes():
        if scheme == "naive":
            continue
        result = simulate(
            args.bench,
            steering=scheme,
            n_instructions=args.instructions,
            warmup=args.warmup,
            seed=args.seed,
        )
        print(
            f"{scheme:>24s}{result.speedup_over(base):>+10.1%}"
            f"{result.comms_per_instr:>8.3f}"
            f"{result.critical_comms_per_instr:>7.3f}"
        )
    return 0


def _print_figure(name: str, runner: ExperimentRunner) -> None:
    data = FIGURES[name](runner)
    if name == "fig3":
        print(
            format_speedup_table(
                "Figure 3: static vs dynamic partitioning",
                data["benchmarks"],
                {"static": data["static"], "LdSt slice": data["dynamic"]},
                {
                    "static": data["static_gmean"],
                    "LdSt slice": data["dynamic_gmean"],
                },
                mean_label="G-mean",
            )
        )
    elif name == "fig4":
        print(
            format_speedup_table(
                "Figure 4: LdSt slice vs Br slice steering",
                data["benchmarks"],
                {"LdSt slice": data["ldst"], "Br slice": data["br"]},
                {
                    "LdSt slice": data["ldst_hmean"],
                    "Br slice": data["br_hmean"],
                },
            )
        )
    elif name == "fig5":
        rows = {
            "LdSt slice": {
                "critical": data["ldst_mean_critical"],
                "noncritical": data["ldst_mean_total"]
                - data["ldst_mean_critical"],
                "total": data["ldst_mean_total"],
            },
            "Br slice": {
                "critical": data["br_mean_critical"],
                "noncritical": data["br_mean_total"]
                - data["br_mean_critical"],
                "total": data["br_mean_total"],
            },
        }
        print(format_comm_table("Figure 5: comms/instr (mean)", rows))
    elif name in ("fig6", "fig9", "fig12"):
        titles = {
            "fig6": "Figure 6: balance distribution, slice steering",
            "fig9": "Figure 9: balance distribution, non-slice balance",
            "fig12": "Figure 12: balance distribution, slice balance",
        }
        print(format_balance_histogram(titles[name], data))
    elif name == "fig7":
        print(
            format_speedup_table(
                "Figure 7: non-slice balance vs slice steering",
                data["benchmarks"],
                {
                    "LdSt slice": data["ldst-slice"],
                    "Br slice": data["br-slice"],
                    "LdSt non-slice": data["ldst-nonslice"],
                    "Br non-slice": data["br-nonslice"],
                },
                {
                    "LdSt slice": data["ldst-slice_hmean"],
                    "Br slice": data["br-slice_hmean"],
                    "LdSt non-slice": data["ldst-nonslice_hmean"],
                    "Br non-slice": data["br-nonslice_hmean"],
                },
            )
        )
    elif name == "fig8":
        print(format_comm_table("Figure 8: comms/instr (mean)", data))
    elif name == "fig11":
        print(
            format_speedup_table(
                "Figure 11: slice balance steering",
                data["benchmarks"],
                {"LdSt slice bal": data["ldst"], "Br slice bal": data["br"]},
                {
                    "LdSt slice bal": data["ldst_hmean"],
                    "Br slice bal": data["br_hmean"],
                },
            )
        )
        print(
            f"mean comms/instr: LdSt {data['ldst_mean_comms']:.3f}, "
            f"Br {data['br_mean_comms']:.3f}"
        )
    elif name == "fig13":
        print(
            format_speedup_table(
                "Figure 13: priority slice balance steering",
                data["benchmarks"],
                {"LdSt p.slice": data["ldst"], "Br p.slice": data["br"]},
                {
                    "LdSt p.slice": data["ldst_hmean"],
                    "Br p.slice": data["br_hmean"],
                },
            )
        )
        print(
            "critical comms/instr: "
            f"LdSt {data['ldst_critical_plain']:.3f} -> "
            f"{data['ldst_critical']:.3f}, "
            f"Br {data['br_critical_plain']:.3f} -> {data['br_critical']:.3f}"
        )
    elif name == "fig14":
        print(
            format_speedup_table(
                "Figure 14: general balance steering",
                data["benchmarks"],
                {
                    "Modulo": data["modulo"],
                    "General bal": data["general"],
                    "UB arch": data["upper_bound"],
                },
                {
                    "Modulo": data["modulo_hmean"],
                    "General bal": data["general_hmean"],
                    "UB arch": data["upper_bound_hmean"],
                },
            )
        )
    elif name == "fig15":
        print(
            format_value_table(
                "Figure 15: register replication (general balance)",
                data["benchmarks"],
                data["replication"],
                "regs/cycle",
                data["hmean"],
            )
        )
    elif name == "fig16":
        print(
            format_speedup_table(
                "Figure 16: general balance vs FIFO-based steering",
                data["benchmarks"],
                {"FIFO-based": data["fifo"], "General bal": data["general"]},
                {
                    "FIFO-based": data["fifo_hmean"],
                    "General bal": data["general_hmean"],
                },
            )
        )
        print(
            f"comms/instr: FIFO {data['fifo_comms']:.3f}, "
            f"general {data['general_comms']:.3f}"
        )


def _cmd_figure(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(
        n_instructions=args.instructions,
        warmup=args.warmup,
        seed=args.seed,
    )
    if args.name == "table1":
        for row in table1_workloads():
            print(
                f"{row['benchmark']:>10s}  {row['input']:<24s}"
                f"{row['description']}"
            )
        return 0
    if args.name == "table2":
        print(format_kv_table("Table 2: machine parameters", table2_parameters()))
        return 0
    names = list(FIGURES) if args.name == "all" else [args.name]
    for name in names:
        if name not in FIGURES:
            known = ", ".join(["table1", "table2", *FIGURES])
            print(f"unknown figure {name!r}; available: {known}")
            return 2
        _print_figure(name, runner)
        print()
    return 0


def _print_campaign_results(results, seeds) -> None:
    """Shared result printout of the campaign/scenarios run commands."""
    for run in results:
        print(run.result.summary())
    if len(seeds) > 1:
        print()
        print(
            f"{'bench':>10s} {'scheme':<22s} {'seeds':>5s} "
            f"{'ipc mean':>9s} {'ipc std':>8s} {'comm mean':>10s}"
        )
        for agg in results.aggregate():
            print(
                f"{agg.bench:>10s} {agg.scheme:<22s} {agg.n_seeds:>5d} "
                f"{agg.ipc:>9.3f} {agg.ipc_std:>8.4f} "
                f"{agg.means['comms_per_instr']:>10.3f}"
            )


def _execute_grid(points, args) -> int:
    """Run *points* honouring -j/--json/--csv/--resume; print results.

    The first of --json/--csv acts as the incremental store; with both
    given the second is written as an additional plain export.
    """
    from .analysis.campaign import CampaignError, run_campaign

    store = args.json or args.csv
    if args.resume and store is None:
        print("--resume needs a store: pass --json or --csv")
        return 2
    backend, error = _backend_arg(args)
    if error is not None:
        return error
    try:
        run = run_campaign(
            points,
            workers=args.jobs,
            store=store,
            resume=args.resume,
            backend=backend,
        )
    except CampaignError as error:
        for point, text in error.failures:
            last = text.strip().splitlines()[-1]
            print(f"FAILED {point.label}: {last}")
        return 1
    seeds = sorted({p.seed for p in points})
    _print_campaign_results(run.results, seeds)
    if run.n_cached:
        print(
            f"reused {run.n_cached} stored point(s), "
            f"simulated {run.n_simulated}"
        )
    if store:
        print(f"wrote {store}")
    if args.json and args.csv:
        run.results.save_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .analysis.campaign import Campaign, expand_grid

    schemes = args.schemes or [
        s for s in available_schemes() if s != "naive"
    ]
    points = expand_grid(
        args.benches,
        schemes,
        machines=tuple(args.machines),
        overrides=(_parse_overrides(args),),
        seeds=tuple(args.seeds),
        n_instructions=args.instructions,
        warmup=args.warmup,
    )
    backend, error = _backend_arg(args)
    if error is not None:
        return error
    workers = Campaign(
        points, workers=args.jobs, backend=backend
    ).effective_workers
    print(
        f"campaign: {len(args.benches)} bench(es) x {len(schemes)} "
        f"scheme(s) x {len(args.machines)} machine(s) x "
        f"{len(args.seeds)} seed(s) = {len(points)} points "
        f"({workers} worker(s))"
    )
    return _execute_grid(points, args)


def _cmd_suite(args: argparse.Namespace) -> int:
    from . import scenarios

    if args.suite_cmd == "export":
        out = args.output or f"{args.suite}.json"
        suite = scenarios.export_suite(args.suite, out)
        print(
            f"wrote {out}: suite {suite.name!r}, "
            f"{len(suite.benches)} bench(es) x {len(suite.schemes)} "
            f"scheme(s) x {len(suite.machines)} machine(s)"
        )
        return 0
    # suite run FILE
    suite = scenarios.load_suite_file(args.file)
    unknown = set(suite.benches) - set(scenarios.corpus_benches())
    if unknown:
        print(
            "note: bench(es) not in the registered corpus "
            f"(may still resolve via custom profiles): "
            f"{', '.join(sorted(unknown))}"
        )
    points = suite.points(
        n_instructions=args.instructions,
        warmup=args.warmup,
        seeds=tuple(args.seeds) if args.seeds else None,
    )
    print(
        f"suite {suite.name!r} from {args.file}: {suite.description}\n"
        f"  {len(points)} points over {len(suite.benches)} bench(es) x "
        f"{len(suite.schemes)} scheme(s)"
    )
    return _execute_grid(points, args)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from . import scenarios

    if args.scenarios_cmd == "list":
        print("workload families:")
        for name in scenarios.available_families():
            family = scenarios.get_family(name)
            members = ", ".join(family.members) if family.members else "(empty)"
            print(f"  {name}: {family.description}")
            print(f"    members: {members}")
        print("scenario suites:")
        for name in scenarios.available_suites():
            suite = scenarios.get_suite(name)
            print(f"  {name}: {suite.description}")
            print(
                f"    {len(suite.benches)} bench(es) x "
                f"{len(suite.schemes)} scheme(s), "
                f"n={suite.n_instructions} warmup={suite.warmup}"
            )
        return 0
    # scenarios run SUITE
    suite = scenarios.get_suite(args.suite)
    points = suite.points(
        n_instructions=args.instructions,
        warmup=args.warmup,
        seeds=tuple(args.seeds) if args.seeds else None,
    )
    print(
        f"suite {suite.name!r}: {suite.description}\n"
        f"  {len(points)} points over {len(suite.benches)} bench(es) x "
        f"{len(suite.schemes)} scheme(s)"
    )
    return _execute_grid(points, args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from . import scenarios
    from .workloads import workload

    if args.trace_cmd == "export":
        wl = workload(args.bench, seed=args.seed)
        out = args.output or f"{args.bench}.rtrace"
        meta = scenarios.export_trace(wl, out, args.records)
        print(f"wrote {out}: {meta.describe()}")
        return 0
    if args.trace_cmd == "info":
        print(scenarios.read_meta(args.file).describe())
        return 0
    if args.trace_cmd == "show":
        return _cmd_trace_show(args)
    # trace import FILE
    wl = scenarios.register_trace(args.file, name=args.name)
    shared = wl.shared_trace()
    print(
        f"imported {args.file} as workload {wl.name!r} "
        f"({len(shared)} records, seed {wl.seed})"
    )
    if args.check:
        n = min(1000, max(1, len(shared) - 500))
        result = simulate(wl, steering="general-balance",
                          n_instructions=n, warmup=min(300, n // 2))
        print(f"replay check: IPC {result.ipc:.3f} over {n} instructions")
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    """``trace show TOKEN``: render one distributed trace as a tree.

    *TOKEN* is a trace id (any unique prefix) or any span attribute
    value — most usefully a service job id.  Spans come from the
    JSON-lines telemetry log (``--log`` or ``REPRO_LOG_FILE``).
    """
    from . import telemetry
    from .errors import ConfigError

    log_path = args.log or telemetry.sink_path()
    if log_path is None:
        print(
            "trace show needs a telemetry log: pass --log FILE or set "
            "REPRO_LOG_FILE"
        )
        return 2
    telemetry.flush()  # this process may have spans still queued
    try:
        spans = telemetry.load_spans(log_path)
    except ConfigError as error:
        print(str(error))
        return 2
    if not spans:
        print(f"{log_path}: no spans recorded")
        return 1
    if args.token is None:
        # No token: list every trace so the user can pick one.
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.get("trace_id"), []).append(span)
        print(f"{log_path}: {len(by_trace)} trace(s)")
        for trace_id, members in by_trace.items():
            root = members[0]
            print(
                f"  {trace_id}  {root.get('name', '?')} "
                f"({len(members)} span(s))"
            )
        return 0
    trace_id = telemetry.resolve_trace_id(spans, args.token)
    if trace_id is None:
        print(f"no trace matching {args.token!r} in {log_path}")
        return 1
    print(telemetry.render_trace(spans, trace_id))
    if args.check:
        problems = telemetry.check_span_trees(
            [s for s in spans if s.get("trace_id") == trace_id]
        )
        for problem in problems:
            print(f"INCOMPLETE: {problem}")
        return 1 if problems else 0
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """``telemetry dump``: the logging config + metrics registry."""
    import json as json_module
    import os

    from . import telemetry

    level = os.environ.get(telemetry.LEVEL_ENV)
    document = {
        "level": level if level is not None else (
            "info" if telemetry.sink_path() else "off"
        ),
        "file": telemetry.sink_path(),
        "metrics": telemetry.metrics.snapshot(),
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json_module.dump(document, fh, indent=1)
        print(f"wrote {args.json}")
        return 0
    print(f"log level: {document['level']}")
    print(f"log file:  {document['file'] or '(stderr when enabled)'}")
    if not document["metrics"]:
        print("metrics:   (none recorded in this process)")
        return 0
    print("metrics:")
    for name, doc in document["metrics"].items():
        if doc["type"] == "histogram":
            detail = (
                f"count {doc['count']}"
                + (
                    f", mean {doc['mean']}s, max {doc['max']}s"
                    if doc.get("count") else ""
                )
            )
        else:
            detail = f"{doc['value']}"
        print(f"  {name} ({doc['type']}): {detail}")
    return 0


def _dist_suite_points(args):
    """Expand the suite named (or stored in the file) `args.suite`."""
    import os

    from . import scenarios

    if os.path.isfile(args.suite):
        suite = scenarios.load_suite_file(args.suite)
    else:
        suite = scenarios.get_suite(args.suite)
    return suite, suite.points(
        n_instructions=args.instructions,
        warmup=args.warmup,
        seeds=tuple(args.seeds) if args.seeds else None,
    )


def _cmd_dist(args: argparse.Namespace) -> int:
    from . import dist

    if args.dist_cmd == "backends":
        if args.json:
            import json as json_module

            print(json_module.dumps(
                [
                    {
                        "name": name,
                        "description": dist.backend_description(name),
                    }
                    for name in dist.available_backends()
                ],
                indent=1,
            ))
            return 0
        print("execution backends:")
        for name in dist.available_backends():
            print(f"  {name}: {dist.backend_description(name)}")
        return 0
    if args.dist_cmd == "package":
        suite, points = _dist_suite_points(args)
        job = dist.package_job(
            points, args.job_dir, description=f"suite {suite.name!r}"
        )
        print(f"packaged {job.describe()}")
        return 0
    if args.dist_cmd == "worker":
        modes = sum(
            1 for on in (args.job_dir is not None, args.stdio,
                         args.listen is not None) if on
        )
        if modes != 1:
            print(
                "dist worker needs exactly one mode: a job directory "
                "(directory-queue), --stdio (protocol on stdin/stdout), "
                "or --listen HOST:PORT (protocol on a socket)"
            )
            return 2
        if args.job_dir is not None:
            done = dist.run_worker(
                args.job_dir,
                worker_id=args.worker_id,
                max_points=args.max_points,
            )
            print(f"worker completed {done} point(s)")
            return 0
        if args.listen is not None:
            return dist.serve_listen(args.listen)
        return dist.serve_stdio()
    if args.dist_cmd == "serve":
        return _cmd_dist_serve(args)
    if args.dist_cmd == "pool":
        # pool status [--jobs N] [--worker ADDR]... [--json FILE]
        import json as json_module

        from . import telemetry

        remote = list(args.worker or [])
        pool = dist.shared_pool(remote=remote)
        pool.ensure(max(args.jobs, len(remote)))
        stats = pool.stats()
        stats["telemetry"] = telemetry.metrics.snapshot()
        print(
            f"worker pool: {stats['size']} live worker(s), "
            f"{stats['spawned_total']} spawned / "
            f"{stats['connects_total']} connect(s) this process, "
            f"protocol v{dist.PROTOCOL_VERSION}"
        )
        print(
            f"  served {stats['points_served']} point(s) in "
            f"{stats['batches']} batch(es); trace cache "
            f"{stats['trace_cache_hits']} hit(s) / "
            f"{stats['trace_cache_misses']} miss(es), "
            f"{stats['trace_payloads']} payload(s) exported"
        )
        for worker in stats["workers"]:
            label = (
                f"{worker.get('transport', '?')} "
                f"{worker.get('address', '?')}"
            )
            if worker.get("busy"):
                print(f"  {label}: busy serving a dispatcher")
            elif not worker.get("alive", True):
                print(f"  {label}: unreachable")
            else:
                print(
                    f"  {label}: {worker['points_served']} point(s), "
                    f"{worker['preloaded_traces']} trace(s) pinned"
                )
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json_module.dump(stats, fh, indent=1)
            print(f"wrote {args.json}")
        return 0
    if args.dist_cmd == "status":
        if args.requeue_lost:
            moved = dist.requeue_lost(args.job_dir)
            print(f"requeued {moved} lost point(s)")
        print(dist.job_status(args.job_dir).describe())
        return 0
    # dist merge JOBDIR
    from .errors import DistError

    store = args.json or args.csv
    try:
        merged = dist.merge_job(
            args.job_dir, store=store, allow_partial=args.allow_partial
        )
        if args.json and args.csv:
            # Same contract as campaign/scenarios run: the second
            # format is an additional plain export.
            dist.merge_job(
                args.job_dir, store=args.csv,
                allow_partial=args.allow_partial,
            )
    except DistError as error:
        print(f"merge failed: {error}")
        print("(pass --allow-partial to merge what completed)")
        return 1
    print(f"merged {merged.describe()}")
    if store:
        print(f"wrote {store}")
    if args.json and args.csv:
        print(f"wrote {args.csv}")
    for index in sorted(merged.failures):
        last = merged.failures[index].strip().splitlines()[-1]
        print(f"FAILED {merged.points[index].label}: {last}")
    return 0 if merged.complete else 1


def _cmd_dist_serve(args: argparse.Namespace) -> int:
    """`dist serve [run|status|stop]` — the simulation-service daemon."""
    import json as json_module

    from . import dist
    from .errors import ConfigError, DistError

    if args.action in ("status", "stop"):
        address = args.address or dist.service_address_from_env()
        if address is None:
            print(
                "dist serve status/stop needs the daemon address "
                "(--address HOST:PORT or REPRO_SERVICE_ADDRESS)"
            )
            return 2
        client = dist.ServiceClient(address=address, tenant="cli")
        try:
            if args.action == "stop":
                client.shutdown(stop_workers=args.stop_workers)
                print(f"asked daemon at {address} to stop")
                return 0
            status = client.status()
        except (ConfigError, DistError) as error:
            print(f"service at {address} unavailable: {error}")
            return 1
        finally:
            client.close()
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                json_module.dump(status, fh, indent=1)
            print(f"wrote {args.json}")
        pool = status.get("pool", {})
        print(
            f"serve daemon at {status['address']} "
            f"(protocol v{status['protocol']}, "
            f"up {status['uptime']:.0f}s): "
            f"{status['jobs']['active']} active / "
            f"{status['jobs']['completed']} completed job(s), "
            f"{pool.get('points_served', 0)} point(s) served by "
            f"{status['slots']} slot(s)"
        )
        for tenant, row in sorted(status.get("tenants", {}).items()):
            print(
                f"  tenant {tenant}: weight {row['weight']}, "
                f"{row['queued_chunks']} chunk(s) queued, "
                f"{row['dispatched_chunks']} dispatched, "
                f"{row['points_served']} point(s) served"
            )
        for worker in pool.get("workers", []):
            label = (
                f"{worker.get('transport', '?')} "
                f"{worker.get('address', '?')}"
            )
            if worker.get("busy"):
                print(f"  worker {label}: busy")
            elif not worker.get("alive", True):
                print(f"  worker {label}: unreachable")
            else:
                print(
                    f"  worker {label}: "
                    f"{worker['points_served']} point(s) served"
                )
        return 0

    # action == "run": own the pool and serve until interrupted.
    weights = {}
    for item in args.weight or []:
        tenant, eq, value = item.partition("=")
        if not eq or not tenant:
            print(f"invalid --weight {item!r} (expected TENANT=N)")
            return 2
        try:
            weights[tenant] = int(value)
        except ValueError:
            print(f"invalid --weight {item!r} (expected TENANT=N)")
            return 2
    options = {}
    if args.dist_timeout is not None:
        options["timeout"] = args.dist_timeout
    if args.dist_retries is not None:
        options["retries"] = args.dist_retries
    try:
        daemon = dist.ServeDaemon(
            address=args.address or "127.0.0.1:7731",
            jobs=args.jobs,
            remote=tuple(args.worker or ()),
            watch=args.watch,
            weights=weights or None,
            **options,
        )
        daemon.start()
    except (ConfigError, DistError, OSError) as error:
        print(f"dist serve failed to start: {error}")
        return 1
    print(f"serving on {daemon.address} ({daemon.n_slots} slot(s))")
    try:
        daemon.wait()
    except KeyboardInterrupt:
        print("interrupted; stopping")
    finally:
        daemon.stop()
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from .perf.cli import cmd_perf

    return cmd_perf(args)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweeps import Sweep

    sweep = Sweep(
        args.param,
        args.values,
        bench=args.bench,
        scheme=args.scheme,
        machine=args.machine,
        n_instructions=args.instructions,
        warmup=args.warmup,
        seed=args.seed,
    )
    print(sweep.format())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description=(
            "Reproduction of 'Dynamic Cluster Assignment Mechanisms' "
            "(HPCA 2000)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="structured event logging on stderr (-v info, -vv debug; "
        "REPRO_LOG_LEVEL/REPRO_LOG_FILE take precedence)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list schemes and benchmarks")

    machines_p = sub.add_parser(
        "machines", help="machine registry (Table 2 + parametric variants)"
    )
    msub = machines_p.add_subparsers(dest="machines_cmd", required=True)
    msub.add_parser("list", help="registered machines with descriptions")

    schemes_p = sub.add_parser("schemes", help="steering scheme registry")
    schsub = schemes_p.add_subparsers(dest="schemes_cmd", required=True)
    schsub.add_parser("list", help="registered schemes with descriptions")

    run = sub.add_parser("run", help="simulate one benchmark/scheme pair")
    run.add_argument("-b", "--bench", default="gcc")
    run.add_argument("-s", "--scheme", default="general-balance")
    run.add_argument(
        "-m",
        "--machine",
        default="clustered",
        help="machine name from the registry (see 'machines list')",
    )
    _add_override_arg(run)
    _add_run_args(run)

    compare = sub.add_parser("compare", help="every scheme on one benchmark")
    compare.add_argument("-b", "--bench", default="gcc")
    _add_run_args(compare)

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure (or 'all')"
    )
    figure.add_argument("name")
    _add_run_args(figure)

    campaign = sub.add_parser(
        "campaign",
        help="run a bench x scheme x seed grid in one pass "
        "(shared traces, optional worker processes)",
    )
    campaign.add_argument(
        "-b",
        "--benches",
        nargs="+",
        default=["gcc", "li"],
        help="benchmarks to include",
    )
    campaign.add_argument(
        "-s",
        "--schemes",
        nargs="+",
        default=None,
        help="steering schemes (default: every scheme except 'naive')",
    )
    campaign.add_argument(
        "--machine",
        "--machines",
        dest="machines",
        nargs="+",
        default=["clustered"],
        help="machine name(s) from the registry; several names add a "
        "grid axis (see 'machines list')",
    )
    _add_override_arg(campaign)
    campaign.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[0],
        help="workload seeds (multiple seeds enable mean/std aggregation)",
    )
    campaign.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial)",
    )
    _add_backend_arg(campaign)
    campaign.add_argument(
        "--json", default=None, help="write results to this JSON file"
    )
    campaign.add_argument(
        "--csv", default=None, help="write results to this CSV file"
    )
    campaign.add_argument(
        "-n",
        "--instructions",
        type=int,
        default=20000,
        help="measured window length (committed instructions)",
    )
    campaign.add_argument(
        "-w", "--warmup", type=int, default=5000, help="warm-up length"
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="reuse points already present in the --json/--csv store and "
        "simulate only missing ones",
    )

    scenarios_p = sub.add_parser(
        "scenarios",
        help="workload corpus: list families/suites, run a named suite",
    )
    ssub = scenarios_p.add_subparsers(dest="scenarios_cmd", required=True)
    ssub.add_parser("list", help="list workload families and suites")
    srun = ssub.add_parser(
        "run", help="run one named scenario suite as a campaign"
    )
    srun.add_argument("suite", help="suite name (see 'scenarios list')")
    srun.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = serial)",
    )
    _add_backend_arg(srun)
    srun.add_argument(
        "-n", "--instructions", type=int, default=None,
        help="override the suite's measured window length",
    )
    srun.add_argument(
        "-w", "--warmup", type=int, default=None,
        help="override the suite's warm-up length",
    )
    srun.add_argument(
        "--seeds", nargs="+", type=int, default=None,
        help="override the suite's workload seeds",
    )
    srun.add_argument(
        "--json", default=None, help="write results to this JSON store"
    )
    srun.add_argument(
        "--csv", default=None, help="write results to this CSV store"
    )
    srun.add_argument(
        "--resume",
        action="store_true",
        help="reuse points already present in the store",
    )

    suite_p = sub.add_parser(
        "suite", help="export/run scenario suites as JSON data files"
    )
    suitesub = suite_p.add_subparsers(dest="suite_cmd", required=True)
    sexport = suitesub.add_parser(
        "export", help="write a registered suite to a data file"
    )
    sexport.add_argument("suite", help="suite name (see 'scenarios list')")
    sexport.add_argument(
        "-o", "--output", default=None,
        help="output path (default <suite>.json)",
    )
    sfile = suitesub.add_parser(
        "run", help="run a suite data file as a campaign"
    )
    sfile.add_argument("file", help="suite data file (see 'suite export')")
    sfile.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (1 = serial)",
    )
    _add_backend_arg(sfile)
    sfile.add_argument(
        "-n", "--instructions", type=int, default=None,
        help="override the suite's measured window length",
    )
    sfile.add_argument(
        "-w", "--warmup", type=int, default=None,
        help="override the suite's warm-up length",
    )
    sfile.add_argument(
        "--seeds", nargs="+", type=int, default=None,
        help="override the suite's workload seeds",
    )
    sfile.add_argument(
        "--json", default=None, help="write results to this JSON store"
    )
    sfile.add_argument(
        "--csv", default=None, help="write results to this CSV store"
    )
    sfile.add_argument(
        "--resume",
        action="store_true",
        help="reuse points already present in the store",
    )

    trace_p = sub.add_parser(
        "trace", help="export/import portable .rtrace workload traces"
    )
    tsub = trace_p.add_subparsers(dest="trace_cmd", required=True)
    texport = tsub.add_parser(
        "export", help="freeze a workload's committed path to a file"
    )
    texport.add_argument("-b", "--bench", default="gcc")
    texport.add_argument(
        "-o", "--output", default=None,
        help="output path (default <bench>.rtrace)",
    )
    texport.add_argument(
        "-r", "--records", type=int, default=25000,
        help="committed records to export (a fetch-ahead cushion is added)",
    )
    texport.add_argument(
        "--seed", type=int, default=0, help="workload generation seed"
    )
    timport = tsub.add_parser(
        "import", help="load an .rtrace file into the workload corpus"
    )
    timport.add_argument("file")
    timport.add_argument(
        "--name", default=None,
        help="register under this name instead of the recorded one",
    )
    timport.add_argument(
        "--check",
        action="store_true",
        help="run a short simulation on the imported trace",
    )
    tinfo = tsub.add_parser("info", help="print an .rtrace file's metadata")
    tinfo.add_argument("file")
    tshow = tsub.add_parser(
        "show",
        help="render a distributed trace (by job id or trace-id prefix) "
        "from the telemetry log",
    )
    tshow.add_argument(
        "token", nargs="?", default=None,
        help="trace id (prefix) or a span attribute value such as a "
        "service job id; omit to list recorded traces",
    )
    tshow.add_argument(
        "--log", metavar="FILE", default=None,
        help="JSON-lines telemetry log (default: REPRO_LOG_FILE)",
    )
    tshow.add_argument(
        "--check", action="store_true",
        help="also verify the trace's span tree is complete "
        "(exit 1 on missing stages)",
    )

    dist_p = sub.add_parser(
        "dist",
        help="distributed execution: backends, job packaging, workers, "
        "merge",
    )
    dsub = dist_p.add_subparsers(dest="dist_cmd", required=True)
    dbackends = dsub.add_parser(
        "backends", help="list registered execution backends"
    )
    dbackends.add_argument(
        "--json", action="store_true",
        help="machine-readable name/description list",
    )
    dpackage = dsub.add_parser(
        "package",
        help="write a suite's points + traces into a job directory",
    )
    dpackage.add_argument(
        "suite", help="suite name (see 'scenarios list') or suite file"
    )
    dpackage.add_argument(
        "--job-dir", required=True, help="job directory to create"
    )
    dpackage.add_argument(
        "-n", "--instructions", type=int, default=None,
        help="override the suite's measured window length",
    )
    dpackage.add_argument(
        "-w", "--warmup", type=int, default=None,
        help="override the suite's warm-up length",
    )
    dpackage.add_argument(
        "--seeds", nargs="+", type=int, default=None,
        help="override the suite's workload seeds",
    )
    dworker = dsub.add_parser(
        "worker",
        help="run one worker: claim from a job directory, or serve the "
        "stdin/stdout JSON-lines protocol",
    )
    dworker.add_argument(
        "job_dir", nargs="?", default=None,
        help="job directory to claim points from",
    )
    dworker.add_argument(
        "--stdio", action="store_true",
        help="serve the JSON-lines worker protocol on stdin/stdout",
    )
    dworker.add_argument(
        "--listen", metavar="HOST:PORT", default=None,
        help="serve the JSON-lines worker protocol on a TCP socket "
        "(port 0 picks a free port; prints the bound address)",
    )
    dworker.add_argument(
        "--worker-id", default=None,
        help="worker id for claims and the partial store "
        "(default <hostname>-<pid>)",
    )
    dworker.add_argument(
        "--max-points", type=int, default=None,
        help="stop after completing this many points",
    )
    dmerge = dsub.add_parser(
        "merge", help="fold a job's partial stores into one result store"
    )
    dmerge.add_argument("job_dir", help="job directory to merge")
    dmerge.add_argument(
        "--json", default=None, help="write merged results to this JSON file"
    )
    dmerge.add_argument(
        "--csv", default=None, help="write merged results to this CSV file"
    )
    dmerge.add_argument(
        "--allow-partial", action="store_true",
        help="merge completed points even if some are failed/missing",
    )
    dpool = dsub.add_parser(
        "pool",
        help="warm worker pool: spawn/inspect this process's shared pool",
    )
    dpoolsub = dpool.add_subparsers(dest="pool_cmd", required=True)
    dpoolstatus = dpoolsub.add_parser(
        "status",
        help="ensure the pool is up and print its serving counters",
    )
    dpoolstatus.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes to ensure are live",
    )
    dpoolstatus.add_argument(
        "--worker", action="append", metavar="HOST:PORT", default=None,
        help="adopt a remote listen-mode worker at this address "
        "(repeatable)",
    )
    dpoolstatus.add_argument(
        "--json", default=None,
        help="also write the counters to this JSON file",
    )
    dserve = dsub.add_parser(
        "serve",
        help="simulation service: run the dispatcher daemon, or query/"
        "stop a running one",
    )
    dserve.add_argument(
        "action", nargs="?", choices=("run", "status", "stop"),
        default="run",
        help="run the daemon (default), or talk to a running one",
    )
    dserve.add_argument(
        "--address", metavar="HOST:PORT", default=None,
        help="daemon address (run default 127.0.0.1:7731; status/stop "
        "fall back to REPRO_SERVICE_ADDRESS)",
    )
    dserve.add_argument(
        "-j", "--jobs", type=int, default=0,
        help="local worker subprocesses to spawn (default 0)",
    )
    dserve.add_argument(
        "--worker", action="append", metavar="HOST:PORT", default=None,
        help="adopt a remote listen-mode worker at this address "
        "(repeatable)",
    )
    dserve.add_argument(
        "--watch", metavar="DIR", default=None,
        help="also adopt dirqueue job directories appearing under DIR",
    )
    dserve.add_argument(
        "--weight", action="append", metavar="TENANT=N", default=None,
        help="fair-share weight for a tenant (repeatable; default 1)",
    )
    dserve.add_argument(
        "--dist-timeout", metavar="SECONDS", default=None,
        help="per-request worker reply timeout "
        "(default REPRO_DIST_TIMEOUT or none)",
    )
    dserve.add_argument(
        "--dist-retries", metavar="N", default=None,
        help="extra attempts per chunk after a worker failure "
        "(default REPRO_DIST_RETRIES or 1)",
    )
    dserve.add_argument(
        "--json", default=None,
        help="status: also write the stats to this JSON file",
    )
    dserve.add_argument(
        "--stop-workers", action="store_true",
        help="stop: also shut down the daemon's remote workers",
    )
    dstatus = dsub.add_parser(
        "status", help="summarise a job directory's progress"
    )
    dstatus.add_argument("job_dir", help="job directory to inspect")
    dstatus.add_argument(
        "--requeue-lost", action="store_true",
        help="move claimed-but-unfinished points back into the queue "
        "(only when their workers are dead)",
    )

    telemetry_p = sub.add_parser(
        "telemetry",
        help="observability: logging configuration and the metrics "
        "registry",
    )
    telsub = telemetry_p.add_subparsers(dest="telemetry_cmd", required=True)
    teldump = telsub.add_parser(
        "dump", help="print the logging config + metrics snapshot"
    )
    teldump.add_argument(
        "--json", default=None,
        help="write the dump to this JSON file instead",
    )

    from .perf.cli import add_perf_parser

    add_perf_parser(sub)

    sweep_p = sub.add_parser(
        "sweep", help="sweep one machine parameter (ablation study)"
    )
    sweep_p.add_argument(
        "param",
        help="flat name or dotted path, e.g. bypass_ports, "
        "clusters.0.iq_size, l1d.size_kb",
    )
    sweep_p.add_argument(
        "values", nargs="+", type=int, help="points to evaluate"
    )
    sweep_p.add_argument("-b", "--bench", default="gcc")
    sweep_p.add_argument("-s", "--scheme", default="general-balance")
    sweep_p.add_argument(
        "-m", "--machine", default="clustered",
        help="machine name the sweep varies (see 'machines list')",
    )
    _add_run_args(sweep_p)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    from . import telemetry

    telemetry.configure(verbose=args.verbose)
    handlers = {
        "list": _cmd_list,
        "machines": _cmd_machines,
        "schemes": _cmd_schemes,
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "campaign": _cmd_campaign,
        "scenarios": _cmd_scenarios,
        "suite": _cmd_suite,
        "trace": _cmd_trace,
        "dist": _cmd_dist,
        "telemetry": _cmd_telemetry,
        "perf": _cmd_perf,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
