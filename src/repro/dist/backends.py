"""Execution-backend interface and registry, plus the in-process backends.

An :class:`ExecutionBackend` takes an ordered list of
:class:`~repro.analysis.campaign.CampaignPoint` objects and returns one
``(index, result, error)`` triple per point — exactly the payload the
campaign engine folds into :class:`~repro.analysis.campaign.CampaignResults`.
Backends register under a name (mirroring the steering-scheme and machine
registries) and resolve through :func:`backend`::

    from repro.dist import backend
    payload = backend("process").execute(points, jobs=4)

Two contracts every backend honours:

* **determinism** — results are point-for-point identical to the
  ``serial`` backend; distribution is an optimisation, never a semantic;
* **trace grouping** — points are dispatched in their
  ``(bench, seed)`` shared-trace groups
  (:func:`~repro.analysis.campaign.grouped_points`), so each workload
  trace is generated at most once per executing process.

The ``serial`` and ``process`` backends live here; the subprocess
``worker`` backend (JSON-lines protocol) and the shared-filesystem
``dirqueue`` backend are registered lazily from their own modules.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..pipeline import SimResult

#: What every backend returns: one entry per input point, in any order.
#: ``error`` is a traceback/description string for failed points.  An
#: entry may carry an optional fourth element — a per-point timing dict
#: (``elapsed_seconds`` / ``resolve_seconds`` / ``simulate_seconds``) —
#: which the campaign engine reads when present; three-element entries
#: stay valid, so old backends interoperate unchanged.
Payload = List[Tuple[int, Optional[SimResult], Optional[str]]]


def coerce_jobs(value, source: str = "jobs") -> int:
    """Validate a worker count from any origin (CLI, env var, API).

    Accepts integers and integer-valued strings; anything non-integer or
    non-positive raises :class:`~repro.errors.ConfigError` naming
    *source*, so a bad ``REPRO_BENCH_JOBS=lots`` fails with a clear
    message instead of a traceback from inside an executor.
    """
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ConfigError(
            f"{source} must be a positive integer, got {value!r}"
        )
    try:
        jobs = int(value)
    except ValueError:
        raise ConfigError(
            f"{source} must be a positive integer, got {value!r}"
        ) from None
    if jobs < 1:
        raise ConfigError(
            f"{source} must be a positive integer, got {jobs}"
        )
    return jobs


def jobs_from_env(name: str, default: int = 1) -> int:
    """Worker count from the environment variable *name* (validated)."""
    import os

    text = os.environ.get(name)
    if text is None or text.strip() == "":
        return default
    return coerce_jobs(text.strip(), source=f"environment variable {name}")


def coerce_timeout(value, source: str = "timeout") -> Optional[float]:
    """Validate a reply-timeout value from any origin (CLI, env, API).

    ``None`` (and the strings ``"none"`` / ``"inf"``, so the CLI and
    environment can express it) means *wait forever*.  Anything else
    must parse as a positive number of seconds; violations raise
    :class:`~repro.errors.ConfigError` naming *source*, mirroring
    :func:`coerce_jobs`.
    """
    if value is None:
        return None
    if isinstance(value, str):
        text = value.strip().lower()
        if text in ("", "none", "inf", "infinity"):
            return None
        value = text
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ConfigError(
            f"{source} must be a positive number of seconds or none, "
            f"got {value!r}"
        )
    try:
        timeout = float(value)
    except ValueError:
        raise ConfigError(
            f"{source} must be a positive number of seconds or none, "
            f"got {value!r}"
        ) from None
    if not timeout > 0:
        raise ConfigError(
            f"{source} must be a positive number of seconds or none, "
            f"got {timeout:g}"
        )
    return timeout


def coerce_retries(value, source: str = "retries") -> int:
    """Validate a retry count (additional attempts; zero is allowed)."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise ConfigError(
            f"{source} must be a non-negative integer, got {value!r}"
        )
    try:
        retries = int(value)
    except ValueError:
        raise ConfigError(
            f"{source} must be a non-negative integer, got {value!r}"
        ) from None
    if retries < 0:
        raise ConfigError(
            f"{source} must be a non-negative integer, got {retries}"
        )
    return retries


def timeout_from_env(
    name: str = "REPRO_DIST_TIMEOUT", default: Optional[float] = None
) -> Optional[float]:
    """Reply timeout from the environment variable *name* (validated)."""
    import os

    text = os.environ.get(name)
    if text is None or text.strip() == "":
        return default
    return coerce_timeout(
        text.strip(), source=f"environment variable {name}"
    )


def retries_from_env(
    name: str = "REPRO_DIST_RETRIES", default: int = 1
) -> int:
    """Retry count from the environment variable *name* (validated)."""
    import os

    text = os.environ.get(name)
    if text is None or text.strip() == "":
        return default
    return coerce_retries(
        text.strip(), source=f"environment variable {name}"
    )


class ExecutionBackend:
    """One way of executing a campaign's points.

    Subclasses implement :meth:`execute`; ``name`` / ``description``
    feed the registry listing (``repro-sim dist backends``).
    """

    #: Registry name (set on registration for instances built there).
    name: str = "?"
    description: str = ""
    #: True when the backend can split one shared-trace group across
    #: several executors (e.g. after shipping the trace to each), so the
    #: engine may size parallelism by points rather than by groups.
    splits_groups: bool = False

    def execute(
        self, points: Sequence, jobs: int = 1
    ) -> Payload:
        """Run every point; never raises for individual point failures.

        Returns one ``(index, result, error)`` triple per point.  Point
        failures are reported as error strings; only infrastructure
        problems the backend cannot work around (e.g. an unreachable
        job directory) raise :class:`~repro.errors.DistError`.
        """
        raise NotImplementedError


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: Dict[str, Callable[..., ExecutionBackend]] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_backend(
    name: str, factory: Callable[..., ExecutionBackend], description: str
) -> None:
    """Register *factory* under *name* (rejecting duplicates)."""
    if name in _BACKENDS:
        raise ConfigError(
            f"execution backend {name!r} is already registered"
        )
    _BACKENDS[name] = factory
    _DESCRIPTIONS[name] = description


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def backend_description(name: str) -> str:
    """One-line description of the backend *name*."""
    if name not in _DESCRIPTIONS:
        backend(name)  # raises with the available list
    return _DESCRIPTIONS[name]


def backend(name: str, **options) -> ExecutionBackend:
    """Build the execution backend registered under *name*.

    Keyword *options* are backend-specific (``timeout=``/``retries=``
    for ``worker``, ``job_dir=``/``keep=`` for ``dirqueue``); unknown
    options raise ``TypeError`` from the backend constructor.
    """
    if not isinstance(name, str):
        raise ConfigError(
            f"backend must be a name or ExecutionBackend, got {name!r}"
        )
    try:
        factory = _BACKENDS[name]
    except KeyError:
        known = ", ".join(available_backends())
        raise ConfigError(
            f"unknown execution backend {name!r}; available: {known}"
        ) from None
    instance = factory(**options)
    instance.name = name
    return instance


# ----------------------------------------------------------------------
# In-process backends
# ----------------------------------------------------------------------
class SerialBackend(ExecutionBackend):
    """Run every shared-trace group in this process, one after another."""

    name = "serial"
    description = "in-process, one point at a time (the reference)"

    def execute(self, points, jobs: int = 1) -> Payload:
        from ..analysis.campaign import _run_group, grouped_points

        out: Payload = []
        for group in grouped_points(points):
            out.extend(_run_group(group))
        return out


class ProcessBackend(ExecutionBackend):
    """Fan shared-trace groups over a :class:`ProcessPoolExecutor`.

    Pool-level failures (fork unavailable, broken pool...) degrade to
    serial execution rather than failing the campaign: the engine's
    contract is that parallelism is an optimisation, never a
    requirement.
    """

    name = "process"
    description = "ProcessPoolExecutor over shared-trace groups"

    def execute(self, points, jobs: int = 1) -> Payload:
        from ..analysis.campaign import _run_group, grouped_points
        from concurrent.futures import ProcessPoolExecutor

        jobs = coerce_jobs(jobs)
        groups = grouped_points(points)
        if jobs == 1 or len(groups) <= 1:
            return SerialBackend().execute(points)
        max_workers = min(jobs, len(groups))
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                payloads = list(pool.map(_run_group, groups))
        except Exception as error:  # noqa: BLE001 — pool infrastructure
            # (_run_group never raises: per-point errors come back as
            # strings, so anything caught here is pool machinery.)
            from ..telemetry import get_logger, metrics

            print(
                f"campaign: worker pool failed ({type(error).__name__}: "
                f"{error}); falling back to serial execution",
                file=sys.stderr,
            )
            metrics.counter("process.serial_fallbacks_total").inc()
            get_logger("dist.backends").warning(
                "process.serial-fallback",
                error=f"{type(error).__name__}: {error}",
                groups=len(groups),
            )
            payloads = [_run_group(group) for group in groups]
        return [triple for payload in payloads for triple in payload]


def _register_builtin_backends() -> None:
    register_backend("serial", SerialBackend, SerialBackend.description)
    register_backend("process", ProcessBackend, ProcessBackend.description)

    def _worker_factory(**options):
        from .worker import WorkerBackend

        return WorkerBackend(**options)

    def _dirqueue_factory(**options):
        from .dirqueue import DirectoryQueueBackend

        return DirectoryQueueBackend(**options)

    def _service_factory(**options):
        from .serve import ServiceBackend

        return ServiceBackend(**options)

    register_backend(
        "worker",
        _worker_factory,
        "warm pool of repro-sim subprocesses speaking the JSON-lines "
        "worker protocol v2 (trace preload, batched dispatch, "
        "retry/timeout)",
    )
    register_backend(
        "dirqueue",
        _dirqueue_factory,
        "shared-filesystem job directory: package, N claiming workers, "
        "deterministic merge",
    )
    register_backend(
        "service",
        _service_factory,
        "submit to a repro-sim dist serve daemon over TCP "
        "(shared worker fleet, fair multi-tenant admission)",
    )


_register_builtin_backends()
