"""Distributed execution backends for campaigns.

The campaign engine asks this package *how* to execute a grid: every
point of every campaign routes through a registered
:class:`ExecutionBackend`.  Four backends ship built in:

``serial``
    In-process reference execution.  Every other backend is required to
    be point-for-point identical to it.
``process``
    The classic ``ProcessPoolExecutor`` fan-out over shared-trace
    groups (what ``workers>1`` has always meant).
``worker``
    A **warm pool** of persistent ``repro-sim dist worker --stdio``
    subprocesses speaking a JSON-lines request/response protocol (v2:
    ``preload`` ships each shared-trace group's ``.rtrace`` bytes once,
    ``batch-run`` dispatches a whole chunk per round trip, ``stats``
    exposes serving counters).  The pool outlives individual
    ``execute()`` calls — campaign resumes and repeated runs reuse live
    workers and their pinned traces — and preloading frees points from
    group affinity, so oversized groups split across idle workers.
    Point-level retry/timeout fault tolerance as before.  The protocol
    is the unit a future multi-host dispatcher reuses.
``dirqueue``
    Shared-filesystem job directories: a packager writes
    ``manifest.json`` plus one ``.rtrace`` per (bench, seed), any number
    of workers (any hosts) claim points via atomic rename and write
    partial stores, and a merger folds them back deterministically.
    ``repro-sim dist package|worker|merge|status`` drive the same
    machinery across real hosts.
``service``
    Simulation as a service: submissions route to a long-running
    ``repro-sim dist serve`` daemon over TCP.  The daemon owns one
    shared :class:`WorkerPool` (local and/or remote listen-mode
    workers) and admits jobs from many concurrent clients with
    per-tenant weighted-round-robin fair share; a client disconnect
    re-queues nothing (the daemon finishes the job and holds the
    results for re-attach by job id).

The ``worker`` protocol is transport-agnostic since protocol v2 grew
:mod:`repro.dist.transport`: the same JSON-lines stream runs over a
subprocess pipe (``--stdio``) or a TCP socket (``--listen HOST:PORT``),
so a ``WorkerPool`` can adopt remote workers by address.

Quickstart::

    from repro.analysis.campaign import expand_grid, run_campaign

    points = expand_grid(["gcc", "li"], ["modulo", "general-balance"])
    run = run_campaign(points, workers=2, backend="worker")

    # Multi-host, by hand:
    from repro import dist
    dist.package_job(points, "/shared/job-1")
    # ... on each host:   repro-sim dist worker /shared/job-1
    merged = dist.merge_job("/shared/job-1", store="results.json")

    # As a service (daemon started with `repro-sim dist serve`):
    run = run_campaign(
        points, workers=2,
        backend=dist.backend("service", address="127.0.0.1:7731"),
    )
"""

from .backends import (
    ExecutionBackend,
    Payload,
    ProcessBackend,
    SerialBackend,
    available_backends,
    backend,
    backend_description,
    coerce_jobs,
    jobs_from_env,
    register_backend,
)
from .dirqueue import (
    DirectoryQueueBackend,
    JobStatus,
    MergedJob,
    PackagedJob,
    claim_point,
    default_worker_id,
    job_status,
    load_manifest_points,
    merge_job,
    package_job,
    requeue_lost,
    run_worker,
    trace_filename,
)
from .transport import (
    LineChannel,
    PeerClosed,
    PeerTimeout,
    SocketTransport,
    StdioTransport,
    Transport,
    TransportError,
    format_address,
    parse_address,
)
from .worker import (
    PROTOCOL_VERSION,
    WorkerBackend,
    WorkerPool,
    handle_request,
    serve_listen,
    serve_stdio,
    shared_pool,
    shutdown_shared_pools,
    stdio_worker_command,
    worker_environment,
)
from .serve import (
    SERVICE_PROTOCOL_VERSION,
    FairScheduler,
    ServeDaemon,
    ServiceBackend,
    ServiceClient,
    service_address_from_env,
    service_tenant_from_env,
)

__all__ = [
    "ExecutionBackend",
    "Payload",
    "ProcessBackend",
    "SerialBackend",
    "available_backends",
    "backend",
    "backend_description",
    "coerce_jobs",
    "jobs_from_env",
    "register_backend",
    "DirectoryQueueBackend",
    "JobStatus",
    "MergedJob",
    "PackagedJob",
    "claim_point",
    "default_worker_id",
    "job_status",
    "load_manifest_points",
    "merge_job",
    "package_job",
    "requeue_lost",
    "run_worker",
    "trace_filename",
    "LineChannel",
    "PeerClosed",
    "PeerTimeout",
    "SocketTransport",
    "StdioTransport",
    "Transport",
    "TransportError",
    "format_address",
    "parse_address",
    "PROTOCOL_VERSION",
    "WorkerBackend",
    "WorkerPool",
    "handle_request",
    "serve_listen",
    "serve_stdio",
    "shared_pool",
    "shutdown_shared_pools",
    "stdio_worker_command",
    "worker_environment",
    "SERVICE_PROTOCOL_VERSION",
    "FairScheduler",
    "ServeDaemon",
    "ServiceBackend",
    "ServiceClient",
    "service_address_from_env",
    "service_tenant_from_env",
]
