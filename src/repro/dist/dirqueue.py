"""The ``dirqueue`` backend: shared-filesystem job directories.

This is the multi-host execution path: a *packager* turns a campaign
grid into a self-contained **job directory** on a shared filesystem, any
number of *workers* (on any hosts that see the directory) claim and
simulate points, and a *merger* folds the partial results back into one
deterministic store.  No coordinator process exists — the filesystem is
the queue, and atomic ``rename`` is the only synchronisation primitive.

Job directory layout::

    job/
      manifest.json          point list (RunSpec dicts, in grid order)
      traces/<bench>-s<seed>.rtrace   one exported trace per trace group
      queue/point-00042.json          claim tokens for pending points
      claimed/point-00042.<worker>.json   in-flight points
      results/<worker>.json           one partial store per worker
      failed/point-00042.json         per-point failure records

Workers need *only* this module and the traces — the packaged
``.rtrace`` files carry the exact committed paths, so a worker host
needs neither the workload generator nor its RNG, and its results are
byte-identical to a serial run of the same grid (the PR 2 replay
guarantee).  Claiming renames ``queue/point-N.json`` into ``claimed/``;
rename is atomic on POSIX, so when two workers race for one point
exactly one wins and the loser moves on.  Completed points are appended
to the worker's partial store (rewritten atomically) and their claim
token is removed; a worker that dies mid-point leaves its token in
``claimed/`` where :func:`requeue_lost` can put it back.

The merger applies ``resume=True`` semantics: partial-store lookup is by
full point equality against the manifest, duplicates (a requeued point
finished twice) deduplicate to the deterministic single result, and an
existing output store's extra points are preserved exactly like
:func:`~repro.analysis.campaign.run_campaign` preserves them.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DistError
from ..telemetry import get_logger, metrics, tracing
from .backends import ExecutionBackend, Payload, coerce_jobs

#: Manifest format tag / version for job directories.  A packager with
#: an active span stores its trace context under an optional ``trace``
#: manifest key (ignored by old readers), so worker-side spans on other
#: hosts join the packaging campaign's trace.
JOB_FORMAT = "repro-dist-job"
JOB_VERSION = 1

_log = get_logger("dist.dirqueue")

_QUEUE = "queue"
_CLAIMED = "claimed"
_RESULTS = "results"
_FAILED = "failed"
_TRACES = "traces"


def _token_name(index: int) -> str:
    return f"point-{index:05d}.json"


def _write_json(path: str, document: dict) -> None:
    """Write *document* atomically (tmp + rename) for crash safety."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
    os.replace(tmp, path)


def _read_json(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def trace_filename(bench: str, seed: int) -> str:
    """Canonical per-(bench, seed) trace file name inside a job."""
    return f"{bench}-s{seed}.rtrace"


# ----------------------------------------------------------------------
# Packager
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PackagedJob:
    """Summary of one packaged job directory."""

    job_dir: str
    n_points: int
    n_traces: int

    def describe(self) -> str:
        return (
            f"{self.job_dir}: {self.n_points} point(s), "
            f"{self.n_traces} trace(s)"
        )


def package_job(
    points: Sequence, job_dir: str, description: str = ""
) -> PackagedJob:
    """Write *points* (plus their traces) into *job_dir*.

    Each distinct ``(bench, seed)`` pair is exported once as an
    ``.rtrace`` holding the longest window any of its points needs (plus
    the standard fetch-ahead cushion), so the directory is a complete
    shipping unit: a worker host replays the traces instead of
    regenerating workloads.
    """
    from ..scenarios.rtrace import export_trace
    from ..workloads import workload

    if not points:
        raise DistError("cannot package an empty point list")
    manifest_path = os.path.join(job_dir, "manifest.json")
    if os.path.exists(manifest_path):
        raise DistError(
            f"{job_dir!r} already holds a packaged job; "
            f"merge or remove it first"
        )
    for sub in (_QUEUE, _CLAIMED, _RESULTS, _FAILED, _TRACES):
        os.makedirs(os.path.join(job_dir, sub), exist_ok=True)
    # Longest window per trace group decides how much trace to export.
    needed: Dict[Tuple[str, int], int] = {}
    for point in points:
        key = point.trace_key
        needed[key] = max(
            needed.get(key, 0), point.warmup + point.n_instructions
        )
    traces: Dict[str, Dict[str, object]] = {}
    for (bench, seed), records in sorted(needed.items()):
        fname = trace_filename(bench, seed)
        meta = export_trace(
            workload(bench, seed=seed),
            os.path.join(job_dir, _TRACES, fname),
            records,
        )
        traces[fname] = {
            "bench": bench,
            "seed": seed,
            "records": meta.n_records,
        }
    for index, point in enumerate(points):
        _write_json(
            os.path.join(job_dir, _QUEUE, _token_name(index)),
            {
                "index": index,
                "spec": point.spec().to_dict(),
                "trace": trace_filename(*point.trace_key),
            },
        )
    # Manifest last: its presence marks the job directory as complete.
    manifest = {
        "format": JOB_FORMAT,
        "version": JOB_VERSION,
        "description": description,
        "points": [point.spec().to_dict() for point in points],
        "traces": traces,
    }
    trace_ctx = tracing.current_context()
    if trace_ctx is not None:
        manifest["trace"] = trace_ctx
    _write_json(manifest_path, manifest)
    metrics.counter("dirqueue.jobs_packaged_total").inc()
    _log.info(
        "dirqueue.package", dir=job_dir, points=len(points),
        traces=len(traces),
        trace_id=trace_ctx.get("trace_id") if trace_ctx else None,
    )
    return PackagedJob(
        job_dir=job_dir, n_points=len(points), n_traces=len(traces)
    )


def load_manifest_points(job_dir: str) -> List:
    """The job's points, in grid order, from its manifest."""
    from ..spec.specs import RunSpec

    path = os.path.join(job_dir, "manifest.json")
    if not os.path.isfile(path):
        raise DistError(
            f"{job_dir!r} is not a job directory (no manifest.json)"
        )
    manifest = _read_json(path)
    if manifest.get("format") != JOB_FORMAT:
        raise DistError(
            f"{path}: unrecognised manifest format "
            f"{manifest.get('format')!r}"
        )
    if int(manifest.get("version", 0)) > JOB_VERSION:
        raise DistError(
            f"{path}: job version {manifest.get('version')} is newer "
            f"than this reader (v{JOB_VERSION})"
        )
    return [
        RunSpec.from_dict(spec).to_point() for spec in manifest["points"]
    ]


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
def default_worker_id() -> str:
    """A worker id unique across hosts sharing one job directory."""
    return f"{socket.gethostname()}-{os.getpid()}"


def claim_point(
    job_dir: str,
    worker_id: str,
    backlog: Optional[List[str]] = None,
) -> Optional[dict]:
    """Claim the next pending point via atomic rename, or ``None``.

    Exactly one of any number of racing workers wins each token; losers
    see the source file vanish and try the next one.  Callers claiming
    in a loop should pass a *backlog* list (kept across calls): tokens
    are consumed from it and the queue directory is only re-listed when
    it runs dry, so claiming P points costs O(P) directory listings
    instead of O(P^2) — it is the shared (often networked) filesystem
    paying for each listing.
    """
    queue_dir = os.path.join(job_dir, _QUEUE)
    own = backlog if backlog is not None else []
    refreshed = False
    while True:
        while own:
            token = own.pop(0)
            if not token.endswith(".json"):
                continue
            stem = token[: -len(".json")]
            claimed = os.path.join(
                job_dir, _CLAIMED, f"{stem}.{worker_id}.json"
            )
            try:
                os.rename(os.path.join(queue_dir, token), claimed)
            except FileNotFoundError:
                continue  # another worker won the race
            entry = _read_json(claimed)
            entry["_claim_path"] = claimed
            return entry
        if refreshed:
            return None
        try:
            own.extend(sorted(os.listdir(queue_dir)))
        except FileNotFoundError:
            raise DistError(
                f"{job_dir!r} is not a job directory (no {_QUEUE}/)"
            ) from None
        refreshed = True


def _execute_entry(entry: dict, job_dir: str, trace_cache: Dict[str, object]):
    """Simulate one claimed point from its packaged trace."""
    from ..scenarios.rtrace import import_trace
    from ..spec.facade import execute_resolved
    from ..spec.specs import RunSpec

    spec = RunSpec.from_dict(entry["spec"])
    trace_path = os.path.join(job_dir, _TRACES, entry["trace"])
    wl = trace_cache.get(trace_path)
    if wl is None:
        wl = import_trace(trace_path)
        trace_cache[trace_path] = wl
    if wl.name != spec.bench or wl.seed != spec.seed:
        raise DistError(
            f"{trace_path} records {wl.name!r} seed {wl.seed}, but the "
            f"claimed point needs {spec.bench!r} seed {spec.seed}"
        )
    return execute_resolved(
        wl,
        spec.scheme,
        spec.machine.resolve(),
        spec.n_instructions,
        spec.warmup,
        spec.seed,
    )


def run_worker(
    job_dir: str,
    worker_id: Optional[str] = None,
    max_points: Optional[int] = None,
) -> int:
    """Claim and simulate points until the queue is empty.

    Results accumulate in this worker's partial store
    (``results/<worker_id>.json``), rewritten atomically after every
    point so a crash never corrupts completed work.  Point failures are
    recorded under ``failed/`` and do not stop the worker.  Returns the
    number of points completed successfully.
    """
    from ..analysis.campaign import CampaignResults, CampaignRun

    load_manifest_points(job_dir)  # validates the directory
    worker_id = worker_id or default_worker_id()
    manifest_ctx = _read_json(
        os.path.join(job_dir, "manifest.json")
    ).get("trace")
    # One span for this worker's whole draining pass, parented on the
    # packager's trace context (when the manifest carries one) so a
    # multi-host job still assembles into a single trace tree.
    span = tracing.start_span(
        "dirqueue.worker", parent=manifest_ctx, worker=worker_id,
        dir=job_dir,
    )
    store = os.path.join(job_dir, _RESULTS, f"{worker_id}.json")
    trace_cache: Dict[str, object] = {}
    backlog: List[str] = []
    runs: List[CampaignRun] = []
    if os.path.exists(store):
        # A restarted worker reusing its id must append to — not
        # clobber — the partial store of points it already completed:
        # their queue tokens are gone, so an overwritten store would
        # lose those results for good.
        runs = list(CampaignResults.load_json(store))
    completed = 0
    failed = 0
    while max_points is None or completed < max_points:
        entry = claim_point(job_dir, worker_id, backlog)
        if entry is None:
            break
        claim_path = entry.pop("_claim_path")
        _log.debug(
            "dirqueue.claim", worker=worker_id, index=entry["index"],
            trace_id=span.trace_id,
        )
        try:
            result = _execute_entry(entry, job_dir, trace_cache)
        except Exception:  # noqa: BLE001 — recorded, queue keeps moving
            _write_json(
                os.path.join(
                    job_dir, _FAILED, _token_name(int(entry["index"]))
                ),
                {
                    "index": entry["index"],
                    "spec": entry["spec"],
                    "worker": worker_id,
                    "error": traceback.format_exc(),
                },
            )
            _drop_claim(claim_path)
            failed += 1
            metrics.counter("dirqueue.points_failed_total").inc()
            _log.warning(
                "dirqueue.point-failed", worker=worker_id,
                index=entry["index"], trace_id=span.trace_id,
            )
            continue
        from ..spec.specs import RunSpec

        point = RunSpec.from_dict(entry["spec"]).to_point()
        runs.append(CampaignRun(point=point, result=result))
        tmp = store + ".tmp"
        CampaignResults(runs).save_json(tmp)
        os.replace(tmp, store)
        _drop_claim(claim_path)
        completed += 1
        metrics.counter("dirqueue.points_completed_total").inc()
    span.annotate(completed=completed, failed=failed)
    span.end(status="error" if failed else "ok")
    _log.info(
        "dirqueue.worker-done", worker=worker_id, completed=completed,
        failed=failed, trace_id=span.trace_id,
    )
    return completed


def _drop_claim(claim_path: str) -> None:
    """Remove a claim token, tolerating a concurrent requeue.

    An operator running ``--requeue-lost`` against a worker that turned
    out to be alive moves the token away mid-simulation; that must cost
    duplicated (and deduplicated-at-merge) work, never crash the live
    worker.
    """
    try:
        os.remove(claim_path)
    except FileNotFoundError:
        pass


def requeue_lost(job_dir: str) -> int:
    """Move claimed-but-unfinished points back into the queue.

    Only safe when the claiming workers are known to be dead — a live
    worker whose point is requeued would race a second executor (the
    merge still deduplicates, but the work is wasted).  Returns the
    number of tokens requeued.
    """
    claimed_dir = os.path.join(job_dir, _CLAIMED)
    moved = 0
    for token in sorted(os.listdir(claimed_dir)):
        try:
            entry = _read_json(os.path.join(claimed_dir, token))
            os.replace(
                os.path.join(claimed_dir, token),
                os.path.join(
                    job_dir, _QUEUE, _token_name(int(entry["index"]))
                ),
            )
        except FileNotFoundError:
            continue  # its worker was alive after all and finished it
        moved += 1
    return moved


# ----------------------------------------------------------------------
# Merger / status
# ----------------------------------------------------------------------
@dataclass
class MergedJob:
    """Outcome of folding a job directory's partial stores together."""

    points: List
    runs: Dict[int, object]
    failures: Dict[int, str]
    workers: Tuple[str, ...] = ()
    store: Optional[str] = None
    _results: object = field(default=None, repr=False)

    @property
    def missing(self) -> List[int]:
        """Indexes with neither a result nor a failure record."""
        return [
            i
            for i in range(len(self.points))
            if i not in self.runs and i not in self.failures
        ]

    @property
    def complete(self) -> bool:
        return len(self.runs) == len(self.points)

    def results(self):
        """The merged result set (requires a complete job)."""
        from ..analysis.campaign import CampaignResults

        if not self.complete:
            raise DistError(
                f"job is incomplete: {len(self.failures)} failed, "
                f"{len(self.missing)} never completed"
            )
        return CampaignResults(
            [self.runs[i] for i in range(len(self.points))]
        )

    def describe(self) -> str:
        return (
            f"{len(self.runs)}/{len(self.points)} point(s) merged from "
            f"{len(self.workers)} worker store(s), "
            f"{len(self.failures)} failed, {len(self.missing)} missing"
        )


def merge_job(
    job_dir: str,
    store: Optional[str] = None,
    allow_partial: bool = False,
) -> MergedJob:
    """Fold a job's partial stores into one result set (and *store*).

    Lookup is by full point equality against the manifest — the same
    rule ``resume=True`` uses — so duplicated work deduplicates and a
    stale partial store from a different grid is ignored rather than
    merged.  With *store*, completed points are written there in grid
    order; points already in the store from earlier runs are preserved.
    An incomplete job raises :class:`~repro.errors.DistError` unless
    *allow_partial* is set.
    """
    from ..analysis.campaign import CampaignResults

    points = load_manifest_points(job_dir)
    index_of: Dict[object, List[int]] = {}
    for index, point in enumerate(points):
        index_of.setdefault(point, []).append(index)
    runs: Dict[int, object] = {}
    workers: List[str] = []
    results_dir = os.path.join(job_dir, _RESULTS)
    for name in sorted(os.listdir(results_dir)):
        if not name.endswith(".json"):  # skips in-flight .json.tmp too
            continue
        workers.append(name[: -len(".json")])
        for run in CampaignResults.load_json(
            os.path.join(results_dir, name)
        ):
            for index in index_of.get(run.point, ()):
                runs.setdefault(index, run)
    failures: Dict[int, str] = {}
    failed_dir = os.path.join(job_dir, _FAILED)
    for name in sorted(os.listdir(failed_dir)):
        record = _read_json(os.path.join(failed_dir, name))
        index = int(record["index"])
        if index not in runs:  # a retry may have succeeded since
            failures[index] = str(record["error"])
    merged = MergedJob(
        points=points,
        runs=runs,
        failures=failures,
        workers=tuple(workers),
        store=store,
    )
    _log.info(
        "dirqueue.merge", dir=job_dir, completed=len(runs),
        failed=len(failures), missing=len(merged.missing),
        workers=len(workers),
    )
    if not merged.complete and not allow_partial:
        raise DistError(
            f"cannot merge incomplete job {job_dir!r}: "
            + merged.describe()
        )
    if store is not None:
        _write_store(merged, store)
    return merged


def _write_store(merged: MergedJob, store: str) -> None:
    """Write completed points (grid order) to *store*, accumulating."""
    from ..analysis.campaign import CampaignResults, _store_format

    _store_format(store)  # validate the extension before any work
    ordered = [
        merged.runs[i] for i in range(len(merged.points)) if i in merged.runs
    ]
    extra = []
    if os.path.exists(store):
        merged_points = {run.point for run in ordered}
        extra = [
            run
            for run in CampaignResults.load(store)
            if run.point not in merged_points
        ]
    CampaignResults([*ordered, *extra]).save(store)


@dataclass(frozen=True)
class JobStatus:
    """Counts of one job directory's point states."""

    total: int
    pending: int
    in_flight: int
    completed: int
    failed: int
    workers: Tuple[str, ...]

    def describe(self) -> str:
        return (
            f"{self.completed}/{self.total} completed "
            f"({self.pending} pending, {self.in_flight} in flight, "
            f"{self.failed} failed) across "
            f"{len(self.workers)} worker store(s)"
        )


def job_status(job_dir: str) -> JobStatus:
    """Summarise a job directory without touching its queue."""
    points = load_manifest_points(job_dir)
    partial = merge_job(job_dir, allow_partial=True)
    pending = len(
        [
            name
            for name in os.listdir(os.path.join(job_dir, _QUEUE))
            if name.endswith(".json")
        ]
    )
    in_flight = len(os.listdir(os.path.join(job_dir, _CLAIMED)))
    return JobStatus(
        total=len(points),
        pending=pending,
        in_flight=in_flight,
        completed=len(partial.runs),
        failed=len(partial.failures),
        workers=partial.workers,
    )


# ----------------------------------------------------------------------
# The backend: package -> local worker subprocesses -> merge
# ----------------------------------------------------------------------
def dirqueue_worker_command(job_dir: str, worker_id: str) -> List[str]:
    """Argv for one local job-directory worker subprocess."""
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "dist",
        "worker",
        job_dir,
        "--worker-id",
        worker_id,
    ]


class DirectoryQueueBackend(ExecutionBackend):
    """Run a campaign through a (possibly temporary) job directory.

    This is the single-host convenience wrapper over the package →
    workers → merge pipeline: it packages into *job_dir* (a fresh
    temporary directory by default), spawns ``jobs`` local worker
    subprocesses that claim from the shared queue, waits, and merges.
    Multi-host runs use the same three stages through the
    ``repro-sim dist package|worker|merge`` commands instead.
    """

    name = "dirqueue"

    def __init__(self, job_dir: Optional[str] = None, keep: bool = False):
        self.job_dir = job_dir
        self.keep = keep or job_dir is not None

    def execute(self, points, jobs: int = 1) -> Payload:
        import shutil

        from .worker import worker_environment

        jobs = coerce_jobs(jobs)
        job_dir = self.job_dir or tempfile.mkdtemp(prefix="repro-job-")
        try:
            package_job(points, job_dir, description="dirqueue backend run")
            procs = [
                subprocess.Popen(
                    dirqueue_worker_command(job_dir, f"w{i}"),
                    env=worker_environment(),
                    stdout=subprocess.DEVNULL,
                )
                for i in range(min(jobs, len(points)))
            ]
            exit_codes = [proc.wait() for proc in procs]
            merged = merge_job(job_dir, allow_partial=True)
            payload: Payload = []
            for index in range(len(points)):
                if index in merged.runs:
                    payload.append(
                        (index, merged.runs[index].result, None)
                    )
                elif index in merged.failures:
                    payload.append((index, None, merged.failures[index]))
                else:
                    payload.append(
                        (
                            index,
                            None,
                            "point was never completed (worker exit "
                            f"codes: {exit_codes})",
                        )
                    )
            return payload
        finally:
            if not self.keep:
                shutil.rmtree(job_dir, ignore_errors=True)
