"""Simulation as a service: the ``repro-sim dist serve`` daemon.

The daemon owns one shared :class:`~repro.dist.worker.WorkerPool`
(local subprocess workers and/or remote ``--listen`` workers adopted by
address) and admits simulation jobs from many concurrent clients:

* a **socket API** — a JSON-lines request/reply protocol (one document
  per line, id-matched, exactly like the worker protocol) carrying
  ``submit`` / ``collect`` / ``status`` / ``ping`` / ``shutdown`` ops;
* a **watched job directory** — any ``dist package``-format job
  directory dropped under ``--watch DIR`` is adopted: lost claims are
  re-queued, every point is claimed, executed on the shared fleet, and
  written back as a ``results/`` partial store so ``dist merge`` works
  unchanged.

Admission is **per-tenant fair share**: every submission names a tenant,
each tenant has a FIFO of dispatch chunks, and the
:class:`FairScheduler` drains them weighted-round-robin — a tenant with
weight *w* gets up to *w* consecutive chunks per turn, then the turn
rotates, so no backlog from one tenant can starve another's freshly
submitted job.

Fault model (all mapped onto the worker pool's existing retry
machinery):

* a **worker death or timeout** mid-batch discards that worker and
  re-queues the chunk (bounded by ``retries``); an unreachable remote
  worker is retried patiently — submitting jobs *before* the fleet is
  up is supported, the daemon dispatches as workers appear;
* a **client disconnect** loses nothing: jobs live in the daemon, run
  to completion, and are held (bounded) for re-attach — ``collect`` by
  job id from a new connection returns the finished items;
* a **daemon restart** invalidates job ids (they embed the daemon pid);
  clients detect the unknown-job reply and resubmit — deterministic
  execution makes the replay safe, and still-warm listen-mode workers
  serve the resubmission from their caches.

Service protocol ops (one JSON object per line, ``{"id": N, "op": ...}``
requests, ``{"id": N, "ok": true/false, ...}`` replies):

* ``ping`` — liveness; echoes ``SERVICE_PROTOCOL_VERSION``;
* ``submit`` — ``{"tenant": T, "specs": [RunSpec dicts], "weight"?: W}``
  → ``{"job": id, "n_points": K}``;
* ``collect`` — ``{"job": id, "wait"?: seconds}`` → ``{"done": false,
  "remaining": R}`` or ``{"done": true, "items": [...]}`` with one
  ``{"ok": ..., "result"/"error": ...}`` item per submitted spec, in
  submission order;
* ``status`` — queue depths / served counts / weights per tenant, job
  counts, the recent dispatch log (tenant per dispatched chunk), and
  the pool's worker stats (transport/address columns included);
* ``shutdown`` — ``{"stop_workers"?: bool}``; acknowledged, then the
  daemon stops (``stop_workers`` also sends remote workers the
  ``shutdown`` op instead of leaving them listening).
"""

from __future__ import annotations

import collections
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, DistError
from ..telemetry import get_logger, metrics, tracing
from .backends import ExecutionBackend, Payload
from .dirqueue import (
    _FAILED,
    _RESULTS,
    _drop_claim,
    _token_name,
    _write_json,
    claim_point,
    requeue_lost,
)
from .transport import (
    LineChannel,
    PeerClosed,
    PeerTimeout,
    SocketTransport,
    listen_socket,
    parse_address,
    serve_socket_connection,
)
from .worker import (
    _UNSET,
    WorkerBackend,
    WorkerPool,
    _chunks_for_groups,
)

#: Service protocol major version, echoed by ``ping`` replies.
#: Telemetry rides as *optional* fields — a ``trace`` context on
#: ``submit`` requests, a ``spans`` list on finished ``collect``
#: replies — read with ``.get()`` on both ends, so the version is
#: unchanged and old peers interoperate.
SERVICE_PROTOCOL_VERSION = 1

_log = get_logger("dist.serve")

#: How many completed jobs the daemon retains for late ``collect``s.
_COMPLETED_JOBS_KEPT = 64

#: How many dispatched-chunk tenant entries the status op reports.
_DISPATCH_LOG_LIMIT = 200


def service_address_from_env(
    name: str = "REPRO_SERVICE_ADDRESS",
) -> Optional[str]:
    """The daemon address from the environment (``None`` when unset)."""
    text = os.environ.get(name)
    if text is None or text.strip() == "":
        return None
    address = text.strip()
    parse_address(address, source=f"environment variable {name}")
    return address


def service_tenant_from_env(
    name: str = "REPRO_SERVICE_TENANT",
) -> str:
    """The tenant name for submissions from this process.

    Falls back to the login user, then to ``"default"`` — fair share
    needs *a* stable identity per client, not a registered one.
    """
    text = os.environ.get(name)
    if text and text.strip():
        return text.strip()
    return os.environ.get("USER") or os.environ.get("USERNAME") or "default"


class ServiceError(DistError):
    """The daemon replied ``ok: false`` to a service request."""


# ----------------------------------------------------------------------
# Fair-share admission
# ----------------------------------------------------------------------
class FairScheduler:
    """Weighted round-robin across per-tenant FIFO queues.

    Each tenant owns a FIFO of work items.  ``pop`` serves the tenant
    whose turn it is for up to ``weight(tenant)`` consecutive items,
    then rotates to the next tenant with pending work — every tenant
    with a non-empty queue is visited once per rotation, so no tenant
    can be starved no matter how deep another's backlog is.  Within one
    tenant, items stay FIFO (a tenant's own jobs are served in
    submission order).

    Thread-safe; ``pop`` blocks (with optional timeout) until an item
    is available.
    """

    def __init__(self, default_weight: int = 1):
        self._default_weight = max(1, int(default_weight))
        self._queues: Dict[str, collections.deque] = {}
        self._weights: Dict[str, int] = {}
        self._dispatched: Dict[str, int] = {}
        self._order: List[str] = []
        self._cursor = -1
        self._credit = 0
        self._cond = threading.Condition()

    def weight(self, tenant: str) -> int:
        return self._weights.get(tenant, self._default_weight)

    def set_weight(self, tenant: str, weight) -> None:
        weight = int(weight)
        if weight < 1:
            raise ConfigError(
                f"tenant weight must be a positive integer, got {weight}"
            )
        with self._cond:
            self._weights[tenant] = weight

    def push(self, tenant: str, item) -> None:
        with self._cond:
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = collections.deque()
                self._order.append(tenant)
            queue.append(item)
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None):
        """``(tenant, item)`` for the next fair-share pick, or ``None``."""
        with self._cond:
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            while True:
                picked = self._pick()
                if picked is not None:
                    return picked
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)

    def _pick(self):
        n = len(self._order)
        if n == 0:
            return None
        if self._credit <= 0:
            # Turn over: the next tenant in rotation gets a fresh credit
            # of `weight` consecutive picks.
            self._cursor = (self._cursor + 1) % n
            self._credit = self.weight(self._order[self._cursor])
        for step in range(n):
            index = (self._cursor + step) % n
            tenant = self._order[index]
            queue = self._queues.get(tenant)
            if not queue:
                continue
            if index != self._cursor:
                # The turn-holder had nothing pending; the turn passes.
                self._cursor = index
                self._credit = self.weight(tenant)
            item = queue.popleft()
            self._credit -= 1
            self._dispatched[tenant] = self._dispatched.get(tenant, 0) + 1
            return tenant, item
        return None

    def depths(self) -> Dict[str, int]:
        """Pending items per tenant (tenants with history included)."""
        with self._cond:
            return {
                tenant: len(self._queues.get(tenant, ()))
                for tenant in self._order
            }

    def dispatched(self) -> Dict[str, int]:
        with self._cond:
            return dict(self._dispatched)

    def kick(self) -> None:
        """Wake every blocked ``pop`` (used on daemon shutdown)."""
        with self._cond:
            self._cond.notify_all()


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
class _Job:
    """One submission: its points, per-point reply items, done latch.

    ``items[i]`` is the protocol reply item for point *i* — a plain
    ``{"ok": true, "result": {...}}`` / ``{"ok": false, "error": ...}``
    dict, JSON-ready so ``collect`` replies ship it verbatim.  The job
    object *is* the unit of client-disconnect survival: it lives in the
    daemon, not the connection.
    """

    def __init__(
        self,
        job_id: str,
        tenant: str,
        points: Sequence,
        trace: Optional[dict] = None,
    ):
        self.id = job_id
        self.tenant = tenant
        self.points = list(points)
        self.items: List[Optional[dict]] = [None] * len(self.points)
        self.remaining = len(self.points)
        self.done = threading.Event()
        self._lock = threading.Lock()
        # The job span is the daemon-side root of this submission's
        # trace: a child of the client's submit span when the request
        # carried a trace context, a local root otherwise.  Finished
        # span records accumulate for the ``collect`` reply so the
        # client's log reconstructs the daemon-side tree.
        self.traced = trace is not None
        self.failures = 0
        self.span = tracing.start_span(
            "job", parent=trace, job=job_id, tenant=tenant,
            points=len(self.points),
        )
        self.span_records: List[dict] = []
        if not self.points:
            self.span_records.append(self.span.end())
            self.done.set()

    def record(self, index: int, item: dict) -> int:
        """Store point *index*'s reply item; returns points newly done."""
        with self._lock:
            if self.items[index] is not None:
                return 0  # a duplicate retry landed; first write wins
            self.items[index] = item
            if not item.get("ok"):
                self.failures += 1
            self.remaining -= 1
            if self.remaining == 0:
                self.span_records.append(self.span.end(
                    status="error" if self.failures else "ok",
                    error=(
                        f"{self.failures} point(s) failed"
                        if self.failures else None
                    ),
                ))
                self.done.set()
                metrics.counter("serve.jobs_completed_total").inc()
                _log.info(
                    "serve.job-done", job=self.id, tenant=self.tenant,
                    points=len(self.points), failures=self.failures,
                    trace_id=self.span.trace_id,
                )
            return 1

    def record_spans(self, records) -> None:
        """Append finished span records for the ``collect`` reply."""
        with self._lock:
            self.span_records.extend(records)

    def spans(self) -> List[dict]:
        with self._lock:
            return list(self.span_records)


# ----------------------------------------------------------------------
# The daemon
# ----------------------------------------------------------------------
class ServeDaemon:
    """The dispatcher daemon behind ``repro-sim dist serve``.

    Parameters
    ----------
    address:
        ``HOST:PORT`` to listen on (port 0 binds an ephemeral port; read
        :attr:`address` back after :meth:`start`).
    jobs:
        Local subprocess workers to run in the shared pool.
    remote:
        ``HOST:PORT`` addresses of listen-mode workers to adopt.  The
        fleet size is ``jobs + len(remote)`` (minimum 1 local).
    watch:
        Optional directory to poll for ``dist package`` job directories.
    timeout / retries:
        Per-point reply timeout and chunk retry budget, defaulting to
        the ``REPRO_DIST_TIMEOUT`` / ``REPRO_DIST_RETRIES`` knobs.
    weights:
        Initial per-tenant fair-share weights (default weight is 1).
    """

    def __init__(
        self,
        address: str = "127.0.0.1:0",
        jobs: int = 0,
        remote: Sequence[str] = (),
        watch: Optional[str] = None,
        timeout=_UNSET,
        retries=_UNSET,
        weights: Optional[Dict[str, int]] = None,
        heartbeat: float = 5.0,
        pool: Optional[WorkerPool] = None,
    ):
        self._listen_address = address
        self.remote = [str(a) for a in remote]
        for a in self.remote:
            parse_address(a, source="remote worker address")
        jobs = int(jobs)
        if jobs < 0:
            raise ConfigError(f"jobs must be >= 0, got {jobs}")
        if jobs == 0 and not self.remote:
            jobs = 1
        self.n_slots = jobs + len(self.remote)
        self.watch = watch
        self.heartbeat = float(heartbeat)
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else WorkerPool(
            remote=self.remote
        )
        # The pool backend supplies preload + timeout semantics; the
        # daemon replaces its task board with the fair scheduler.
        self._backend = WorkerBackend(
            timeout=timeout, retries=retries, pool=self.pool
        )
        self.scheduler = FairScheduler()
        for tenant, weight in (weights or {}).items():
            self.scheduler.set_weight(tenant, weight)
        self.dispatch_log: collections.deque = collections.deque(
            maxlen=_DISPATCH_LOG_LIMIT
        )
        self._jobs: "collections.OrderedDict[str, _Job]" = (
            collections.OrderedDict()
        )
        self._jobs_lock = threading.Lock()
        self._job_counter = 0
        self._tenant_served: Dict[str, int] = {}
        self._stop = threading.Event()
        self._stop_remote_workers = False
        self._sock = None
        self._threads: List[threading.Thread] = []
        self._conn_threads: List[threading.Thread] = []
        self.address: Optional[str] = None
        self.started = time.monotonic()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServeDaemon":
        """Bind the socket and launch the serving threads."""
        self._sock = listen_socket(self._listen_address)
        host, port = self._sock.getsockname()[:2]
        self.address = f"{host}:{port}"
        self._threads = [
            threading.Thread(
                target=self._accept_loop, name="serve-accept", daemon=True
            )
        ]
        for slot in range(self.n_slots):
            self._threads.append(
                threading.Thread(
                    target=self._dispatch_loop,
                    args=(slot,),
                    name=f"serve-dispatch-{slot}",
                    daemon=True,
                )
            )
        if self.watch:
            self._threads.append(
                threading.Thread(
                    target=self._watch_loop, name="serve-watch", daemon=True
                )
            )
        if self.heartbeat > 0:
            self._threads.append(
                threading.Thread(
                    target=self._heartbeat_loop,
                    name="serve-heartbeat",
                    daemon=True,
                )
            )
        for thread in self._threads:
            thread.start()
        _log.info(
            "serve.start", address=self.address, slots=self.n_slots,
            remote=len(self.remote), watch=self.watch,
        )
        return self

    def wait(self) -> None:
        """Block until the daemon is asked to stop."""
        self._stop.wait()

    def stop(self, stop_workers: bool = False) -> None:
        """Stop serving: close the socket, join threads, drop the pool."""
        if stop_workers:
            self._stop_remote_workers = True
        if not self._stop.is_set():
            _log.info(
                "serve.stop", address=self.address,
                stop_workers=self._stop_remote_workers,
            )
        self._stop.set()
        self.scheduler.kick()
        if self._sock is not None:
            # shutdown() first: close() alone does not wake a thread
            # blocked in accept(), which would keep the port in LISTEN
            # and break an immediate restart on the same address.
            import socket as socket_module

            try:
                self._sock.shutdown(socket_module.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5)
        if self._owns_pool:
            self.pool.shutdown(stop_remote=self._stop_remote_workers)

    # -- submission ----------------------------------------------------
    def submit(
        self,
        tenant: str,
        points: Sequence,
        weight: Optional[int] = None,
        trace: Optional[dict] = None,
    ) -> _Job:
        """Admit one job: queue its chunks under *tenant*'s fair share."""
        from ..analysis.campaign import grouped_points

        if weight is not None:
            self.scheduler.set_weight(tenant, weight)
        with self._jobs_lock:
            self._job_counter += 1
            job_id = f"job-{os.getpid()}-{self._job_counter}"
            job = _Job(job_id, tenant, points, trace=trace)
            self._jobs[job_id] = job
            self._evict_completed_locked()
        groups = grouped_points(job.points)
        admit = job.span.child("admit", tenant=tenant)
        n_chunks = 0
        for chunk in _chunks_for_groups(groups, max(1, self.n_slots)):
            self.scheduler.push(tenant, (job, chunk))
            n_chunks += 1
        admit.annotate(chunks=n_chunks)
        job.record_spans([admit.end()])
        metrics.counter("serve.submits_total").inc()
        metrics.counter("serve.points_total").inc(len(job.points))
        _log.info(
            "serve.submit", job=job.id, tenant=tenant,
            points=len(job.points), chunks=n_chunks,
            trace_id=job.span.trace_id,
        )
        return job

    def job(self, job_id: str) -> Optional[_Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def _evict_completed_locked(self) -> None:
        completed = [
            job_id
            for job_id, job in self._jobs.items()
            if job.done.is_set()
        ]
        for job_id in completed[: max(0, len(completed)
                                      - _COMPLETED_JOBS_KEPT)]:
            del self._jobs[job_id]

    # -- dispatch ------------------------------------------------------
    def _dispatch_loop(self, slot: int) -> None:
        """One fleet slot: pop fair-share chunks and drive its worker."""
        backend = self._backend
        while not self._stop.is_set():
            popped = self.scheduler.pop(timeout=0.2)
            if popped is None:
                continue
            tenant, (job, task) = popped
            attempts, key, needed, chunk, retry_of = task
            try:
                worker = self.pool.worker_at(slot)
            except PeerClosed:
                # The slot's worker is not reachable (yet).  Re-queue
                # without burning an attempt — submitting jobs before
                # the fleet is up is a supported order of operations —
                # and back off so a live slot can take the chunk.
                self.scheduler.push(tenant, (job, task))
                if self._stop.wait(0.5):
                    return
                continue
            # One span per dispatch attempt: first attempts hang off
            # the job span, retries off the failed attempt's span.
            span = tracing.start_span(
                "dispatch",
                parent=retry_of or job.span,
                slot=slot,
                attempt=attempts + 1,
                tenant=tenant,
                bench=key[0],
                seed=key[1],
                points=len(chunk),
            )
            metrics.counter("serve.dispatch_chunks_total").inc()
            batch_span = None
            try:
                with self.pool.slot_lock(slot):
                    backend._preload(
                        self.pool, worker, key, needed, parent=span
                    )
                    batch_timeout = (
                        backend.timeout * len(chunk)
                        if backend.timeout is not None
                        else None
                    )
                    batch_span = span.child("batch-run", points=len(chunk))
                    reply = worker.request(
                        "batch-run",
                        timeout=batch_timeout,
                        trace=batch_span.context(),
                        specs=[
                            point.spec().to_dict() for _, point in chunk
                        ],
                    )
            except (PeerClosed, PeerTimeout) as err:
                self.pool.discard(slot)
                if batch_span is not None:
                    job.record_spans([batch_span.end(
                        status="error",
                        error=f"{type(err).__name__}: {err}",
                    )])
                job.record_spans([span.end(
                    status="error",
                    error=f"{type(err).__name__}: {err}",
                )])
                _log.warning(
                    "serve.worker-failed", job=job.id, tenant=tenant,
                    slot=slot, attempt=attempts + 1,
                    error=f"{type(err).__name__}: {err}",
                    trace_id=span.trace_id,
                )
                if attempts < backend.retries:
                    metrics.counter("serve.dispatch_retries_total").inc()
                    self.scheduler.push(tenant, (
                        job,
                        (attempts + 1, key, needed, chunk, span.context()),
                    ))
                else:
                    message = (
                        f"worker failed after {attempts + 1} "
                        f"attempt(s): {type(err).__name__}: {err} "
                        f"[trace {span.trace_id}]"
                    )
                    self._record(job, [
                        (index, {"ok": False, "error": message})
                        for index, _ in chunk
                    ])
                continue
            if not reply.get("ok"):
                message = str(reply.get("error", "worker error reply"))
                job.record_spans([batch_span.end(
                    status="error", error=message,
                )])
                job.record_spans([span.end(status="error", error=message)])
                self._record(job, [
                    (index, {"ok": False, "error": message})
                    for index, _ in chunk
                ])
                continue
            worker_spans = list(reply.get("spans") or ())
            for record in worker_spans:
                tracing.record_span(record)
            job.record_spans(worker_spans)
            job.record_spans([batch_span.end(), span.end()])
            items = reply.get("results") or []
            self._record(job, [
                (index, dict(item))
                for (index, _), item in zip(chunk, items)
            ])
            self.dispatch_log.append(tenant)
            _log.debug(
                "serve.dispatch", job=job.id, tenant=tenant, slot=slot,
                points=len(chunk), trace_id=span.trace_id,
            )

    def _record(
        self, job: _Job, entries: Sequence[Tuple[int, dict]]
    ) -> None:
        served = 0
        for index, item in entries:
            served += job.record(index, item)
        if served:
            self._tenant_served[job.tenant] = (
                self._tenant_served.get(job.tenant, 0) + served
            )

    # -- heartbeat -----------------------------------------------------
    def _heartbeat_loop(self) -> None:
        """Ping idle workers so half-open connections die between jobs.

        A remote worker whose host vanished without FIN produces no EOF;
        only a timed-out request exposes it.  Dispatch traffic does that
        naturally under load — the heartbeat covers the idle case so the
        status display and the next job see a discarded slot, not a
        black hole.  Busy slots are skipped (try-acquire), never probed
        mid-batch.
        """
        while not self._stop.wait(self.heartbeat):
            for slot in range(self.n_slots):
                lock = self.pool.slot_lock(slot)
                if not lock.acquire(blocking=False):
                    continue
                try:
                    with self.pool._lock:
                        worker = (
                            self.pool._workers[slot]
                            if slot < len(self.pool._workers)
                            else None
                        )
                    if worker is None or not worker.alive():
                        continue
                    try:
                        worker.request("ping", timeout=2)
                    except (PeerClosed, PeerTimeout):
                        self.pool.discard(slot)
                finally:
                    lock.release()

    # -- watched job directories ---------------------------------------
    def _watch_loop(self) -> None:
        adopted: Dict[str, Optional[Tuple[_Job, List[dict]]]] = {}
        while not self._stop.is_set():
            try:
                names = sorted(os.listdir(self.watch))
            except OSError:
                names = []
            for name in names:
                job_dir = os.path.join(self.watch, name)
                if (
                    job_dir in adopted
                    or not os.path.isfile(
                        os.path.join(job_dir, "manifest.json")
                    )
                    or os.path.exists(os.path.join(job_dir, "serve.done"))
                ):
                    continue
                try:
                    adopted[job_dir] = self._adopt_directory_job(job_dir)
                except DistError as err:
                    adopted[job_dir] = None  # malformed: skip for good
                    _log.warning(
                        "serve.adopt-failed", dir=job_dir, error=str(err)
                    )
                else:
                    entry = adopted[job_dir]
                    if entry is not None:
                        _log.info(
                            "serve.adopt", dir=job_dir,
                            job=entry[0].id, points=len(entry[1]),
                        )
            for job_dir, entry in list(adopted.items()):
                if entry is None:
                    continue
                job, claims = entry
                if job.done.is_set():
                    self._finish_directory_job(job_dir, job, claims)
                    adopted[job_dir] = None
            self._stop.wait(0.5)

    def _adopt_directory_job(
        self, job_dir: str
    ) -> Optional[Tuple[_Job, List[dict]]]:
        """Claim every pending point of *job_dir* and submit them."""
        from ..spec.specs import RunSpec

        requeue_lost(job_dir)
        worker_id = f"serve-{os.getpid()}"
        backlog: List[str] = []
        claims: List[dict] = []
        while True:
            entry = claim_point(job_dir, worker_id, backlog)
            if entry is None:
                break
            claims.append(entry)
        if not claims:
            return None
        points = [
            RunSpec.from_dict(entry["spec"]).to_point() for entry in claims
        ]
        tenant = f"dir:{os.path.basename(os.path.normpath(job_dir))}"
        return self.submit(tenant, points), claims

    def _finish_directory_job(
        self, job_dir: str, job: _Job, claims: List[dict]
    ) -> None:
        """Write the adopted job's outputs in dirqueue's own formats."""
        from ..analysis.campaign import (
            CampaignResults,
            CampaignRun,
            _result_from_dict,
        )
        from ..spec.specs import RunSpec

        worker_id = f"serve-{os.getpid()}"
        runs: List[CampaignRun] = []
        for entry, item in zip(claims, job.items):
            if item and item.get("ok"):
                runs.append(CampaignRun(
                    point=RunSpec.from_dict(entry["spec"]).to_point(),
                    result=_result_from_dict(dict(item["result"])),
                ))
            else:
                _write_json(
                    os.path.join(
                        job_dir, _FAILED, _token_name(int(entry["index"]))
                    ),
                    {
                        "index": entry["index"],
                        "spec": entry["spec"],
                        "worker": worker_id,
                        "error": str(
                            (item or {}).get("error", "point lost")
                        ),
                    },
                )
        if runs:
            store = os.path.join(job_dir, _RESULTS, f"{worker_id}.json")
            tmp = store + ".tmp"
            CampaignResults(runs).save_json(tmp)
            os.replace(tmp, store)
        for entry in claims:
            _drop_claim(entry["_claim_path"])
        _write_json(
            os.path.join(job_dir, "serve.done"),
            {"job": job.id, "n_points": len(claims),
             "completed": len(runs)},
        )

    # -- the socket API ------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # socket closed by stop()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._conn_threads = [
                t for t in self._conn_threads if t.is_alive()
            ] + [thread]

    def _serve_connection(self, conn) -> None:
        keep_serving = serve_socket_connection(conn, self._handle_line)
        if not keep_serving:
            self.stop(stop_workers=self._stop_remote_workers)

    def _handle_line(self, line: str):
        """One service request → ``(reply, keep_serving)``; never raises."""
        import json as _json
        import traceback as _traceback

        request_id = None
        try:
            request = _json.loads(line)
            if not isinstance(request, dict):
                raise ValueError(
                    f"request must be an object, got {request!r}"
                )
            request_id = request.get("id")
            op = request.get("op")
            if op == "ping":
                return {
                    "id": request_id, "ok": True,
                    "protocol": SERVICE_PROTOCOL_VERSION,
                }, True
            if op == "shutdown":
                if request.get("stop_workers"):
                    self._stop_remote_workers = True
                return {"id": request_id, "ok": True, "bye": True}, False
            if op == "submit":
                return self._handle_submit(request_id, request), True
            if op == "collect":
                return self._handle_collect(request_id, request), True
            if op == "status":
                return {
                    "id": request_id, "ok": True, **self.status()
                }, True
            raise ValueError(f"unknown op {op!r}")
        except Exception:  # noqa: BLE001 — every failure becomes a reply
            return {
                "id": request_id,
                "ok": False,
                "error": _traceback.format_exc(),
            }, True

    def _handle_submit(self, request_id, request) -> dict:
        from ..spec.specs import RunSpec

        specs = request.get("specs")
        if not isinstance(specs, list):
            raise ValueError("submit request needs a 'specs' list")
        tenant = str(request.get("tenant") or "default")
        points = [RunSpec.from_dict(spec).to_point() for spec in specs]
        trace = request.get("trace")
        job = self.submit(
            tenant, points, weight=request.get("weight"),
            trace=trace if isinstance(trace, dict) else None,
        )
        return {
            "id": request_id, "ok": True,
            "job": job.id, "n_points": len(points),
        }

    def _handle_collect(self, request_id, request) -> dict:
        job_id = str(request.get("job") or "")
        job = self.job(job_id)
        if job is None:
            raise ValueError(
                f"unknown job {job_id!r} (daemon restarted, or the job "
                f"was evicted) — resubmit"
            )
        wait = float(request.get("wait") or 0)
        done = job.done.wait(timeout=wait) if wait > 0 else (
            job.done.is_set()
        )
        if not done:
            return {
                "id": request_id, "ok": True,
                "done": False, "remaining": job.remaining,
            }
        reply = {
            "id": request_id, "ok": True, "done": True, "items": job.items,
        }
        if job.traced:
            reply["spans"] = job.spans()
        return reply

    # -- observability -------------------------------------------------
    def status(self) -> Dict[str, object]:
        depths = self.scheduler.depths()
        dispatched = self.scheduler.dispatched()
        for tenant, depth in depths.items():
            metrics.gauge(f"serve.queue_depth.{tenant}").set(depth)
        tenants = {
            tenant: {
                "queued_chunks": depths.get(tenant, 0),
                "dispatched_chunks": dispatched.get(tenant, 0),
                "points_served": self._tenant_served.get(tenant, 0),
                "weight": self.scheduler.weight(tenant),
            }
            for tenant in set(depths) | set(self._tenant_served)
        }
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        return {
            "protocol": SERVICE_PROTOCOL_VERSION,
            "address": self.address,
            "uptime": round(time.monotonic() - self.started, 3),
            "slots": self.n_slots,
            "watch": self.watch,
            "tenants": tenants,
            "jobs": {
                "total": len(jobs),
                "active": sum(
                    1 for job in jobs if not job.done.is_set()
                ),
                "completed": sum(
                    1 for job in jobs if job.done.is_set()
                ),
            },
            "dispatch_log": list(self.dispatch_log),
            "pool": self.pool.stats(timeout=2),
            "telemetry": metrics.snapshot(),
        }


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
#: Pause between reconnect attempts after losing the daemon connection.
#: Module-level so tests can shrink it.
RECONNECT_DELAY = 1.0

#: Per-request reply timeout for service ops (generous: a ``collect``
#: holds the line for its ``wait`` interval first).
_REQUEST_TIMEOUT = 30.0

#: How long one ``collect`` op waits server-side before reporting
#: progress, which doubles as the client's disconnect-detection beat.
_COLLECT_WAIT = 2.0


class ServiceClient:
    """A connection to a :class:`ServeDaemon`, with reconnect/resubmit.

    One client maps to one tenant; every request transparently
    (re)opens the TCP connection when needed.  :meth:`run` is the
    whole-campaign primitive: submit, then collect until done —
    surviving client-side disconnects (the daemon holds the job) and
    daemon restarts (unknown job id → resubmit, safe by determinism).
    """

    def __init__(
        self,
        address: Optional[str] = None,
        tenant: Optional[str] = None,
        reconnects: int = 10,
    ):
        address = address or service_address_from_env()
        if not address:
            raise ConfigError(
                "service address required: pass address='HOST:PORT' or "
                "set REPRO_SERVICE_ADDRESS"
            )
        parse_address(address, source="service address")
        self.address = address
        self.tenant = tenant or service_tenant_from_env()
        self.reconnects = int(reconnects)
        self._channel: Optional[LineChannel] = None

    def _connected(self) -> LineChannel:
        if self._channel is None or not self._channel.alive():
            self._channel = LineChannel(SocketTransport(self.address))
        return self._channel

    def close(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    def request(self, op: str, timeout: float = _REQUEST_TIMEOUT, **fields):
        """One service op; raises :class:`ServiceError` on ``ok: false``.

        Transport failures (:class:`PeerClosed` / :class:`PeerTimeout`)
        propagate — :meth:`run` turns them into reconnects.
        """
        try:
            reply = self._connected().request(op, timeout=timeout, **fields)
        except (PeerClosed, PeerTimeout):
            self.close()
            raise
        if not reply.get("ok"):
            raise ServiceError(
                f"service {op} failed: "
                f"{str(reply.get('error', 'unknown error')).strip()}"
            )
        return reply

    def ping(self) -> dict:
        return self.request("ping")

    def status(self) -> dict:
        reply = self.request("status")
        return {k: v for k, v in reply.items() if k not in ("id", "ok")}

    def shutdown(self, stop_workers: bool = False) -> None:
        self.request("shutdown", stop_workers=bool(stop_workers))
        self.close()

    def submit(self, points: Sequence, weight=None) -> str:
        """Submit *points* under this client's tenant; returns the job id.

        When a span is active on this thread (a campaign run), a
        ``submit`` child span is opened and its context rides the
        request, so the daemon's job span joins the client's trace.
        """
        fields = {
            "tenant": self.tenant,
            "specs": [point.spec().to_dict() for point in points],
        }
        if weight is not None:
            fields["weight"] = int(weight)
        span = None
        if tracing.current_context() is not None:
            span = tracing.start_span(
                "submit", parent=tracing.current_span(),
                tenant=self.tenant, points=len(points),
            )
            fields["trace"] = span.context()
        try:
            job_id = str(self.request("submit", **fields)["job"])
        except Exception as err:
            if span is not None:
                span.end(status="error", error=str(err))
            raise
        if span is not None:
            span.annotate(job=job_id)
            span.end()
        _log.info(
            "service.submit", address=self.address, tenant=self.tenant,
            job=job_id, points=len(points),
        )
        return job_id

    def collect(self, job_id: str) -> Optional[List[dict]]:
        """One collect beat: the finished items, or ``None`` (not done).

        Daemon-side span records returned with a finished job are
        replayed into this process's telemetry log, so ``trace show``
        on the client's log file sees the full daemon-side tree.
        """
        reply = self.request("collect", job=job_id, wait=_COLLECT_WAIT)
        if not reply.get("done"):
            return None
        for record in reply.get("spans") or ():
            tracing.record_span(record)
        _log.info(
            "service.collect", address=self.address, job=job_id,
            items=len(reply["items"]),
        )
        return list(reply["items"])

    def run(self, points: Sequence) -> List[dict]:
        """Submit and collect to completion, riding out failures."""
        points = list(points)
        job_id: Optional[str] = None
        failures = 0
        while True:
            try:
                if job_id is None:
                    job_id = self.submit(points)
                items = self.collect(job_id)
                if items is not None:
                    return items
            except ServiceError as err:
                if "unknown job" in str(err) and job_id is not None:
                    # Daemon restarted (job ids embed its pid) or the
                    # job aged out: resubmission replays deterministic
                    # work, so it is always safe.
                    job_id = None
                    continue
                raise
            except (PeerClosed, PeerTimeout) as err:
                failures += 1
                if failures > self.reconnects:
                    raise DistError(
                        f"lost the service at {self.address} "
                        f"({failures} failures): {err}"
                    ) from None
                time.sleep(RECONNECT_DELAY)


class ServiceBackend(ExecutionBackend):
    """Route campaign execution through a ``dist serve`` daemon.

    ``backend("service", address="HOST:PORT", tenant="me")`` — both
    options fall back to ``REPRO_SERVICE_ADDRESS`` /
    ``REPRO_SERVICE_TENANT``, so ``campaign run --backend service``
    works with no per-call plumbing.  ``jobs`` is ignored: fleet sizing
    belongs to the daemon, which is the whole point of the service.
    """

    name = "service"
    description = (
        "submit to a repro-sim dist serve daemon over TCP "
        "(shared worker fleet, fair multi-tenant admission)"
    )
    #: The daemon preloads traces onto its fleet, so grouping constraints
    #: do not bind the client side.
    splits_groups = True

    def __init__(
        self,
        address: Optional[str] = None,
        tenant: Optional[str] = None,
        reconnects: int = 10,
    ):
        self.client = ServiceClient(
            address=address, tenant=tenant, reconnects=reconnects
        )
        self.address = self.client.address
        self.tenant = self.client.tenant

    def execute(self, points, jobs: int = 1) -> Payload:
        from ..analysis.campaign import _result_from_dict

        if not points:
            return []
        items = self.client.run(points)
        if len(items) != len(points):
            raise DistError(
                f"service returned {len(items)} item(s) "
                f"for {len(points)} point(s)"
            )
        payload: Payload = []
        for index, item in enumerate(items):
            if item and item.get("ok"):
                timing = {
                    k: item[k]
                    for k in ("elapsed_seconds", "resolve_seconds",
                              "simulate_seconds")
                    if k in item
                }
                payload.append((
                    index,
                    _result_from_dict(dict(item["result"])),
                    None,
                    timing or None,
                ))
            else:
                payload.append((
                    index,
                    None,
                    str((item or {}).get("error", "service lost the point")),
                ))
        return payload
