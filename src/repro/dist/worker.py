"""The ``worker`` backend: warm worker pools + JSON-lines protocol v2.

The backend dispatches campaign points to persistent
``repro-sim dist worker --stdio`` subprocesses speaking a line-oriented
JSON request/response protocol over stdin/stdout.  Since protocol v2
the dispatcher side is built around a :class:`WorkerPool` — a
*process-lifetime* pool of protocol workers that is shared across
``execute()`` calls and campaign resumes, so steady-state dispatch costs
a JSON round trip, not an interpreter spawn.  This is deliberately the
smallest protocol a *multi-host* dispatcher needs — a future SSH/socket
dispatcher reuses the exact same messages, only the transport changes.

Protocol (one JSON document per line, UTF-8):

* request ``{"id": N, "op": "run", "spec": {...}}`` — ``spec`` is a
  :class:`~repro.spec.RunSpec` dict; the worker executes it through the
  :func:`repro.run` facade and replies
  ``{"id": N, "ok": true, "result": {...}}`` with the
  :class:`~repro.pipeline.SimResult` as a plain dict;
* request ``{"id": N, "op": "preload", "bench": B, "seed": S,
  "records": R, "rtrace": <base64>}`` — ships one ``(bench, seed)``
  group's exported ``.rtrace`` bytes; the worker pins the decoded
  :class:`~repro.scenarios.rtrace.FrozenTrace` so every later point of
  that group replays the recorded committed path with zero
  regeneration.  The usual magic/CRC guards apply — corrupt payloads
  get an error reply and nothing is pinned;
* request ``{"id": N, "op": "batch-run", "specs": [{...}, ...]}`` —
  one round trip for a whole run of same-trace points; the reply is
  ``{"id": N, "ok": true, "results": [...]}`` with one
  ``{"ok": ..., "result"/"error": ...}`` item per spec, so a broken
  point fails alone instead of poisoning its batch;
* request ``{"id": N, "op": "stats"}`` — serving counters: points
  served, batches, trace-cache hits/misses, result-cache hits, pinned
  traces;
* request ``{"id": N, "op": "ping"}`` — liveness check; the reply echoes
  the protocol version;
* request ``{"id": N, "op": "shutdown"}`` — acknowledged reply, then the
  worker exits.  Closing the worker's stdin (EOF) shuts it down too.

Execution inside a warm worker is cached at two levels, both justified
by the determinism contract (every backend point-for-point identical to
serial): a preloaded :class:`~repro.scenarios.rtrace.FrozenTrace` is
replayed for any spec its recorded window covers, and a spec the worker
has already served is answered from a bounded result memo without
re-simulating — so re-running a campaign against a warm pool costs one
JSON round trip per batch, which is the entire point of keeping the
pool alive.

Any failure to *execute* a point (unknown scheme, simulation error...)
is an ``{"ok": false, "error": traceback}`` reply — deterministic, so it
is never retried.  A malformed request (bad JSON, unknown op, missing
``spec``) also gets an error reply and the worker keeps serving: one
corrupt line must not poison a long-lived worker.

Fault tolerance lives in the dispatcher: a worker that dies mid-batch or
exceeds the batch timeout is killed and replaced, and the batch is
retried (``retries`` times) on whichever worker next drains the queue —
safe precisely because execution is deterministic.  The dispatcher
captures each worker's stderr and attaches its tail to the failure
messages, so a crashing worker's traceback lands in the recorded error
instead of leaking to the console.

Because traces travel in-band, points are no longer affinity-bound to
the one worker that generated their workload: once a group's trace is
preloaded everywhere it is needed, an oversized group splits across idle
workers instead of idling them (``jobs`` above the group count now
helps rather than hurts).  Preloading also lifts the old scope limit on
runtime-registered workloads — the dispatcher exports whatever it can
resolve, so a trace registered via
:func:`repro.scenarios.register_trace` runs on protocol workers that
could never have resolved its name.

Two environment knobs exist purely for fault-injection tests and ops
drills: ``REPRO_DIST_CRASH_FLAG`` / ``REPRO_DIST_HANG_FLAG`` name flag
files; a worker that sees its flag file before executing a point
deletes the file and crashes (``os._exit``) or hangs
(``REPRO_DIST_HANG_SECONDS``, default 30) — exactly once, since the
flag is consumed.
"""

from __future__ import annotations

import atexit
import base64
import collections
import json
import os
import sys
import threading
import time
import traceback
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DistError
from ..telemetry import get_logger, metrics, tracing
from .backends import (
    ExecutionBackend,
    Payload,
    coerce_jobs,
    coerce_retries,
    coerce_timeout,
    retries_from_env,
    timeout_from_env,
)
from .transport import (
    LineChannel,
    PeerClosed,
    PeerTimeout,
    SocketTransport,
    StdioTransport,
    listen_socket,
    parse_address,
    serve_socket_connection,
)

#: Protocol major version, echoed by ``ping`` replies.  v2 added
#: ``preload`` / ``batch-run`` / ``stats`` on top of v1's ``run``.
#: Telemetry rides as *optional* fields on v2 messages — a ``trace``
#: context on requests, per-item timings and a ``spans`` list on
#: replies — all read with ``.get()`` on both ends, so old and new
#: peers interoperate and the version stays 2.
PROTOCOL_VERSION = 2

_log = get_logger("dist.worker")


# ----------------------------------------------------------------------
# Worker side (runs inside `repro-sim dist worker --stdio`)
# ----------------------------------------------------------------------
def _fault_injection() -> None:
    """Consume a crash/hang flag file if one is configured and present."""
    crash = os.environ.get("REPRO_DIST_CRASH_FLAG")
    if crash and os.path.exists(crash):
        os.remove(crash)
        os._exit(3)
    hang = os.environ.get("REPRO_DIST_HANG_FLAG")
    if hang and os.path.exists(hang):
        os.remove(hang)
        import time

        time.sleep(float(os.environ.get("REPRO_DIST_HANG_SECONDS", "30")))


#: Most results a worker memoises (LRU).  Results are small (a few
#: dozen scalars), so this bounds memory without ever evicting within
#: one realistic campaign's working set.
RESULT_CACHE_LIMIT = 512


class WorkerState:
    """One worker process's serving state: caches + counters.

    ``traces`` maps ``(bench, seed)`` to ``(workload, usable_records)``
    where *usable_records* is the window length the dispatcher promised
    the trace covers (the export cushion is on top).  ``results`` is a
    bounded LRU of spec → result: execution is deterministic (the
    backends' core contract), so re-dispatching a spec this worker has
    already simulated — a campaign re-run or resume on a warm pool —
    is served from memory instead of re-simulated.  The counters feed
    the ``stats`` op, which the warm-pool tests use to prove reuse
    ("second execute spawns zero processes") and cache behaviour.
    """

    def __init__(self) -> None:
        self.traces: Dict[Tuple[str, int], Tuple[object, int]] = {}
        self.results: "collections.OrderedDict[str, object]" = (
            collections.OrderedDict()
        )
        self.points_served = 0
        self.batches = 0
        self.preloads = 0
        self.trace_cache_hits = 0
        self.trace_cache_misses = 0
        self.result_cache_hits = 0

    def stats(self) -> Dict[str, int]:
        return {
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "points_served": self.points_served,
            "batches": self.batches,
            "preloads": self.preloads,
            "preloaded_traces": len(self.traces),
            "trace_cache_hits": self.trace_cache_hits,
            "trace_cache_misses": self.trace_cache_misses,
            "result_cache_hits": self.result_cache_hits,
            "result_cache_size": len(self.results),
        }


def _execute_spec(spec_dict: dict, state: WorkerState):
    """Run one RunSpec dict, replaying a pinned trace when one covers it.

    A cache hit executes against the preloaded
    :class:`~repro.scenarios.rtrace.FrozenTrace` workload (zero
    regeneration, exactly the dirqueue worker's replay path); a miss
    falls back to by-name resolution through the :func:`repro.run`
    facade, which is where workloads the dispatcher never preloaded
    still work — or fail deterministically.

    Returns ``(result, timing)`` where *timing* attributes the point's
    cost (``elapsed_seconds`` always; the facade's resolve/simulate
    split when the point was actually simulated rather than memo-hit).
    """
    from ..spec.facade import execute, execute_resolved, last_timing
    from ..spec.specs import RunSpec

    spec = RunSpec.from_dict(spec_dict)
    _fault_injection()
    t0 = time.perf_counter()
    # Deterministic execution makes the result pure in the spec, so a
    # spec this worker has served before (campaign re-run/resume on a
    # warm pool) comes from the memo — dispatch cost, zero simulation.
    memo_key = json.dumps(
        spec.to_dict(), sort_keys=True, separators=(",", ":")
    )
    cached = state.results.get(memo_key)
    if cached is not None:
        state.results.move_to_end(memo_key)
        state.result_cache_hits += 1
        state.points_served += 1
        metrics.counter("worker.result_cache_hits").inc()
        metrics.counter("worker.points_served").inc()
        return cached, {
            "elapsed_seconds": round(time.perf_counter() - t0, 6)
        }
    pinned = state.traces.get((spec.bench, spec.seed))
    if pinned is not None and spec.warmup + spec.n_instructions <= pinned[1]:
        state.trace_cache_hits += 1
        metrics.counter("worker.trace_cache_hits").inc()
        result = execute_resolved(
            pinned[0],
            spec.scheme,
            spec.machine.resolve(),
            spec.n_instructions,
            spec.warmup,
            spec.seed,
        )
    else:
        state.trace_cache_misses += 1
        metrics.counter("worker.trace_cache_misses").inc()
        result = execute(spec)
    state.results[memo_key] = result
    if len(state.results) > RESULT_CACHE_LIMIT:
        state.results.popitem(last=False)
    state.points_served += 1
    metrics.counter("worker.points_served").inc()
    timing = {"elapsed_seconds": round(time.perf_counter() - t0, 6)}
    split = last_timing()
    if split:
        timing.update(split)
    metrics.histogram("worker.point_seconds").observe(
        timing["elapsed_seconds"]
    )
    return result, timing


def _handle_preload(request: dict, state: WorkerState) -> dict:
    from ..scenarios.rtrace import import_trace_bytes

    bench = str(request["bench"])
    seed = int(request["seed"])
    # Pin under the *requested* name: a dispatcher-side workload
    # registered under a different name than its recorded trace (via
    # register_trace) must still hit the cache for that name's points.
    # columnar=True pins the structure-of-arrays TraceColumns set for
    # the (bench, seed) group: every batch-run over this trace indexes
    # the pinned columns instead of regenerating Instruction records.
    # The wire format and protocol version are unchanged — old peers
    # interoperate; only the worker-side decoded form differs.
    wl = import_trace_bytes(
        base64.b64decode(request["rtrace"]),
        name=bench,
        origin="preload payload",
        columnar=True,
    )
    if wl.seed != seed:
        raise DistError(
            f"preload payload records seed {wl.seed}, "
            f"but the request names seed {seed}"
        )
    usable = int(request["records"])
    state.traces[(bench, seed)] = (wl, usable)
    state.preloads += 1
    metrics.counter("worker.preloads").inc()
    _log.debug("worker.preload", bench=bench, seed=seed, records=usable)
    return {"bench": bench, "seed": seed, "records": usable}


def handle_request(
    line: str, state: Optional[WorkerState] = None
) -> Tuple[Optional[dict], bool]:
    """Process one protocol line; returns ``(reply, keep_serving)``.

    Never raises: every failure mode becomes an error reply so the
    dispatcher can tell a *point* failure (deterministic, reported) from
    a *worker* failure (process death, retried).  *state* carries the
    trace cache and counters between requests; ``None`` serves the
    request statelessly (protocol v1 behaviour).
    """
    if state is None:
        state = WorkerState()
    request_id = None
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError(f"request must be an object, got {request!r}")
        request_id = request.get("id")
        op = request.get("op")
        if op == "ping":
            return {"id": request_id, "ok": True,
                    "protocol": PROTOCOL_VERSION}, True
        if op == "shutdown":
            return {"id": request_id, "ok": True, "bye": True}, False
        if op == "stats":
            return {"id": request_id, "ok": True, **state.stats()}, True
        if op == "preload":
            missing = [
                field
                for field in ("bench", "seed", "records", "rtrace")
                if field not in request
            ]
            if missing:
                raise ValueError(
                    f"preload request is missing {', '.join(missing)}"
                )
            return {
                "id": request_id, "ok": True,
                **_handle_preload(request, state),
            }, True
        if op == "batch-run":
            specs = request.get("specs")
            if not isinstance(specs, list):
                raise ValueError("batch-run request needs a 'specs' list")
            # The optional trace context: absent from old dispatchers,
            # ignored by old workers — the version stays 2 either way.
            span = tracing.start_span(
                "worker.batch",
                parent=request.get("trace"),
                pid=os.getpid(),
                points=len(specs),
            )
            items = []
            failed = 0
            for spec_dict in specs:
                try:
                    result, timing = _execute_spec(spec_dict, state)
                    items.append(
                        {"ok": True, "result": asdict(result), **timing}
                    )
                except Exception:  # noqa: BLE001 — per-point error item
                    failed += 1
                    items.append(
                        {"ok": False, "error": traceback.format_exc()}
                    )
            state.batches += 1
            metrics.counter("worker.batches").inc()
            if failed:
                span.annotate(failed=failed)
            record = span.end()
            reply = {"id": request_id, "ok": True, "results": items}
            if request.get("trace") is not None:
                # Ride the reply so the dispatcher's log holds the
                # worker's own span too (recorded on both ends).
                reply["spans"] = [record]
            return reply, True
        if op != "run":
            raise ValueError(f"unknown op {op!r}")
        if "spec" not in request:
            raise ValueError("run request is missing 'spec'")
        result, timing = _execute_spec(request["spec"], state)
        return {"id": request_id, "ok": True,
                "result": asdict(result), **timing}, True
    except Exception:  # noqa: BLE001 — every failure becomes a reply
        return {
            "id": request_id,
            "ok": False,
            "error": traceback.format_exc(),
        }, True


def serve_stdio(stdin=None, stdout=None) -> int:
    """Worker main loop: read requests line by line until EOF/shutdown."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    state = WorkerState()
    _log.info("worker.start", transport="stdio")
    for line in stdin:
        if not line.strip():
            continue
        reply, keep_serving = handle_request(line, state)
        stdout.write(json.dumps(reply, separators=(",", ":")) + "\n")
        stdout.flush()
        if not keep_serving:
            break
    return 0


def serve_listen(address, stdout=None) -> int:
    """Worker main loop for socket mode: serve dispatchers in turn.

    Binds *address* (``HOST:PORT``; port 0 picks an ephemeral port),
    announces the bound address on *stdout* so launchers can parse it,
    and accepts one dispatcher connection at a time.  One persistent
    :class:`WorkerState` serves every connection, so pinned traces and
    the result memo survive dispatcher reconnects — a restarted daemon
    reattaches to a still-warm worker.  A dispatcher disconnect just
    means "accept the next one"; only a ``shutdown`` op ends the loop.
    """
    sock = listen_socket(address)
    host, port = sock.getsockname()[:2]
    out = stdout if stdout is not None else sys.stdout
    out.write(f"listening on {host}:{port}\n")
    out.flush()
    state = WorkerState()
    _log.info("worker.start", transport="socket", address=f"{host}:{port}")
    try:
        while True:
            conn, _ = sock.accept()
            keep_serving = serve_socket_connection(
                conn, lambda line: handle_request(line, state)
            )
            if not keep_serving:
                return 0
    finally:
        sock.close()


# ----------------------------------------------------------------------
# Dispatcher side
# ----------------------------------------------------------------------
def worker_environment() -> Dict[str, str]:
    """Environment for spawned workers: this repro on the PYTHONPATH.

    The dispatcher may itself run from a source checkout that is not
    installed; workers must import the same code.
    """
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


def stdio_worker_command() -> List[str]:
    """Argv for one protocol worker subprocess."""
    return [sys.executable, "-m", "repro.cli", "dist", "worker", "--stdio"]


#: Backwards-compatible names for the transport failure pair: the whole
#: retry machinery below still speaks "worker died / worker timed out",
#: and tests monkeypatch these names.  Since the transport refactor they
#: *are* the transport exceptions — a socket FIN and a subprocess EOF
#: are the same event to the dispatcher.
_WorkerDied = PeerClosed
_WorkerTimeout = PeerTimeout


class _PoolWorker(LineChannel):
    """One pool slot's protocol channel plus its preload ledger."""

    def __init__(self, transport):
        super().__init__(transport)
        #: (bench, seed) -> usable records pinned on this worker; owned
        #: by the dispatcher thread currently driving the worker.
        self.preloaded: Dict[Tuple[str, int], int] = {}


# ----------------------------------------------------------------------
# Warm pools
# ----------------------------------------------------------------------
class WorkerPool:
    """A reusable fleet of protocol workers plus their preload caches.

    The pool owns three things the old spawn-per-execute backend paid
    for on every dispatch:

    * the worker subprocesses themselves (``spawned_total`` counts every
      spawn over the pool's lifetime, so tests can assert a second
      ``execute()`` spawned zero);
    * the dispatcher-side **trace payload cache** — each ``(bench,
      seed)`` group's ``.rtrace`` bytes are exported and base64-encoded
      once, then shipped to however many workers need them;
    * each worker's record of what it already holds
      (:attr:`_PoolWorker.preloaded`), so re-running a campaign
      re-sends nothing.

    Workers live in *slots*: slot *i* is driven by dispatcher thread *i*
    during an ``execute()``, and a worker that dies is replaced in its
    slot on demand.  Pools are cheap to create empty — processes only
    spawn when :meth:`ensure` / :meth:`worker_at` need them.

    *remote* adopts already-running listen-mode workers
    (``repro-sim dist worker --listen``) by ``HOST:PORT`` address: slot
    *i* for ``i < len(remote)`` is a socket connection to ``remote[i]``
    (re-established on demand after a drop; ``connects_total`` counts
    every successful connect) and only the slots beyond the remote list
    spawn local subprocesses.  The pool *borrows* remote workers — its
    :meth:`shutdown` closes their connections but leaves the processes
    listening for the next dispatcher, unless ``stop_remote=True``.
    """

    def __init__(
        self,
        command: Optional[Sequence[str]] = None,
        remote: Sequence[str] = (),
    ):
        self.command = list(command) if command else stdio_worker_command()
        self.remote: List[str] = [str(address) for address in remote]
        for address in self.remote:
            parse_address(address, source="remote worker address")
        self.spawned_total = 0
        self.connects_total = 0
        self._workers: List[Optional[_PoolWorker]] = []
        self._lock = threading.Lock()
        self._slot_locks: Dict[int, threading.RLock] = {}
        self._payloads: Dict[Tuple[str, int], Tuple[int, Optional[str]]] = {}
        self._payload_lock = threading.Lock()

    # -- worker lifecycle ----------------------------------------------
    def slot_lock(self, slot: int) -> threading.RLock:
        """The per-slot request lock.

        A slot's channel matches replies to requests by id, so only one
        thread may run a request cycle on it at a time.  Dispatcher
        threads hold their slot's lock per chunk; out-of-band users
        (``stats``, the serve daemon's heartbeat) try-acquire and skip
        busy slots instead of corrupting the stream.
        """
        with self._lock:
            lock = self._slot_locks.get(slot)
            if lock is None:
                lock = self._slot_locks[slot] = threading.RLock()
            return lock

    def _connect(self, slot: int) -> _PoolWorker:
        """Spawn (local slot) or connect (remote slot) a worker.

        Raises :class:`PeerClosed` when a remote slot's worker is not
        reachable — callers treat that like any other worker failure.
        """
        if slot < len(self.remote):
            worker = _PoolWorker(SocketTransport(self.remote[slot]))
            self.connects_total += 1
            metrics.counter("pool.connects_total").inc()
            _log.info(
                "pool.connect", slot=slot, address=self.remote[slot]
            )
            return worker
        self.spawned_total += 1
        metrics.counter("pool.spawned_total").inc()
        _log.info("pool.spawn", slot=slot)
        return _PoolWorker(
            StdioTransport(self.command, env=worker_environment())
        )

    def ensure(self, n: int) -> None:
        """Grow the pool to at least *n* live workers.

        Remote slots are best-effort here: a worker that is not up yet
        is retried on demand by :meth:`worker_at` (and its chunks are
        handed to reachable slots by the dispatcher's retry machinery).
        """
        with self._lock:
            while len(self._workers) < n:
                self._workers.append(None)
            for slot in range(n):
                worker = self._workers[slot]
                if worker is None or not worker.alive():
                    if worker is not None:
                        worker.close()
                        self._workers[slot] = None
                    try:
                        self._workers[slot] = self._connect(slot)
                    except PeerClosed:
                        if slot >= len(self.remote):
                            raise

    @property
    def size(self) -> int:
        """Live workers currently in the pool."""
        return sum(
            1 for w in self._workers if w is not None and w.alive()
        )

    def worker_at(self, slot: int) -> _PoolWorker:
        """The live worker in *slot*, spawning/reconnecting if needed.

        Raises :class:`PeerClosed` when a remote slot cannot be
        (re)connected.
        """
        with self._lock:
            while len(self._workers) <= slot:
                self._workers.append(None)
            worker = self._workers[slot]
            if worker is None or not worker.alive():
                if worker is not None:
                    worker.close()
                    self._workers[slot] = None
                worker = self._connect(slot)
                self._workers[slot] = worker
            return worker

    def discard(self, slot: int) -> None:
        """Close and forget the worker in *slot* (it died or hung)."""
        with self._lock:
            if slot < len(self._workers) and self._workers[slot] is not None:
                self._workers[slot].close()
                self._workers[slot] = None
                metrics.counter("pool.discards_total").inc()
                _log.warning("pool.discard", slot=slot)

    def shutdown(self, stop_remote: bool = False) -> None:
        """Stop every local worker and empty the pool.

        Remote workers only get their connection closed (they go back to
        listening for the next dispatcher) unless *stop_remote* sends
        them the ``shutdown`` op too — that is the serve daemon's
        stop-the-fleet path.
        """
        with self._lock:
            workers, self._workers = self._workers, []
        for slot, worker in enumerate(workers):
            if worker is None:
                continue
            try:
                if worker.alive() and (
                    stop_remote or slot >= len(self.remote)
                ):
                    worker.request("shutdown", timeout=2)
            except (_WorkerDied, _WorkerTimeout):
                pass
            worker.close()

    # -- trace payloads ------------------------------------------------
    def trace_payload(
        self, key: Tuple[str, int], needed: int
    ) -> Optional[Tuple[int, str]]:
        """``(records, base64)`` for group *key*, exported at most once.

        Returns ``None`` when the dispatcher cannot materialise the
        trace (unknown bench, generator error...) — the worker then
        falls back to by-name resolution, which reports the same
        problem deterministically if it is real.  Failed exports are
        cached too, so a campaign over an unresolvable bench does not
        re-attempt the export per chunk.
        """
        bench, seed = key
        with self._payload_lock:
            cached = self._payloads.get(key)
            if cached is not None and cached[0] >= needed:
                return None if cached[1] is None else cached
            try:
                from ..scenarios.rtrace import export_trace_bytes
                from ..workloads import workload

                data, _ = export_trace_bytes(
                    workload(bench, seed=seed), needed
                )
            except Exception:  # noqa: BLE001 — preload is best-effort
                self._payloads[key] = (needed, None)
                return None
            entry = (needed, base64.b64encode(data).decode("ascii"))
            self._payloads[key] = entry
            return entry

    # -- observability -------------------------------------------------
    def stats(self, timeout: Optional[float] = 10) -> Dict[str, object]:
        """Pool totals plus each worker's ``stats`` op reply.

        Every entry carries the transport/address columns, so remote and
        local workers are distinguishable in status displays; a remote
        slot that is currently unreachable still appears (``alive``
        false), and a slot busy serving a dispatcher thread is reported
        ``busy`` instead of having its reply stream corrupted.
        """
        per_worker: List[Dict[str, object]] = []
        with self._lock:
            workers = list(enumerate(self._workers))
        for slot, worker in workers:
            if worker is None or not worker.alive():
                if slot < len(self.remote):
                    per_worker.append({
                        "transport": "socket",
                        "address": self.remote[slot],
                        "alive": False,
                    })
                continue
            lock = self.slot_lock(slot)
            if not lock.acquire(timeout=0.5):
                per_worker.append({**worker.describe(), "busy": True})
                continue
            try:
                reply = worker.request("stats", timeout=timeout)
            except (_WorkerDied, _WorkerTimeout):
                continue
            finally:
                lock.release()
            if reply.get("ok"):
                per_worker.append({
                    **worker.describe(),
                    **{k: v for k, v in reply.items()
                       if k not in ("id", "ok")},
                })
        def total(field: str) -> int:
            return sum(int(w.get(field, 0)) for w in per_worker)

        return {
            "size": self.size,
            "spawned_total": self.spawned_total,
            "connects_total": self.connects_total,
            "remote_addresses": list(self.remote),
            "trace_payloads": len(self._payloads),
            "points_served": total("points_served"),
            "batches": total("batches"),
            "preloads": total("preloads"),
            "trace_cache_hits": total("trace_cache_hits"),
            "trace_cache_misses": total("trace_cache_misses"),
            "result_cache_hits": total("result_cache_hits"),
            "workers": per_worker,
        }


#: Process-lifetime pools shared by every warm WorkerBackend, keyed by
#: worker argv + remote fleet so test backends with injected commands or
#: different remote addresses never share workers.  Torn down atexit.
_SHARED_POOLS: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], WorkerPool] = {}
_SHARED_POOLS_LOCK = threading.Lock()


def shared_pool(
    command: Optional[Sequence[str]] = None,
    remote: Sequence[str] = (),
) -> WorkerPool:
    """The process-wide :class:`WorkerPool` for *command* (created lazily).

    This is what makes the warm backend warm across ``execute()`` calls,
    campaign resumes and repeated :func:`repro.run` invocations in one
    process: every ``WorkerBackend(warm=True)`` resolves to the same
    pool, whose workers and preloaded traces survive between campaigns.
    """
    argv = tuple(command) if command else tuple(stdio_worker_command())
    key = (argv, tuple(str(address) for address in remote))
    with _SHARED_POOLS_LOCK:
        pool = _SHARED_POOLS.get(key)
        if pool is None:
            pool = WorkerPool(list(argv), remote=list(key[1]))
            _SHARED_POOLS[key] = pool
        return pool


def shutdown_shared_pools() -> None:
    """Stop every shared pool's workers (registered atexit)."""
    with _SHARED_POOLS_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_shared_pools)


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
#: Distinguishes "argument not given" (fall back to the environment
#: knob) from an explicit ``timeout=None`` (wait forever).
_UNSET = object()

#: A unit of dispatch: one same-trace chunk plus its retry count and the
#: trace context of the attempt that failed before it (``None`` for a
#: first attempt) — a retry's dispatch span nests under the failure it
#: is retrying, so ``trace show`` renders retries as child spans.
_Chunk = Tuple[
    int, Tuple[str, int], int, List[Tuple[int, object]], Optional[dict]
]


class _TaskBoard:
    """Per-slot chunk lists with work stealing.

    Each dispatcher thread drains its own slot's list first (keeping
    chunk→worker affinity deterministic run over run, which is what
    makes the workers' caches effective on a re-run) and steals from
    the fullest other slot once its own is empty.
    """

    def __init__(self, n_slots: int):
        self._pending: List[List[_Chunk]] = [[] for _ in range(n_slots)]
        self._lock = threading.Lock()

    def put(self, slot: int, chunk: _Chunk) -> None:
        with self._lock:
            self._pending[slot].append(chunk)

    def put_next(self, slot: int, chunk: _Chunk) -> None:
        """Queue *chunk* on the slot after *slot* (mod the slot count).

        Used when *slot*'s worker is unreachable: the chunk must land
        where a different (hopefully live) worker will drain or steal
        it, not back on the slot that just failed.
        """
        with self._lock:
            self._pending[(slot + 1) % len(self._pending)].append(chunk)

    def take(self, slot: int) -> Optional[_Chunk]:
        with self._lock:
            if self._pending[slot]:
                return self._pending[slot].pop(0)
            victim = max(self._pending, key=len)
            if victim:
                return victim.pop()
            return None


def _chunks_for_groups(
    groups: Sequence[Sequence[Tuple[int, object]]], n_workers: int
) -> List[_Chunk]:
    """Split shared-trace groups into dispatchable same-trace chunks.

    Each chunk stays inside one ``(bench, seed)`` group (one preload
    covers it), but a group larger than its fair share is split so idle
    workers help instead of watching — the fix for the jobs>groups
    inversion.  The chunk count per group is proportional to the
    group's weight in the grid, at least 1, at most the group size.
    """
    total = sum(len(group) for group in groups)
    chunks: List[_Chunk] = []
    for group in groups:
        needed = max(
            point.warmup + point.n_instructions for _, point in group
        )
        key = group[0][1].trace_key
        n_chunks = max(1, round(n_workers * len(group) / total))
        n_chunks = min(n_chunks, len(group))
        base, extra = divmod(len(group), n_chunks)
        start = 0
        for i in range(n_chunks):
            size = base + (1 if i < extra else 0)
            chunks.append(
                (0, key, needed, list(group[start:start + size]), None)
            )
            start += size
    return chunks


class WorkerBackend(ExecutionBackend):
    """Dispatch points to a (warm) pool of protocol workers.

    Parameters
    ----------
    timeout:
        Per-point reply timeout in seconds (``None`` = wait forever).
        Batches get ``timeout * len(batch)``; a timed-out worker is
        killed and the batch retried.  Defaults to the
        ``REPRO_DIST_TIMEOUT`` environment knob (itself default
        "no timeout").
    retries:
        How many *additional* attempts a chunk of points gets after a
        worker death or timeout.  Error replies are deterministic
        failures and are never retried.  Defaults to the
        ``REPRO_DIST_RETRIES`` environment knob (itself default 1).
    command:
        Override the worker argv (tests inject crashing commands).
    remote:
        ``HOST:PORT`` addresses of already-running listen-mode workers
        to adopt.  The first ``len(remote)`` pool slots connect there
        instead of spawning subprocesses; set ``jobs`` to the remote
        count to use only remote workers.
    warm:
        ``True`` (default): dispatch through the process-lifetime
        :func:`shared_pool`, whose workers and preloaded traces persist
        across ``execute()`` calls — steady-state dispatch costs a JSON
        round trip.  ``False``: spawn a private pool for this call and
        shut it down afterwards (the old cold-spawn behaviour, kept
        measurable for the benchmark trajectory).
    pool:
        An explicit :class:`WorkerPool` to dispatch through (overrides
        *warm*; the caller owns its lifetime).  Fault-injection tests
        use this to control exactly when workers spawn.
    """

    name = "worker"
    #: Preloaded traces free points from group affinity, so the engine
    #: may size parallelism by points, not by shared-trace groups.
    splits_groups = True

    def __init__(
        self,
        timeout=_UNSET,
        retries=_UNSET,
        command: Optional[Sequence[str]] = None,
        remote: Sequence[str] = (),
        warm: bool = True,
        pool: Optional[WorkerPool] = None,
    ):
        self.timeout = (
            timeout_from_env() if timeout is _UNSET
            else coerce_timeout(timeout)
        )
        self.retries = (
            retries_from_env() if retries is _UNSET
            else coerce_retries(retries)
        )
        self.command = list(command) if command else stdio_worker_command()
        self.remote = [str(address) for address in remote]
        for address in self.remote:
            parse_address(address, source="remote worker address")
        self.warm = bool(warm)
        self.pool = pool

    def _resolve_pool(self) -> Tuple[WorkerPool, bool]:
        """The pool to dispatch through and whether this call owns it."""
        if self.pool is not None:
            return self.pool, False
        if self.warm:
            return shared_pool(self.command, remote=self.remote), False
        return WorkerPool(self.command, remote=self.remote), True

    def execute(self, points, jobs: int = 1) -> Payload:
        from ..analysis.campaign import grouped_points

        jobs = coerce_jobs(jobs)
        groups = grouped_points(points)
        if not groups:
            return []
        n_workers = min(jobs, len(points))
        pool, owned = self._resolve_pool()
        # Chunk i is affine to slot i % n_workers: re-running the same
        # grid sends each spec back to the worker that served it last
        # time (whose memo and pinned trace cover it).  Idle dispatcher
        # threads steal from the busiest slot, so affinity never leaves
        # a worker idle while work remains.
        tasks = _TaskBoard(n_workers)
        for i, chunk in enumerate(_chunks_for_groups(groups, n_workers)):
            tasks.put(i % n_workers, chunk)
        results: Dict[int, object] = {}
        errors: Dict[int, str] = {}
        metas: Dict[int, dict] = {}
        # The ambient campaign span, captured on this thread — drain
        # threads get its wire context explicitly (thread-locals do not
        # cross thread starts).
        parent_ctx = tracing.current_context()
        try:
            pool.ensure(n_workers)
            threads = [
                threading.Thread(
                    target=self._drain,
                    args=(pool, slot, tasks, results, errors, metas,
                          parent_ctx),
                )
                for slot in range(n_workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            if owned:
                pool.shutdown()
        missing = [
            index
            for index, _ in (pair for group in groups for pair in group)
            if index not in results and index not in errors
        ]
        if missing:
            raise DistError(
                f"worker backend lost {len(missing)} point(s) "
                f"(indexes {missing[:5]}...)"
            )
        return [
            (index, results.get(index), errors.get(index),
             metas.get(index))
            for group in groups
            for index, _ in group
        ]

    # ------------------------------------------------------------------
    def _preload(
        self,
        pool: WorkerPool,
        worker: _PoolWorker,
        key: Tuple[str, int],
        needed: int,
        parent: Optional[tracing.Span] = None,
    ) -> None:
        """Pin *key*'s trace on *worker* unless it already covers it.

        Export failures downgrade to by-name resolution; worker
        death/timeout propagates so the chunk is retried like any other
        worker failure.  When a preload is actually sent it gets its own
        span under the dispatch span, so ``trace show`` attributes
        first-touch trace-shipping cost separately from the batch.
        """
        if worker.preloaded.get(key, -1) >= needed:
            return
        payload = pool.trace_payload(key, needed)
        if payload is None:
            return
        records, encoded = payload
        span = tracing.start_span(
            "preload", parent=parent, bench=key[0], seed=key[1],
            records=records,
        )
        try:
            reply = worker.request(
                "preload",
                timeout=self.timeout,
                trace=span.context(),
                bench=key[0],
                seed=key[1],
                records=records,
                rtrace=encoded,
            )
        except Exception as err:
            span.end(status="error", error=str(err))
            raise
        span.end()
        if reply.get("ok"):
            worker.preloaded[key] = records

    def _drain(
        self, pool, slot, tasks, results, errors, metas, parent_ctx
    ) -> None:
        """One dispatcher thread: drive the worker in *slot* over chunks.

        Every attempt at a chunk is one ``dispatch`` span: first
        attempts hang off the campaign span (*parent_ctx*), retries hang
        off the failed attempt's span, so the trace tree shows exactly
        which failure each retry answered.  The span's context rides the
        ``batch-run`` request, making the worker's own span its child.
        """
        from ..analysis.campaign import _result_from_dict

        while True:
            task = tasks.take(slot)
            if task is None:
                return
            attempts, key, needed, chunk, retry_of = task
            span = tracing.start_span(
                "dispatch",
                parent=retry_of or parent_ctx,
                slot=slot,
                attempt=attempts + 1,
                bench=key[0],
                seed=key[1],
                points=len(chunk),
            )
            metrics.counter("dispatch.chunks_total").inc()
            try:
                worker = pool.worker_at(slot)
            except _WorkerDied as err:
                # Remote slot with no reachable worker.  Hand the chunk
                # to the next slot so a live worker drains or steals it
                # (the brief pause keeps this thread from stealing it
                # straight back before anyone else can), and burn an
                # attempt so a fully unreachable fleet terminates with
                # per-point errors instead of looping.
                span.end(status="error", error=str(err))
                if attempts < self.retries:
                    metrics.counter("dispatch.retries_total").inc()
                    tasks.put_next(
                        slot,
                        (attempts + 1, key, needed, chunk, span.context()),
                    )
                    time.sleep(0.2)
                else:
                    message = (
                        f"worker failed after {attempts + 1} "
                        f"attempt(s): {type(err).__name__}: {err} "
                        f"[trace {span.trace_id}]"
                    )
                    for index, _ in chunk:
                        errors[index] = message
                continue
            batch_span = None
            try:
                with pool.slot_lock(slot):
                    self._preload(pool, worker, key, needed, parent=span)
                    batch_timeout = (
                        self.timeout * len(chunk)
                        if self.timeout is not None
                        else None
                    )
                    batch_span = span.child("batch-run", points=len(chunk))
                    reply = worker.request(
                        "batch-run",
                        timeout=batch_timeout,
                        trace=batch_span.context(),
                        specs=[
                            point.spec().to_dict() for _, point in chunk
                        ],
                    )
            except (_WorkerDied, _WorkerTimeout) as err:
                pool.discard(slot)
                if batch_span is not None:
                    batch_span.end(status="error", error=type(err).__name__)
                span.end(status="error", error=str(err))
                _log.warning(
                    "dispatch.worker-failed",
                    slot=slot,
                    attempt=attempts + 1,
                    trace_id=span.trace_id,
                    error=f"{type(err).__name__}: {err}"[:300],
                )
                if attempts < self.retries:
                    metrics.counter("dispatch.retries_total").inc()
                    # Retried chunk goes back on this slot's list so
                    # its replacement worker (or a stealing peer) can
                    # pick it up.
                    tasks.put(
                        slot,
                        (attempts + 1, key, needed, chunk, span.context()),
                    )
                else:
                    message = (
                        f"worker failed after {attempts + 1} "
                        f"attempt(s): {type(err).__name__}: {err} "
                        f"[trace {span.trace_id}]"
                    )
                    for index, _ in chunk:
                        errors[index] = message
                continue
            # Worker-side spans ride the reply; record them here so the
            # dispatcher's log holds the whole tree even for remote
            # workers whose own log lives on another host.
            for record in reply.get("spans") or ():
                tracing.record_span(record)
            batch_span.end()
            if not reply.get("ok"):
                # A malformed batch reply is deterministic: report it
                # for every point rather than retrying forever.
                span.end(status="error", error="worker error reply")
                message = str(reply.get("error", "worker error reply"))
                for index, _ in chunk:
                    errors[index] = message
                continue
            span.end()
            items = reply.get("results") or []
            for (index, _), item in zip(chunk, items):
                if item.get("ok"):
                    results[index] = _result_from_dict(
                        dict(item["result"])
                    )
                    timing = {
                        k: item[k]
                        for k in ("elapsed_seconds", "resolve_seconds",
                                  "simulate_seconds")
                        if k in item
                    }
                    if timing:
                        metas[index] = timing
                else:
                    errors[index] = str(
                        item.get("error", "worker error reply")
                    )
