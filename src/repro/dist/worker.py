"""The ``worker`` backend: persistent subprocesses + JSON-lines protocol.

The backend spawns ``jobs`` persistent ``repro-sim dist worker --stdio``
subprocesses and speaks a line-oriented JSON request/response protocol to
them over stdin/stdout.  This is deliberately the smallest protocol a
*multi-host* dispatcher needs — a future SSH/socket dispatcher reuses the
exact same messages, only the transport changes.

Protocol (one JSON document per line, UTF-8):

* request ``{"id": N, "op": "run", "spec": {...}}`` — ``spec`` is a
  :class:`~repro.spec.RunSpec` dict; the worker executes it through the
  :func:`repro.run` facade and replies
  ``{"id": N, "ok": true, "result": {...}}`` with the
  :class:`~repro.pipeline.SimResult` as a plain dict;
* request ``{"id": N, "op": "ping"}`` — liveness check; the reply echoes
  the protocol version;
* request ``{"id": N, "op": "shutdown"}`` — acknowledged reply, then the
  worker exits.  Closing the worker's stdin (EOF) shuts it down too.

Any failure to *execute* a point (unknown scheme, simulation error...)
is an ``{"ok": false, "error": traceback}`` reply — deterministic, so it
is never retried.  A malformed request (bad JSON, unknown op, missing
``spec``) also gets an error reply and the worker keeps serving: one
corrupt line must not poison a long-lived worker.

Fault tolerance lives in the dispatcher: a worker that dies mid-point or
exceeds the per-point ``timeout`` is killed and respawned, and the point
is retried (``retries`` times) on whichever worker next drains the
queue.  Retry is safe precisely because execution is deterministic —
a retried point cannot yield a different result, only the same one
later.

One scope limit: workers are fresh interpreters, so a bench must be
resolvable *by name* in a new process — registered profiles and the
built-in families qualify, but workloads registered at runtime with
:func:`repro.scenarios.register_trace` live only in the dispatching
process and fail with a deterministic error reply.  Campaigns over
imported traces belong on the ``dirqueue`` backend, whose packager
ships the ``.rtrace`` files to its workers.

Two environment knobs exist purely for fault-injection tests and ops
drills: ``REPRO_DIST_CRASH_FLAG`` / ``REPRO_DIST_HANG_FLAG`` name flag
files; a worker that sees its flag file before executing a ``run``
request deletes the file and crashes (``os._exit``) or hangs
(``REPRO_DIST_HANG_SECONDS``, default 30) — exactly once, since the
flag is consumed.
"""

from __future__ import annotations

import json
import os
import queue
import subprocess
import sys
import threading
import traceback
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DistError
from .backends import ExecutionBackend, Payload, coerce_jobs

#: Protocol major version, echoed by ``ping`` replies.
PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Worker side (runs inside `repro-sim dist worker --stdio`)
# ----------------------------------------------------------------------
def _fault_injection() -> None:
    """Consume a crash/hang flag file if one is configured and present."""
    crash = os.environ.get("REPRO_DIST_CRASH_FLAG")
    if crash and os.path.exists(crash):
        os.remove(crash)
        os._exit(3)
    hang = os.environ.get("REPRO_DIST_HANG_FLAG")
    if hang and os.path.exists(hang):
        os.remove(hang)
        import time

        time.sleep(float(os.environ.get("REPRO_DIST_HANG_SECONDS", "30")))


def handle_request(line: str) -> Tuple[Optional[dict], bool]:
    """Process one protocol line; returns ``(reply, keep_serving)``.

    Never raises: every failure mode becomes an error reply so the
    dispatcher can tell a *point* failure (deterministic, reported) from
    a *worker* failure (process death, retried).
    """
    request_id = None
    try:
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError(f"request must be an object, got {request!r}")
        request_id = request.get("id")
        op = request.get("op")
        if op == "ping":
            return {"id": request_id, "ok": True,
                    "protocol": PROTOCOL_VERSION}, True
        if op == "shutdown":
            return {"id": request_id, "ok": True, "bye": True}, False
        if op != "run":
            raise ValueError(f"unknown op {op!r}")
        if "spec" not in request:
            raise ValueError("run request is missing 'spec'")
        from ..spec.facade import execute
        from ..spec.specs import RunSpec

        spec = RunSpec.from_dict(request["spec"])
        _fault_injection()
        result = execute(spec)
        return {"id": request_id, "ok": True,
                "result": asdict(result)}, True
    except Exception:  # noqa: BLE001 — every failure becomes a reply
        return {
            "id": request_id,
            "ok": False,
            "error": traceback.format_exc(),
        }, True


def serve(stdin=None, stdout=None) -> int:
    """Worker main loop: read requests line by line until EOF/shutdown."""
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    for line in stdin:
        if not line.strip():
            continue
        reply, keep_serving = handle_request(line)
        stdout.write(json.dumps(reply, separators=(",", ":")) + "\n")
        stdout.flush()
        if not keep_serving:
            break
    return 0


# ----------------------------------------------------------------------
# Dispatcher side
# ----------------------------------------------------------------------
def worker_environment() -> Dict[str, str]:
    """Environment for spawned workers: this repro on the PYTHONPATH.

    The dispatcher may itself run from a source checkout that is not
    installed; workers must import the same code.
    """
    import repro

    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src if not existing else src + os.pathsep + existing
    )
    return env


def stdio_worker_command() -> List[str]:
    """Argv for one protocol worker subprocess."""
    return [sys.executable, "-m", "repro.cli", "dist", "worker", "--stdio"]


class _WorkerDied(Exception):
    """The worker subprocess exited (EOF on its stdout)."""


class _WorkerTimeout(Exception):
    """No reply within the per-point timeout."""


class _WorkerProcess:
    """One protocol subprocess plus a reader thread for timed receives."""

    def __init__(self, command: Sequence[str]):
        self.proc = subprocess.Popen(
            list(command),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            env=worker_environment(),
        )
        self._lines: "queue.Queue[Optional[str]]" = queue.Queue()
        self._next_id = 0
        reader = threading.Thread(target=self._pump, daemon=True)
        reader.start()

    def _pump(self) -> None:
        try:
            for line in self.proc.stdout:
                self._lines.put(line)
        finally:
            self._lines.put(None)  # EOF sentinel

    def request(self, op: str, timeout: Optional[float] = None, **fields):
        """Send one request and wait for its reply."""
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, "op": op, **fields}
        try:
            self.proc.stdin.write(
                json.dumps(message, separators=(",", ":")) + "\n"
            )
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as err:
            raise _WorkerDied(str(err)) from None
        try:
            line = self._lines.get(timeout=timeout)
        except queue.Empty:
            raise _WorkerTimeout(
                f"no reply within {timeout:g}s"
            ) from None
        if line is None:
            raise _WorkerDied(
                f"worker exited with code {self.proc.poll()}"
            )
        try:
            reply = json.loads(line)
        except ValueError:
            raise _WorkerDied(f"non-protocol output {line!r}") from None
        if reply.get("id") != request_id:
            raise _WorkerDied(
                f"reply id {reply.get('id')!r} does not match "
                f"request id {request_id}"
            )
        return reply

    def close(self) -> None:
        """Terminate the subprocess (best-effort graceful, then kill)."""
        try:
            if self.proc.poll() is None:
                self.proc.stdin.close()
                try:
                    self.proc.wait(timeout=2)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()
        except OSError:
            self.proc.kill()


class WorkerBackend(ExecutionBackend):
    """Dispatch points to persistent protocol workers, with retries.

    Parameters
    ----------
    timeout:
        Per-point reply timeout in seconds (``None`` = wait forever).
        A timed-out worker is killed and the point retried.
    retries:
        How many *additional* attempts a point gets after a worker death
        or timeout.  Error replies are deterministic failures and are
        never retried.
    command:
        Override the worker argv (tests inject crashing commands).
    """

    name = "worker"

    def __init__(
        self,
        timeout: Optional[float] = None,
        retries: int = 1,
        command: Optional[Sequence[str]] = None,
    ):
        self.timeout = timeout
        self.retries = int(retries)
        self.command = list(command) if command else stdio_worker_command()

    def execute(self, points, jobs: int = 1) -> Payload:
        from ..analysis.campaign import grouped_points

        jobs = coerce_jobs(jobs)
        groups = grouped_points(points)
        if not groups:
            return []
        # One task per shared-trace group: all of a group's points go to
        # one worker consecutively so its workload cache is hit by every
        # point after the first.  Retried points travel as their own
        # (possibly shorter) task.
        tasks: "queue.Queue[List[Tuple[int, int, object]]]" = queue.Queue()
        for group in groups:
            tasks.put([(0, index, point) for index, point in group])
        results: Dict[int, object] = {}
        errors: Dict[int, str] = {}
        n_workers = min(jobs, len(groups))
        threads = [
            threading.Thread(
                target=self._drain, args=(tasks, results, errors)
            )
            for _ in range(n_workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        missing = [
            index
            for index, _ in (pair for group in groups for pair in group)
            if index not in results and index not in errors
        ]
        if missing:
            raise DistError(
                f"worker backend lost {len(missing)} point(s) "
                f"(indexes {missing[:5]}...)"
            )
        return [
            (index, results.get(index), errors.get(index))
            for group in groups
            for index, _ in group
        ]

    # ------------------------------------------------------------------
    def _drain(self, tasks, results, errors) -> None:
        """One dispatcher thread: own a worker, pull tasks, retry deaths."""
        from ..analysis.campaign import _result_from_dict

        worker: Optional[_WorkerProcess] = None
        try:
            while True:
                try:
                    pending = tasks.get_nowait()
                except queue.Empty:
                    return
                while pending:
                    attempts, index, point = pending[0]
                    if worker is None:
                        worker = _WorkerProcess(self.command)
                    try:
                        reply = worker.request(
                            "run",
                            timeout=self.timeout,
                            spec=point.spec().to_dict(),
                        )
                    except (_WorkerDied, _WorkerTimeout) as err:
                        worker.close()
                        worker = None
                        rest = pending[1:]
                        if attempts < self.retries:
                            # Retried point first so any worker (this
                            # thread's replacement or an idle peer) can
                            # pick it up; its group mates follow.
                            tasks.put(
                                [(attempts + 1, index, point)] + rest
                            )
                        else:
                            errors[index] = (
                                f"worker failed after {attempts + 1} "
                                f"attempt(s): {type(err).__name__}: {err}"
                            )
                            if rest:
                                tasks.put(rest)
                        pending = []
                        break
                    if reply.get("ok"):
                        results[index] = _result_from_dict(
                            dict(reply["result"])
                        )
                    else:
                        errors[index] = str(
                            reply.get("error", "worker error reply")
                        )
                    pending = pending[1:]
        finally:
            if worker is not None:
                try:
                    worker.request("shutdown", timeout=2)
                except (_WorkerDied, _WorkerTimeout):
                    pass
                worker.close()
