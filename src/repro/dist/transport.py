"""Byte-stream transports for the JSON-lines worker protocol.

The protocol-v2 worker (:mod:`repro.dist.worker`) only ever needs a
connected byte stream that carries one JSON document per line in each
direction.  This module abstracts *which* byte stream behind a
:class:`Transport` interface so the same dispatcher machinery drives

* :class:`StdioTransport` — a local ``repro-sim dist worker --stdio``
  subprocess via its stdin/stdout pipes (the classic warm-pool worker),
  with stderr captured into a bounded tail for crash forensics;
* :class:`SocketTransport` — a TCP connection to a remote
  ``repro-sim dist worker --listen HOST:PORT`` process (or to a
  ``repro-sim dist serve`` daemon, which speaks a JSON-lines service
  protocol over the same transport).

Failure modes are normalised so the dispatcher's retry machinery never
cares about the transport kind:

* the peer closing the stream (process exit, TCP FIN/RST) surfaces as
  ``recv_line() -> None`` and, from :class:`LineChannel`, a
  :class:`PeerClosed` — the worker died, retry elsewhere;
* a **partial line** at EOF (the peer died mid-reply, or the connection
  was cut between segments) is *never* delivered as data; the fragment
  is noted in :meth:`Transport.death_message` instead, so a half-written
  JSON document cannot be mistaken for a protocol reply;
* a **half-open** connection (the peer vanished without FIN — host
  power-off, dropped NAT entry) produces no EOF at all; it manifests as
  a reply timeout (:class:`PeerTimeout`), which the dispatcher already
  treats as "kill and retry".  Idle half-open peers are caught by the
  heartbeat ping the serve daemon sends between dispatches.

:class:`LineChannel` adds the request/reply discipline both protocols
share: monotonically increasing ``id`` fields, one reply per request,
reply-id matching, JSON decode guarding.
"""

from __future__ import annotations

import collections
import json
import queue
import socket
import subprocess
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, DistError


class TransportError(DistError):
    """A transport-level failure (connect, send, malformed stream)."""


class PeerClosed(TransportError):
    """The peer closed the stream (process exit, EOF, broken pipe)."""


class PeerTimeout(TransportError):
    """No reply arrived within the allowed time (possibly half-open)."""


def parse_address(
    text: str, source: str = "address", default_host: str = "127.0.0.1"
) -> Tuple[str, int]:
    """``(host, port)`` from a ``HOST:PORT`` string, validated.

    The host part may be empty (``:7731``), in which case *default_host*
    is used — ``127.0.0.1`` for connecting, ``0.0.0.0`` passed by listen
    paths that should accept from anywhere.  Port 0 is allowed (bind to
    an ephemeral port); anything non-numeric or out of range raises
    :class:`~repro.errors.ConfigError` naming *source*.
    """
    if not isinstance(text, str) or ":" not in text:
        raise ConfigError(
            f"{source} must look like HOST:PORT, got {text!r}"
        )
    host, _, port_text = text.rpartition(":")
    host = host or default_host
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError(
            f"{source} port must be an integer, got {port_text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ConfigError(
            f"{source} port must be in [0, 65535], got {port}"
        )
    return host, port


def format_address(address: Tuple[str, int]) -> str:
    """Inverse of :func:`parse_address`."""
    return f"{address[0]}:{address[1]}"


class Transport:
    """A connected, line-oriented byte stream to one protocol peer."""

    #: Registry-style tag (``stdio``/``socket``) for status displays.
    kind: str = "?"
    #: Human-readable peer address (pid for subprocesses, host:port
    #: for sockets) — the `dist pool status` address column.
    address: str = "?"

    def send_line(self, line: str) -> None:
        """Write one protocol line (no trailing newline) to the peer.

        Raises :class:`PeerClosed` when the stream is gone.
        """
        raise NotImplementedError

    def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        """The next complete line from the peer, or ``None`` on EOF.

        Raises :class:`PeerTimeout` when nothing arrives in *timeout*
        seconds.  A partial line at EOF is never returned as data — it
        is recorded for :meth:`death_message` instead.
        """
        raise NotImplementedError

    def alive(self) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def stderr_tail(self) -> str:
        """Captured stderr tail, where the transport has one (stdio)."""
        return ""

    def death_message(self) -> str:
        """Post-mortem description for dispatcher error messages."""
        return f"{self.kind} peer {self.address} closed the stream"

    def describe(self) -> Dict[str, object]:
        """Status-display fields (the transport/address columns)."""
        return {"transport": self.kind, "address": self.address}


#: How many trailing stderr lines a stdio transport keeps.
_STDERR_TAIL_LINES = 30


class StdioTransport(Transport):
    """A worker subprocess driven over its stdin/stdout pipes.

    stdout is the protocol channel; stderr is captured into a bounded
    tail buffer so a crashing worker's traceback can be attached to the
    dispatcher-side failure message instead of interleaving with the
    dispatcher's own console.
    """

    kind = "stdio"

    def __init__(
        self,
        command: Sequence[str],
        env: Optional[Dict[str, str]] = None,
    ):
        self.proc = subprocess.Popen(
            list(command),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.address = f"pid:{self.proc.pid}"
        self._lines: "queue.Queue[Optional[str]]" = queue.Queue()
        self._stderr: "collections.deque[str]" = collections.deque(
            maxlen=_STDERR_TAIL_LINES
        )
        threading.Thread(target=self._pump, daemon=True).start()
        self._stderr_reader = threading.Thread(
            target=self._pump_stderr, daemon=True
        )
        self._stderr_reader.start()

    def _pump(self) -> None:
        try:
            for line in self.proc.stdout:
                self._lines.put(line)
        finally:
            self._lines.put(None)  # EOF sentinel

    def _pump_stderr(self) -> None:
        for line in self.proc.stderr:
            self._stderr.append(line.rstrip("\n"))

    def send_line(self, line: str) -> None:
        try:
            self.proc.stdin.write(line + "\n")
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as err:
            raise PeerClosed(f"{err} ({self.death_message()})") from None

    def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        try:
            return self._lines.get(timeout=timeout)
        except queue.Empty:
            raise PeerTimeout(f"no reply within {timeout:g}s") from None

    def alive(self) -> bool:
        return self.proc.poll() is None

    def stderr_tail(self) -> str:
        return "\n".join(self._stderr)

    def death_message(self) -> str:
        # The process is exiting: give it a moment to flush stderr so
        # the traceback makes it into the message.
        try:
            self.proc.wait(timeout=2)
        except subprocess.TimeoutExpired:
            pass
        self._stderr_reader.join(timeout=1)
        message = f"worker exited with code {self.proc.poll()}"
        tail = self.stderr_tail()
        if tail:
            message += f"; stderr tail:\n{tail}"
        return message

    def close(self) -> None:
        """Terminate the subprocess (best-effort graceful, then kill)."""
        try:
            if self.proc.poll() is None:
                self.proc.stdin.close()
                try:
                    self.proc.wait(timeout=2)
                except subprocess.TimeoutExpired:
                    self.proc.kill()
                    self.proc.wait()
        except OSError:
            self.proc.kill()


class SocketTransport(Transport):
    """A TCP connection to a listening protocol peer.

    A reader thread assembles complete lines from the byte stream; a
    fragment left in the buffer when the connection closes (the peer
    died mid-reply) is flagged rather than delivered, so the dispatcher
    sees a dead worker, never a truncated JSON document.
    """

    kind = "socket"

    def __init__(
        self,
        address,
        connect_timeout: float = 5.0,
    ):
        if isinstance(address, str):
            host, port = parse_address(address)
        else:
            host, port = address
        self.address = format_address((host, port))
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as err:
            raise PeerClosed(
                f"cannot connect to worker at {self.address}: {err}"
            ) from None
        self._sock.settimeout(None)
        self._closed = False
        self._partial: Optional[bytes] = None
        self._lines: "queue.Queue[Optional[str]]" = queue.Queue()
        threading.Thread(target=self._pump, daemon=True).start()

    def _pump(self) -> None:
        buffer = b""
        try:
            while True:
                try:
                    data = self._sock.recv(65536)
                except OSError:
                    break
                if not data:
                    break
                buffer += data
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    self._lines.put(line.decode("utf-8", "replace"))
        finally:
            if buffer:
                # Partial-line detection: the peer vanished mid-reply.
                self._partial = buffer
            self._lines.put(None)  # EOF sentinel

    def send_line(self, line: str) -> None:
        try:
            self._sock.sendall(line.encode("utf-8") + b"\n")
        except OSError as err:
            raise PeerClosed(f"{err} ({self.death_message()})") from None

    def recv_line(self, timeout: Optional[float] = None) -> Optional[str]:
        try:
            return self._lines.get(timeout=timeout)
        except queue.Empty:
            raise PeerTimeout(
                f"no reply from {self.address} within {timeout:g}s "
                f"(peer may be half-open)"
            ) from None

    def alive(self) -> bool:
        return not self._closed and self._partial is None

    def death_message(self) -> str:
        message = f"connection to {self.address} closed"
        if self._partial is not None:
            fragment = self._partial[:80].decode("utf-8", "replace")
            message += (
                f" mid-line (partial reply {fragment!r} discarded)"
            )
        return message

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class LineChannel:
    """Request/reply discipline over a :class:`Transport`.

    Serialises one JSON request per line with a monotonically increasing
    ``id``, waits for the matching reply, and maps every stream-level
    failure onto :class:`PeerClosed` / :class:`PeerTimeout` so callers
    (the worker pool's retry machinery, the service client) share one
    error model regardless of transport.
    """

    def __init__(self, transport: Transport):
        self.transport = transport
        self._next_id = 0

    def request(
        self, op: str, timeout: Optional[float] = None, **fields
    ) -> dict:
        """Send one request and wait for its reply."""
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, "op": op, **fields}
        self.transport.send_line(
            json.dumps(message, separators=(",", ":"))
        )
        line = self.transport.recv_line(timeout=timeout)
        if line is None:
            raise PeerClosed(self.transport.death_message())
        try:
            reply = json.loads(line)
        except ValueError:
            raise PeerClosed(
                f"non-protocol output {line!r}"
            ) from None
        if reply.get("id") != request_id:
            raise PeerClosed(
                f"reply id {reply.get('id')!r} does not match "
                f"request id {request_id}"
            )
        return reply

    def alive(self) -> bool:
        return self.transport.alive()

    def close(self) -> None:
        self.transport.close()

    def stderr_tail(self) -> str:
        return self.transport.stderr_tail()

    def describe(self) -> Dict[str, object]:
        return self.transport.describe()


def serve_socket_connection(conn: socket.socket, handle_line) -> bool:
    """Drive one accepted connection through a line handler.

    *handle_line* maps one request line to ``(reply_dict_or_None,
    keep_serving)``.  Returns ``False`` when the handler asked the whole
    server to stop (a ``shutdown`` op), ``True`` when the client merely
    disconnected and the server should accept the next connection.
    Transport errors (client vanished mid-write) end the connection
    without ending the server.
    """
    buffer = b""
    try:
        while True:
            try:
                data = conn.recv(65536)
            except OSError:
                return True
            if not data:
                return True
            buffer += data
            while b"\n" in buffer:
                raw, buffer = buffer.split(b"\n", 1)
                line = raw.decode("utf-8", "replace")
                if not line.strip():
                    continue
                reply, keep_serving = handle_line(line)
                if reply is not None:
                    try:
                        conn.sendall(
                            json.dumps(
                                reply, separators=(",", ":")
                            ).encode("utf-8")
                            + b"\n"
                        )
                    except OSError:
                        return True
                if not keep_serving:
                    return False
    finally:
        try:
            conn.close()
        except OSError:
            pass


def listen_socket(address) -> socket.socket:
    """A bound, listening TCP socket for *address* (``host:port``).

    Port 0 binds an ephemeral port; read the actual one back via
    ``sock.getsockname()[1]``.  ``SO_REUSEADDR`` is set so a restarted
    daemon can rebind its old address immediately.
    """
    if isinstance(address, str):
        host, port = parse_address(address, default_host="0.0.0.0")
    else:
        host, port = address
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        sock.bind((host, port))
    except OSError as err:
        sock.close()
        raise DistError(
            f"cannot listen on {format_address((host, port))}: {err}"
        ) from None
    sock.listen(8)
    return sock
