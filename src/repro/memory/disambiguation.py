"""Central memory disambiguation logic (the paper's unique LSQ).

Section 2 of the paper: memory instructions are split into an effective
address computation (steered like any simple integer instruction) and the
memory access, which is forwarded to *a unique disambiguation logic that
decides when the instruction can perform its memory access.  A load reads
from memory after being disambiguated with all previous stores, whereas
stores write to memory at commit.*

This module implements that structure.  Loads enter at dispatch; once
their effective address is computed (``ea_done_cycle``) and every older
store in the queue also has a known address, the load either forwards from
the youngest older same-word store or claims a D-cache port and performs a
timed access.  Stores stay queued until commit performs their write.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, List, Optional, Tuple

from ..isa import DynInst, InstrClass
from .hierarchy import MemoryHierarchy

#: Word granularity used for store-to-load forwarding checks.
_WORD_MASK = ~0x3


def _assign_complete(dyn: DynInst, complete_cycle: int, cycle: int) -> None:
    """Default completion: plain assignment (standalone/unit-test use)."""
    dyn.complete_cycle = complete_cycle


class DisambiguationQueue:
    """Program-ordered queue of in-flight memory operations."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        max_outstanding_misses: int = 8,
        forward_latency: int = 1,
        on_complete: Optional[Callable[[DynInst, int, int], None]] = None,
        event_driven: bool = False,
    ) -> None:
        self.hierarchy = hierarchy
        self.forward_latency = forward_latency
        self.max_outstanding_misses = max_outstanding_misses
        #: Completion sink called as ``(dyn, complete_cycle, cycle)``.
        #: The processor routes this into its wakeup calendar so a load's
        #: consumers are woken by event, not by polling.
        self._complete = on_complete or _assign_complete
        self.event_driven = event_driven
        self._queue: List[DynInst] = []
        #: Event-driven state.  ``_stores`` is the program-ordered view of
        #: queued stores; ``_waiting_loads`` holds only address-known,
        #: still-unscheduled loads as (seq, load); ``_ea_wheel`` parks a
        #: load from issue until the cycle its effective address is
        #: computed, so loads whose address is still in flight cost
        #: nothing per cycle (with deep reorder windows the full queue is
        #: dominated by instructions merely waiting to commit or for
        #: their address operands).
        self._stores: List[DynInst] = []
        self._waiting_loads: List[Tuple[int, DynInst]] = []
        self._ea_wheel: Dict[int, List[DynInst]] = {}
        self._outstanding: List[int] = []  # completion cycles of misses
        self.loads_forwarded = 0
        self.loads_accessed = 0
        self.stores_written = 0

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, dyn: DynInst) -> None:
        """Enqueue a memory instruction at dispatch (program order)."""
        self._queue.append(dyn)
        if dyn.cls is InstrClass.STORE:
            self._stores.append(dyn)

    def queue_address(self, dyn: DynInst, ready_cycle: int) -> None:
        """Park issued load *dyn* until its address is known.

        The processor calls this when the load's effective-address
        computation issues; at *ready_cycle* the wheel promotes the load
        into the waiting list, in program order.  (No-op for the scan
        scheduler, which polls ``ea_done_cycle`` instead.)
        """
        if self.event_driven:
            bucket = self._ea_wheel.get(ready_cycle)
            if bucket is None:
                self._ea_wheel[ready_cycle] = [dyn]
            else:
                bucket.append(dyn)

    # ------------------------------------------------------------------
    # Per-cycle load scheduling (event-driven)
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Schedule ready loads for this cycle.

        Walks the address-known unscheduled loads oldest-first; a load is
        ready when every older store's address is also known (the oldest
        unknown-address store forms a *barrier* younger loads cannot pass
        — the paper's disambiguation rule).  Ready loads either forward
        from an older matching store or access the D-cache (subject to
        port and outstanding-miss limits).

        The event-driven walk requires loads to be announced through
        :meth:`queue_address`; a standalone queue (``event_driven=False``,
        the constructor default) instead polls ``ea_done_cycle`` over the
        whole program-ordered queue, exactly like the original model.
        """
        if not self.event_driven:
            self._step_scan(cycle)
            return
        bucket = self._ea_wheel.pop(cycle, None)
        if bucket is not None:
            waiting = self._waiting_loads
            for dyn in bucket:
                insort(waiting, (dyn.seq, dyn))
        if self._outstanding:
            self._outstanding = [c for c in self._outstanding if c > cycle]
        waiting = self._waiting_loads
        if not waiting:
            return
        barrier = -1
        for store in self._stores:
            ea = store.ea_done_cycle
            if ea < 0 or ea > cycle:
                barrier = store.seq
                break
        scheduled: List[int] = []
        for index, (seq, dyn) in enumerate(waiting):
            if 0 <= barrier < seq:
                # An older store has an unknown address: the paper's rule
                # forbids executing this load — and, the list being in
                # program order, every load after this one too.
                break
            forwarder = self._find_forwarder(dyn)
            if forwarder is not None:
                self._complete(dyn, cycle + self.forward_latency, cycle)
                dyn.mem_latency = self.forward_latency
                self.loads_forwarded += 1
                scheduled.append(index)
                continue
            if len(self._outstanding) >= self.max_outstanding_misses:
                continue
            if not self.hierarchy.claim_dcache_port(cycle):
                continue
            latency = self.hierarchy.load_latency(dyn.mem_addr)
            self._complete(dyn, cycle + latency, cycle)
            dyn.mem_latency = latency
            self.loads_accessed += 1
            scheduled.append(index)
            if latency > self.hierarchy.timing.l1_hit:
                self._outstanding.append(dyn.complete_cycle)
        for index in reversed(scheduled):
            del waiting[index]

    def _find_forwarder(self, load: DynInst) -> Optional[DynInst]:
        """Youngest queued store older than *load* writing the same word."""
        target = load.mem_addr & _WORD_MASK
        seq = load.seq
        for store in reversed(self._stores):
            if store.seq < seq and store.mem_addr & _WORD_MASK == target:
                return store
        return None

    # ------------------------------------------------------------------
    # Per-cycle load scheduling (reference scan, kept for exactness)
    # ------------------------------------------------------------------
    def _step_scan(self, cycle: int) -> None:
        """Reference implementation: walk the whole queue every cycle."""
        self._outstanding = [c for c in self._outstanding if c > cycle]
        store_addr_known = True
        pending_stores: List[DynInst] = []
        for dyn in self._queue:
            if dyn.cls is InstrClass.STORE:
                if dyn.ea_done_cycle < 0 or dyn.ea_done_cycle > cycle:
                    store_addr_known = False
                pending_stores.append(dyn)
                continue
            # Load.
            if dyn.complete_cycle >= 0:
                continue  # already scheduled
            if dyn.ea_done_cycle < 0 or dyn.ea_done_cycle > cycle:
                continue  # address not computed yet
            if not store_addr_known:
                # An older store has an unknown address: each load checks
                # the flag valid at its own position.
                continue
            forwarder = self._scan_forwarder(dyn, pending_stores)
            if forwarder is not None:
                self._complete(dyn, cycle + self.forward_latency, cycle)
                dyn.mem_latency = self.forward_latency
                self.loads_forwarded += 1
                continue
            if len(self._outstanding) >= self.max_outstanding_misses:
                continue
            if not self.hierarchy.claim_dcache_port(cycle):
                continue
            latency = self.hierarchy.load_latency(dyn.mem_addr)
            self._complete(dyn, cycle + latency, cycle)
            dyn.mem_latency = latency
            self.loads_accessed += 1
            if latency > self.hierarchy.timing.l1_hit:
                self._outstanding.append(dyn.complete_cycle)

    @staticmethod
    def _scan_forwarder(
        load: DynInst, pending_stores: List[DynInst]
    ) -> Optional[DynInst]:
        """Youngest older store writing the same word, if any."""
        target = load.mem_addr & _WORD_MASK
        for store in reversed(pending_stores):
            if store.mem_addr & _WORD_MASK == target:
                return store
        return None

    # ------------------------------------------------------------------
    # Commit-side hooks
    # ------------------------------------------------------------------
    def commit_store(self, dyn: DynInst, cycle: int) -> bool:
        """Perform the cache write of a committing store.

        Returns ``False`` when no D-cache port is available this cycle, in
        which case commit must retry next cycle.
        """
        if not self.hierarchy.claim_dcache_port(cycle):
            return False
        self.hierarchy.store_access(dyn.mem_addr)
        self.stores_written += 1
        self._remove(dyn)
        try:
            self._stores.remove(dyn)  # committing in order: found at front
        except ValueError:
            pass
        return True

    def retire_load(self, dyn: DynInst) -> None:
        """Drop a committed load from the queue."""
        self._remove(dyn)
        if self._waiting_loads:
            try:
                self._waiting_loads.remove((dyn.seq, dyn))
            except ValueError:
                pass

    def _remove(self, dyn: DynInst) -> None:
        try:
            self._queue.remove(dyn)  # committing in order: found at front
        except ValueError:
            pass

    def stats(self) -> Dict[str, int]:
        """Counters for reporting and tests."""
        return {
            "loads_forwarded": self.loads_forwarded,
            "loads_accessed": self.loads_accessed,
            "stores_written": self.stores_written,
        }
