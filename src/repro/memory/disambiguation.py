"""Central memory disambiguation logic (the paper's unique LSQ).

Section 2 of the paper: memory instructions are split into an effective
address computation (steered like any simple integer instruction) and the
memory access, which is forwarded to *a unique disambiguation logic that
decides when the instruction can perform its memory access.  A load reads
from memory after being disambiguated with all previous stores, whereas
stores write to memory at commit.*

This module implements that structure.  Loads enter at dispatch; once
their effective address is computed (``ea_done_cycle``) and every older
store in the queue also has a known address, the load either forwards from
the youngest older same-word store or claims a D-cache port and performs a
timed access.  Stores stay queued until commit performs their write.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa import DynInst, InstrClass
from .hierarchy import MemoryHierarchy

#: Word granularity used for store-to-load forwarding checks.
_WORD_MASK = ~0x3


class DisambiguationQueue:
    """Program-ordered queue of in-flight memory operations."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        max_outstanding_misses: int = 8,
        forward_latency: int = 1,
    ) -> None:
        self.hierarchy = hierarchy
        self.forward_latency = forward_latency
        self.max_outstanding_misses = max_outstanding_misses
        self._queue: List[DynInst] = []
        self._outstanding: List[int] = []  # completion cycles of misses
        self.loads_forwarded = 0
        self.loads_accessed = 0
        self.stores_written = 0

    def __len__(self) -> int:
        return len(self._queue)

    def add(self, dyn: DynInst) -> None:
        """Enqueue a memory instruction at dispatch (program order)."""
        self._queue.append(dyn)

    # ------------------------------------------------------------------
    # Per-cycle load scheduling
    # ------------------------------------------------------------------
    def step(self, cycle: int) -> None:
        """Schedule ready loads for this cycle.

        Walks the queue oldest-first; a load is ready when its own address
        is known and every older store's address is known.  Ready loads
        either forward from an older matching store or access the D-cache
        (subject to port and outstanding-miss limits).
        """
        self._outstanding = [c for c in self._outstanding if c > cycle]
        store_addr_known = True
        pending_stores: List[DynInst] = []
        for dyn in self._queue:
            if dyn.cls is InstrClass.STORE:
                if dyn.ea_done_cycle < 0 or dyn.ea_done_cycle > cycle:
                    store_addr_known = False
                pending_stores.append(dyn)
                continue
            # Load.
            if dyn.complete_cycle >= 0:
                continue  # already scheduled
            if dyn.ea_done_cycle < 0 or dyn.ea_done_cycle > cycle:
                continue  # address not computed yet
            if not store_addr_known:
                # An older store has an unknown address: the paper's rule
                # forbids executing this load (and order makes every
                # younger load wait too, but younger loads may still be
                # independent of *those* stores only if all older stores
                # are known — so we keep scanning; each load checks the
                # flag valid at its position).
                continue
            forwarder = self._find_forwarder(dyn, pending_stores)
            if forwarder is not None:
                dyn.complete_cycle = cycle + self.forward_latency
                dyn.mem_latency = self.forward_latency
                self.loads_forwarded += 1
                continue
            if len(self._outstanding) >= self.max_outstanding_misses:
                continue
            if not self.hierarchy.claim_dcache_port(cycle):
                continue
            latency = self.hierarchy.load_latency(dyn.mem_addr)
            dyn.complete_cycle = cycle + latency
            dyn.mem_latency = latency
            self.loads_accessed += 1
            if latency > self.hierarchy.timing.l1_hit:
                self._outstanding.append(dyn.complete_cycle)

    @staticmethod
    def _find_forwarder(
        load: DynInst, pending_stores: List[DynInst]
    ) -> Optional[DynInst]:
        """Youngest older store writing the same word, if any."""
        target = load.mem_addr & _WORD_MASK
        for store in reversed(pending_stores):
            if store.mem_addr & _WORD_MASK == target:
                return store
        return None

    # ------------------------------------------------------------------
    # Commit-side hooks
    # ------------------------------------------------------------------
    def commit_store(self, dyn: DynInst, cycle: int) -> bool:
        """Perform the cache write of a committing store.

        Returns ``False`` when no D-cache port is available this cycle, in
        which case commit must retry next cycle.
        """
        if not self.hierarchy.claim_dcache_port(cycle):
            return False
        self.hierarchy.store_access(dyn.mem_addr)
        self.stores_written += 1
        self._remove(dyn)
        return True

    def retire_load(self, dyn: DynInst) -> None:
        """Drop a committed load from the queue."""
        self._remove(dyn)

    def _remove(self, dyn: DynInst) -> None:
        try:
            self._queue.remove(dyn)
        except ValueError:
            pass

    def stats(self) -> Dict[str, int]:
        """Counters for reporting and tests."""
        return {
            "loads_forwarded": self.loads_forwarded,
            "loads_accessed": self.loads_accessed,
            "stores_written": self.stores_written,
        }
