"""Set-associative cache model with LRU replacement.

Only tags are modelled (the simulator is timing-only); an access returns
hit/miss and updates the recency stack.  The geometry mirrors Table 2 of
the paper: 64KB 2-way 32-byte-line L1 caches and a 256KB 4-way
64-byte-line L2.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


class SetAssocCache:
    """A tag-only set-associative cache with true-LRU replacement."""

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        line_bytes: int,
        name: str = "cache",
    ) -> None:
        if size_bytes <= 0 or assoc <= 0 or line_bytes <= 0:
            raise ConfigError(f"{name}: sizes must be positive")
        if not _is_pow2(line_bytes):
            raise ConfigError(f"{name}: line size must be a power of two")
        n_lines = size_bytes // line_bytes
        if n_lines % assoc:
            raise ConfigError(
                f"{name}: {n_lines} lines not divisible by assoc {assoc}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = n_lines // assoc
        if not _is_pow2(self.n_sets):
            raise ConfigError(f"{name}: set count must be a power of two")
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = self.n_sets - 1
        # Each set is an MRU-first list of tags.
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, addr: int) -> tuple:
        line = addr >> self._line_shift
        return line & self._set_mask, line >> (
            self.n_sets.bit_length() - 1
        )

    def access(self, addr: int) -> bool:
        """Access the line containing *addr*; allocate on miss.

        Returns ``True`` on hit.  The line becomes most-recently-used
        either way (allocate-on-miss for reads and writes alike; the
        timing difference between write-allocate policies is far below the
        effects the paper studies).
        """
        set_index, tag = self._locate(addr)
        ways = self._sets[set_index]
        if tag in ways:
            self.hits += 1
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
            return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()
        return False

    def probe(self, addr: int) -> bool:
        """Check for a hit without touching LRU state or statistics."""
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]

    def invalidate_all(self) -> None:
        """Empty the cache (used between warm-up and measurement runs)."""
        for ways in self._sets:
            ways.clear()

    @property
    def accesses(self) -> int:
        """Total number of accesses observed."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 when never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keeping cache contents."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"<SetAssocCache {self.name} {self.size_bytes // 1024}KB "
            f"{self.assoc}-way {self.line_bytes}B lines>"
        )
