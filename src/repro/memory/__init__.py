"""Memory hierarchy: caches, timing, and the central disambiguation logic."""

from .cache import SetAssocCache
from .disambiguation import DisambiguationQueue
from .hierarchy import MemoryHierarchy, MemoryTiming

__all__ = [
    "SetAssocCache",
    "DisambiguationQueue",
    "MemoryHierarchy",
    "MemoryTiming",
]
