"""Two-level memory hierarchy with Table 2 timing.

* L1 I-cache: 64KB 2-way, 32B lines, 1-cycle hit, 6-cycle miss penalty.
* L1 D-cache: 64KB 2-way, 32B lines, 1-cycle hit, 6-cycle miss penalty,
  3 read/write ports shared by loads and committing stores.
* Unified L2: 256KB 4-way, 64B lines, 6-cycle hit time.
* Main memory: 16-byte bus, 16 cycles for the first chunk and 2 per
  following chunk of an L2 line.

The hierarchy also arbitrates the D-cache ports: callers claim a port for
a given cycle and are refused once the per-cycle budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import SetAssocCache


@dataclass
class MemoryTiming:
    """Latency parameters of the hierarchy (cycles)."""

    l1_hit: int = 1
    l1_miss_penalty: int = 6
    l2_hit_extra: int = 0  # already covered by l1_miss_penalty
    memory_first_chunk: int = 16
    memory_interchunk: int = 2
    bus_bytes: int = 16


class MemoryHierarchy:
    """L1I + L1D + unified L2 + main memory with port arbitration."""

    def __init__(
        self,
        l1i: SetAssocCache = None,
        l1d: SetAssocCache = None,
        l2: SetAssocCache = None,
        timing: MemoryTiming = None,
        dcache_ports: int = 3,
    ) -> None:
        self.l1i = l1i or SetAssocCache(64 * 1024, 2, 32, name="L1I")
        self.l1d = l1d or SetAssocCache(64 * 1024, 2, 32, name="L1D")
        self.l2 = l2 or SetAssocCache(256 * 1024, 4, 64, name="L2")
        self.timing = timing or MemoryTiming()
        self.dcache_ports = dcache_ports
        self._port_cycle = -1
        self._ports_used = 0

    # ------------------------------------------------------------------
    # Port arbitration
    # ------------------------------------------------------------------
    def claim_dcache_port(self, cycle: int) -> bool:
        """Try to claim one of the D-cache ports for *cycle*.

        Ports are granted first come, first served within a cycle; the
        caller ordering (commit before the load/store queue) decides the
        priority between committing stores and issuing loads.
        """
        if cycle != self._port_cycle:
            self._port_cycle = cycle
            self._ports_used = 0
        if self._ports_used >= self.dcache_ports:
            return False
        self._ports_used += 1
        return True

    # ------------------------------------------------------------------
    # Timed accesses
    # ------------------------------------------------------------------
    def _memory_latency(self) -> int:
        """Cycles to bring an L2 line from main memory."""
        timing = self.timing
        chunks = max(1, self.l2.line_bytes // timing.bus_bytes)
        return timing.memory_first_chunk + (chunks - 1) * timing.memory_interchunk

    def load_latency(self, addr: int) -> int:
        """Access the D-cache path for a load; return its total latency."""
        timing = self.timing
        if self.l1d.access(addr):
            return timing.l1_hit
        latency = timing.l1_hit + timing.l1_miss_penalty
        if self.l2.access(addr):
            return latency
        return latency + self._memory_latency()

    def store_access(self, addr: int) -> int:
        """Perform the cache side of a committing store.

        Returns the latency the *store buffer* absorbs; commit itself is
        not delayed (stores retire into the write buffer), but the tag
        arrays are updated so later loads see the line.
        """
        timing = self.timing
        if self.l1d.access(addr):
            return timing.l1_hit
        latency = timing.l1_hit + timing.l1_miss_penalty
        if self.l2.access(addr):
            return latency
        return latency + self._memory_latency()

    def ifetch_latency(self, addr: int) -> int:
        """Access the I-cache path; return the fetch latency."""
        timing = self.timing
        if self.l1i.access(addr):
            return timing.l1_hit
        latency = timing.l1_hit + timing.l1_miss_penalty
        if self.l2.access(addr):
            return latency
        return latency + self._memory_latency()

    def reset_stats(self) -> None:
        """Zero all cache counters (contents are preserved)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
