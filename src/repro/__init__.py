"""repro — reproduction of "Dynamic Cluster Assignment Mechanisms".

Canal, Parcerisa & González, HPCA 2000.  The package provides a
cycle-level timing simulator of the paper's two-cluster machine, all the
dynamic steering schemes it proposes plus the static / FIFO-based
comparators, synthetic SpecInt95-like workloads, and the analysis harness
regenerating every figure of the evaluation.

Quickstart::

    from repro import simulate, simulate_baseline

    base = simulate_baseline("gcc")
    dyn = simulate("gcc", steering="general-balance")
    print(f"speed-up: {dyn.speedup_over(base):+.1%}")

Or declaratively, through the spec layer (serializable, registry-backed,
with dotted-path overrides — see :mod:`repro.spec`)::

    import repro

    spec = repro.RunSpec(bench="gcc", scheme="general-balance",
                         machine={"name": "clustered",
                                  "overrides": {"clusters.0.iq_size": 128}})
    result = repro.run(spec)
"""

from .core.steering import (
    SteeringScheme,
    available_schemes,
    make_steering,
    register_scheme,
    scheme_description,
)
from .errors import (
    ConfigError,
    ISAError,
    ReproError,
    SimulationError,
    SpecError,
    SteeringError,
    WorkloadError,
)
from .pipeline import (
    ClusterConfig,
    Processor,
    ProcessorConfig,
    SimResult,
    simulate,
    simulate_baseline,
    simulate_upper_bound,
)
from .spec import (
    MachineSpec,
    RunSpec,
    SuiteSpec,
    available_machines,
    machine_config,
    register_machine,
    run,
)
from .workloads import SPECINT95, Workload, workload

__version__ = "1.0.0"

__all__ = [
    "SteeringScheme",
    "available_schemes",
    "make_steering",
    "register_scheme",
    "scheme_description",
    "ConfigError",
    "ISAError",
    "ReproError",
    "SimulationError",
    "SpecError",
    "SteeringError",
    "WorkloadError",
    "MachineSpec",
    "RunSpec",
    "SuiteSpec",
    "available_machines",
    "machine_config",
    "register_machine",
    "run",
    "ClusterConfig",
    "Processor",
    "ProcessorConfig",
    "SimResult",
    "simulate",
    "simulate_baseline",
    "simulate_upper_bound",
    "SPECINT95",
    "Workload",
    "workload",
    "__version__",
]
