"""repro — reproduction of "Dynamic Cluster Assignment Mechanisms".

Canal, Parcerisa & González, HPCA 2000.  The package provides a
cycle-level timing simulator of the paper's two-cluster machine, all the
dynamic steering schemes it proposes plus the static / FIFO-based
comparators, synthetic SpecInt95-like workloads, and the analysis harness
regenerating every figure of the evaluation.

Quickstart::

    from repro import simulate, simulate_baseline

    base = simulate_baseline("gcc")
    dyn = simulate("gcc", steering="general-balance")
    print(f"speed-up: {dyn.speedup_over(base):+.1%}")
"""

from .core.steering import (
    SteeringScheme,
    available_schemes,
    make_steering,
    register_scheme,
)
from .errors import (
    ConfigError,
    ISAError,
    ReproError,
    SimulationError,
    SteeringError,
    WorkloadError,
)
from .pipeline import (
    ClusterConfig,
    Processor,
    ProcessorConfig,
    SimResult,
    simulate,
    simulate_baseline,
    simulate_upper_bound,
)
from .workloads import SPECINT95, Workload, workload

__version__ = "1.0.0"

__all__ = [
    "SteeringScheme",
    "available_schemes",
    "make_steering",
    "register_scheme",
    "ConfigError",
    "ISAError",
    "ReproError",
    "SimulationError",
    "SteeringError",
    "WorkloadError",
    "ClusterConfig",
    "Processor",
    "ProcessorConfig",
    "SimResult",
    "simulate",
    "simulate_baseline",
    "simulate_upper_bound",
    "SPECINT95",
    "Workload",
    "workload",
    "__version__",
]
