"""Synthetic SpecInt95-like workloads (the paper's Table 1 stand-ins)."""

from __future__ import annotations

from dataclasses import dataclass

from .generator import ProgramGenerator, generate_program
from .profiles import (
    FIGURE3_ORDER,
    FIGURE_ORDER,
    SPECINT95,
    WorkloadProfile,
    get_profile,
)
from .program import (
    BasicBlock,
    BranchBehavior,
    MemBehavior,
    StaticProgram,
)
from .trace import TraceExecutor, TraceRecord


@dataclass(frozen=True)
class Workload:
    """A named benchmark: its profile, generated program, and seed.

    Create these through :func:`workload`; the dataclass itself is cheap to
    pass around and hashes by identity of its contents, which the
    experiment cache uses as a key component.
    """

    name: str
    profile: WorkloadProfile
    program: StaticProgram
    seed: int

    def trace(self) -> TraceExecutor:
        """Fresh trace executor over the committed path."""
        return TraceExecutor(self.program, seed=self.seed)


def workload(name: str, seed: int = 0) -> Workload:
    """Build the synthetic stand-in for benchmark *name*.

    >>> wl = workload("gcc")
    >>> wl.program.num_instructions > 0
    True
    """
    profile = get_profile(name)
    program = generate_program(profile, seed=seed)
    return Workload(name=name, profile=profile, program=program, seed=seed)


__all__ = [
    "FIGURE3_ORDER",
    "FIGURE_ORDER",
    "SPECINT95",
    "WorkloadProfile",
    "get_profile",
    "ProgramGenerator",
    "generate_program",
    "BasicBlock",
    "BranchBehavior",
    "MemBehavior",
    "StaticProgram",
    "TraceExecutor",
    "TraceRecord",
    "Workload",
    "workload",
]
