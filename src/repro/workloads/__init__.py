"""Synthetic SpecInt95-like workloads (the paper's Table 1 stand-ins)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import WorkloadError
from .generator import ProgramGenerator, generate_program
from .profiles import (
    FIGURE3_ORDER,
    FIGURE_ORDER,
    SPECINT95,
    WorkloadProfile,
    get_profile,
    register_profile,
    registered_profiles,
    unregister_profile,
)
from .program import (
    BasicBlock,
    BranchBehavior,
    MemBehavior,
    StaticProgram,
)
from .columns import TraceColumns
from .trace import (
    SharedTrace,
    TraceExecutor,
    TraceRecord,
    TraceReplay,
    reset_trace_stats,
    trace_build_counts,
)


@dataclass(frozen=True)
class Workload:
    """A named benchmark: its profile, generated program, and seed.

    Create these through :func:`workload`; the dataclass itself is cheap to
    pass around and hashes by identity of its contents, which the
    experiment cache uses as a key component.
    """

    name: str
    #: Generator profile, or ``None`` for workloads not produced by the
    #: synthetic generator (e.g. imported ``.rtrace`` traces).
    profile: Optional[WorkloadProfile]
    program: StaticProgram
    seed: int
    #: Lazily created shared committed-path buffer; excluded from
    #: equality/hash so two workloads of the same program compare equal
    #: regardless of how much trace either has materialised.
    _shared_trace: Optional[SharedTrace] = field(
        default=None, compare=False, repr=False
    )

    def shared_trace(self) -> SharedTrace:
        """The workload's shared trace buffer (created on first use)."""
        if self._shared_trace is None:
            # Frozen dataclass: bypass the immutability guard for the
            # one-time cache population.
            object.__setattr__(
                self, "_shared_trace", SharedTrace(self.program, self.seed)
            )
        return self._shared_trace

    def trace(self) -> TraceReplay:
        """Fresh cursor over the committed path.

        Every call replays the same shared buffer, so running ten steering
        schemes over one workload decodes the trace once, not ten times.
        """
        return self.shared_trace().replay()


#: Generated-program cache: building a StaticProgram is by far the most
#: expensive part of :func:`workload`, and programs are immutable, so the
#: same object can back every simulation of a (bench, seed) pair.  The
#: key includes the *profile itself* (frozen, hashable), not just its
#: name: a registered profile reusing a name must never be served the
#: stale program generated for a different profile.
_WORKLOAD_CACHE: Dict[Tuple[str, int, WorkloadProfile], Workload] = {}

#: Resolver callbacks tried, in registration order, when a name has no
#: profile.  Each takes ``(name, seed)`` and returns a
#: :class:`Workload` or ``None``; :mod:`repro.scenarios` registers one
#: for imported ``.rtrace`` workloads.  Resolvers own their caching —
#: results are not memoised here.
_WORKLOAD_RESOLVERS: List[Callable[[str, int], Optional[Workload]]] = []


def register_workload_resolver(
    resolver: Callable[[str, int], Optional[Workload]]
) -> None:
    """Add a fallback resolver for names without a registered profile."""
    _WORKLOAD_RESOLVERS.append(resolver)


def workload_for_profile(
    profile: WorkloadProfile, seed: int = 0, fresh: bool = False
) -> Workload:
    """Build (or fetch the cached) workload generated from *profile*.

    This is the cache-aware core of :func:`workload`; use it directly for
    profiles that are not registered under a global name.
    """
    if fresh:
        program = generate_program(profile, seed=seed)
        return Workload(
            name=profile.name, profile=profile, program=program, seed=seed
        )
    key = (profile.name, seed, profile)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is None:
        cached = workload_for_profile(profile, seed, fresh=True)
        _WORKLOAD_CACHE[key] = cached
    return cached


def workload(name: str, seed: int = 0, fresh: bool = False) -> Workload:
    """Build (or fetch the cached) workload for benchmark *name*.

    *name* is resolved against the SpecInt95 stand-ins, then against
    profiles registered by workload families, then against resolver
    callbacks (imported traces).  Repeated calls with the same
    ``(name, seed)`` — and the same registered profile — return the same
    :class:`Workload` object, which also shares its materialised trace.
    Pass ``fresh=True`` to force regeneration (determinism tests use this
    to prove cached and freshly built workloads behave identically).

    >>> wl = workload("gcc")
    >>> wl.program.num_instructions > 0
    True
    """
    try:
        profile = get_profile(name)
    except WorkloadError:
        for resolver in _WORKLOAD_RESOLVERS:
            resolved = resolver(name, seed)
            if resolved is not None:
                return resolved
        raise
    return workload_for_profile(profile, seed, fresh=fresh)


def clear_workload_cache() -> None:
    """Drop all cached workloads (and their shared traces)."""
    _WORKLOAD_CACHE.clear()


__all__ = [
    "FIGURE3_ORDER",
    "FIGURE_ORDER",
    "SPECINT95",
    "WorkloadProfile",
    "get_profile",
    "register_profile",
    "registered_profiles",
    "unregister_profile",
    "register_workload_resolver",
    "workload_for_profile",
    "ProgramGenerator",
    "generate_program",
    "BasicBlock",
    "BranchBehavior",
    "MemBehavior",
    "StaticProgram",
    "SharedTrace",
    "TraceColumns",
    "TraceExecutor",
    "TraceRecord",
    "TraceReplay",
    "Workload",
    "workload",
    "clear_workload_cache",
    "reset_trace_stats",
    "trace_build_counts",
]
