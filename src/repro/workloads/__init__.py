"""Synthetic SpecInt95-like workloads (the paper's Table 1 stand-ins)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .generator import ProgramGenerator, generate_program
from .profiles import (
    FIGURE3_ORDER,
    FIGURE_ORDER,
    SPECINT95,
    WorkloadProfile,
    get_profile,
)
from .program import (
    BasicBlock,
    BranchBehavior,
    MemBehavior,
    StaticProgram,
)
from .trace import (
    SharedTrace,
    TraceExecutor,
    TraceRecord,
    TraceReplay,
    reset_trace_stats,
    trace_build_counts,
)


@dataclass(frozen=True)
class Workload:
    """A named benchmark: its profile, generated program, and seed.

    Create these through :func:`workload`; the dataclass itself is cheap to
    pass around and hashes by identity of its contents, which the
    experiment cache uses as a key component.
    """

    name: str
    profile: WorkloadProfile
    program: StaticProgram
    seed: int
    #: Lazily created shared committed-path buffer; excluded from
    #: equality/hash so two workloads of the same program compare equal
    #: regardless of how much trace either has materialised.
    _shared_trace: Optional[SharedTrace] = field(
        default=None, compare=False, repr=False
    )

    def shared_trace(self) -> SharedTrace:
        """The workload's shared trace buffer (created on first use)."""
        if self._shared_trace is None:
            # Frozen dataclass: bypass the immutability guard for the
            # one-time cache population.
            object.__setattr__(
                self, "_shared_trace", SharedTrace(self.program, self.seed)
            )
        return self._shared_trace

    def trace(self) -> TraceReplay:
        """Fresh cursor over the committed path.

        Every call replays the same shared buffer, so running ten steering
        schemes over one workload decodes the trace once, not ten times.
        """
        return self.shared_trace().replay()


#: Generated-program cache: building a StaticProgram is by far the most
#: expensive part of :func:`workload`, and programs are immutable, so the
#: same object can back every simulation of a (bench, seed) pair.
_WORKLOAD_CACHE: Dict[Tuple[str, int], Workload] = {}


def workload(name: str, seed: int = 0, fresh: bool = False) -> Workload:
    """Build (or fetch the cached) synthetic stand-in for benchmark *name*.

    Repeated calls with the same ``(name, seed)`` return the same
    :class:`Workload` object, which also shares its materialised trace.
    Pass ``fresh=True`` to force regeneration (determinism tests use this
    to prove cached and freshly built workloads behave identically).

    >>> wl = workload("gcc")
    >>> wl.program.num_instructions > 0
    True
    """
    key = (name, seed)
    if fresh:
        profile = get_profile(name)
        program = generate_program(profile, seed=seed)
        return Workload(name=name, profile=profile, program=program, seed=seed)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is None:
        cached = workload(name, seed, fresh=True)
        _WORKLOAD_CACHE[key] = cached
    return cached


def clear_workload_cache() -> None:
    """Drop all cached workloads (and their shared traces)."""
    _WORKLOAD_CACHE.clear()


__all__ = [
    "FIGURE3_ORDER",
    "FIGURE_ORDER",
    "SPECINT95",
    "WorkloadProfile",
    "get_profile",
    "ProgramGenerator",
    "generate_program",
    "BasicBlock",
    "BranchBehavior",
    "MemBehavior",
    "StaticProgram",
    "SharedTrace",
    "TraceExecutor",
    "TraceRecord",
    "TraceReplay",
    "Workload",
    "workload",
    "clear_workload_cache",
    "reset_trace_stats",
    "trace_build_counts",
]
