"""Synthetic program generator.

Builds a :class:`~repro.workloads.program.StaticProgram` from a
:class:`~repro.workloads.profiles.WorkloadProfile`.  The generator's job is
to reproduce the *structure* that the paper's steering schemes exploit:

* address computations with a controllable backward slice (``addr_depth``),
* branch conditions with their own backward slice (``cond_depth``),
* overlap between the two (``slice_overlap``: conditions that consume
  loaded values),
* pointer chasing (loads feeding the next address),
* an instruction mix and basic-block geometry per benchmark,
* loop nests whose back edges are predictable and data-dependent branches
  that are not.

The output CFG is a ring of loop bodies: each loop is a chain of basic
blocks with forward conditional skips (if/else hammocks), closed by a
back-edge branch; when a loop exits, control falls into the next loop, and
the last loop wraps to the first, so execution never terminates.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import WorkloadError
from ..isa import INSTRUCTION_SIZE, Instruction, Opcode
from ..isa.registers import N_INT_REGS, fp_reg
from .profiles import WorkloadProfile
from .program import BasicBlock, BranchBehavior, MemBehavior, StaticProgram

# Integer register partition (r0 is left unused by convention).
ADDR_REGS: Tuple[int, ...] = tuple(range(1, 9))
INDEX_REGS: Tuple[int, ...] = tuple(range(9, 11))
COND_REGS: Tuple[int, ...] = tuple(range(11, 15))
DATA_REGS: Tuple[int, ...] = tuple(range(15, N_INT_REGS))
FP_REGS: Tuple[int, ...] = tuple(fp_reg(i) for i in range(8))

_SIMPLE_OPS = (
    Opcode.ADD,
    Opcode.SUB,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
)
_COMPLEX_OPS = (Opcode.MUL, Opcode.DIV)
_FP_OPS = (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV)
_BRANCH_OPS = (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE)


class _BlockDraft:
    """Mutable block under construction (instructions lack successors)."""

    def __init__(self) -> None:
        self.instructions: List[Instruction] = []
        self.taken_succ: Optional[int] = None
        self.fall_succ: Optional[int] = None
        self.wants_conditional = False
        self.is_backedge = False
        self.is_cold = False
        self.force_taken_prob: Optional[float] = None


class ProgramGenerator:
    """Generate synthetic programs shaped by a workload profile.

    The same ``(profile, seed)`` pair always yields the identical program,
    which the experiment harness relies on for caching and comparisons
    between steering schemes (every scheme must see the same instruction
    stream).
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        # zlib.crc32 is stable across processes, unlike str.__hash__ under
        # hash randomisation — determinism is part of the API contract.
        name_hash = zlib.crc32(profile.name.encode("utf-8")) & 0xFFFF
        self._rng = random.Random(name_hash * 65537 + seed)
        self._next_pc = 0x1000
        self._recent_data: List[int] = []
        self._recent_loads: List[int] = []
        self._data_rr = 0
        self._cond_rr = 0
        self._addr_rr = 0
        self._fp_rr = 0
        self._mem_site = 0
        self._branch_behaviors: Dict[int, BranchBehavior] = {}
        self._mem_behaviors: Dict[int, MemBehavior] = {}
        self._template_cuts = self._calibrate_mix()

    def _calibrate_mix(self) -> Tuple[float, float, float, float]:
        """Compute template-selection thresholds compensating for chains.

        A load/store template emits roughly ``1 + addr_depth``
        instructions, only one of which is the memory operation, so naively
        sampling templates with the profile's instruction-mix fractions
        under-produces memory operations.  Solving
        ``q_mem / E[instructions per template] = frac_mem`` gives the
        boost factor applied here (clamped so that simple-int templates
        keep a floor share).
        """
        profile = self.profile
        mem_frac = profile.frac_load + profile.frac_store
        boost = 1.0 / max(0.25, 1.0 - mem_frac * profile.addr_depth)
        q_load = profile.frac_load * boost
        q_store = profile.frac_store * boost
        q_complex = profile.frac_complex
        q_fp = profile.frac_fp
        total = q_load + q_store + q_complex + q_fp
        if total > 0.9:
            scale = 0.9 / total
            q_load *= scale
            q_store *= scale
            q_complex *= scale
            q_fp *= scale
        return (
            q_load,
            q_load + q_store,
            q_load + q_store + q_complex,
            q_load + q_store + q_complex + q_fp,
        )

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def generate(self) -> StaticProgram:
        """Build and return the static program."""
        n_blocks = self.profile.n_blocks
        if n_blocks < 4:
            raise WorkloadError("need at least 4 basic blocks")
        loops = self._plan_loops(n_blocks)
        drafts: List[_BlockDraft] = [_BlockDraft() for _ in range(n_blocks)]
        self._wire_cfg(loops, drafts)
        for draft in drafts:
            self._fill_block(draft)
        self._patch_targets(drafts)
        blocks = [
            BasicBlock(i, d.instructions, d.taken_succ, d.fall_succ)
            for i, d in enumerate(drafts)
        ]
        return StaticProgram(
            name=self.profile.name,
            blocks=blocks,
            entry=0,
            branch_behaviors=self._branch_behaviors,
            mem_behaviors=self._mem_behaviors,
        )

    def _patch_targets(self, drafts: List[_BlockDraft]) -> None:
        """Rewrite terminator targets once every block's start pc is known.

        Blocks are filled in order, so targets of forward and backward
        edges alike can only be resolved after the whole program is laid
        out; until then terminators carry a placeholder target.
        """
        start_pc = {i: d.instructions[0].pc for i, d in enumerate(drafts)}
        for draft in drafts:
            last = draft.instructions[-1]
            if last.is_control and draft.taken_succ is not None:
                draft.instructions[-1] = Instruction(
                    last.pc,
                    last.opcode,
                    None,
                    last.srcs,
                    target=start_pc[draft.taken_succ],
                )

    # ------------------------------------------------------------------
    # CFG construction
    # ------------------------------------------------------------------
    def _plan_loops(self, n_blocks: int) -> List[List[int]]:
        """Partition block ids into loop bodies of 2..8 blocks."""
        loops: List[List[int]] = []
        i = 0
        while i < n_blocks:
            size = min(self._rng.randint(2, 8), n_blocks - i)
            if n_blocks - (i + size) == 1:
                size += 1  # avoid a trailing 1-block loop
            loops.append(list(range(i, i + size)))
            i += size
        return loops

    def _wire_cfg(
        self, loops: List[List[int]], drafts: List[_BlockDraft]
    ) -> None:
        """Assign successors: forward skips inside loops, back edges, and
        loop-to-loop fallthrough."""
        n_loops = len(loops)
        for li, body in enumerate(loops):
            head = body[0]
            tail = body[-1]
            next_loop_head = loops[(li + 1) % n_loops][0]
            for pos, bid in enumerate(body):
                draft = drafts[bid]
                if bid == tail:
                    # Loop back edge: taken -> head, fall -> next loop.
                    draft.wants_conditional = True
                    draft.is_backedge = True
                    draft.taken_succ = head
                    draft.fall_succ = next_loop_head
                    continue
                succ = body[pos + 1]
                if pos + 2 < len(body) and self._rng.random() < 0.5:
                    # Forward skip (hammock): taken jumps over one block.
                    draft.wants_conditional = True
                    draft.taken_succ = body[pos + 2]
                    draft.fall_succ = succ
                    if self._rng.random() < 0.4:
                        # Cold path: the skip is almost always taken, so
                        # the fall-through block rarely executes.  Filling
                        # it with address computations over general data
                        # registers makes the *static* LdSt slice swallow
                        # most of the program while the *dynamic* tables
                        # barely ever see it — the mechanism behind the
                        # paper's static-vs-dynamic gap (Figure 3).
                        draft.force_taken_prob = 0.97
                        drafts[succ].is_cold = True
                else:
                    draft.fall_succ = succ

    # ------------------------------------------------------------------
    # Register selection helpers
    # ------------------------------------------------------------------
    def _alloc_pc(self) -> int:
        pc = self._next_pc
        self._next_pc += INSTRUCTION_SIZE
        return pc

    def _pick_source(self) -> int:
        """Pick a source register, preferring recent producers.

        The backward distance is geometric with mean ``dep_distance``,
        which controls how long the dependence chains get.
        """
        rng = self._rng
        if self._recent_data and rng.random() < 0.7:
            p = 1.0 / max(1.0, self.profile.dep_distance)
            dist = 0
            while rng.random() > p and dist < len(self._recent_data) - 1:
                dist += 1
            return self._recent_data[-1 - dist]
        return rng.choice(DATA_REGS)

    def _next_data_reg(self) -> int:
        reg = DATA_REGS[self._data_rr % len(DATA_REGS)]
        self._data_rr += 1
        return reg

    def _next_cond_reg(self) -> int:
        reg = COND_REGS[self._cond_rr % len(COND_REGS)]
        self._cond_rr += 1
        return reg

    def _next_addr_reg(self) -> int:
        reg = ADDR_REGS[self._addr_rr % len(ADDR_REGS)]
        self._addr_rr += 1
        return reg

    def _note_write(self, reg: int) -> None:
        self._recent_data.append(reg)
        if len(self._recent_data) > 24:
            self._recent_data.pop(0)

    # ------------------------------------------------------------------
    # Instruction emission
    # ------------------------------------------------------------------
    def _emit(self, draft: _BlockDraft, inst: Instruction) -> None:
        draft.instructions.append(inst)

    def _emit_simple(self, draft: _BlockDraft) -> None:
        op = self._rng.choice(_SIMPLE_OPS)
        dst = self._next_data_reg()
        srcs: Tuple[int, ...]
        if self._rng.random() < 0.7:
            srcs = (self._pick_source(), self._pick_source())
        else:
            srcs = (self._pick_source(),)
        self._emit(draft, Instruction(self._alloc_pc(), op, dst, srcs))
        self._note_write(dst)

    def _emit_complex(self, draft: _BlockDraft) -> None:
        op = self._rng.choice(_COMPLEX_OPS)
        dst = self._next_data_reg()
        srcs = (self._pick_source(), self._pick_source())
        self._emit(draft, Instruction(self._alloc_pc(), op, dst, srcs))
        self._note_write(dst)

    def _emit_fp(self, draft: _BlockDraft) -> None:
        op = self._rng.choice(_FP_OPS)
        dst = FP_REGS[self._fp_rr % len(FP_REGS)]
        self._fp_rr += 1
        srcs = (
            FP_REGS[self._rng.randrange(len(FP_REGS))],
            FP_REGS[self._rng.randrange(len(FP_REGS))],
        )
        self._emit(draft, Instruction(self._alloc_pc(), op, dst, srcs))

    def _emit_address_chain(self, draft: _BlockDraft) -> int:
        """Emit the address computation feeding a memory access.

        Returns the register holding the final address.  The chain length
        follows ``addr_depth``; with ``pointer_chase_frac`` the base is the
        most recently loaded value (a dependent load).
        """
        rng = self._rng
        chase = bool(self._recent_loads) and (
            rng.random() < self.profile.pointer_chase_frac
        )
        base = (
            self._recent_loads[-1] if chase else self._next_addr_reg()
        )
        depth = self._sample_depth(self.profile.addr_depth)
        reg = base
        for _ in range(depth):
            dst = self._next_addr_reg()
            if rng.random() < 0.5:
                idx = rng.choice(INDEX_REGS)
                inst = Instruction(
                    self._alloc_pc(), Opcode.ADD, dst, (reg, idx)
                )
            else:
                inst = Instruction(self._alloc_pc(), Opcode.ADDI, dst, (reg,))
            self._emit(draft, inst)
            reg = dst
        return reg

    def _sample_depth(self, mean: float) -> int:
        """Geometric-ish non-negative depth with the given mean."""
        if mean <= 0:
            return 0
        p = 1.0 / (1.0 + mean)
        depth = 0
        while self._rng.random() > p and depth < 6:
            depth += 1
        return depth

    def _mem_behavior(self) -> MemBehavior:
        """Behaviour for the next static memory site.

        Three site populations model the benchmark's locality: *cold*
        sites wander over the whole footprint (the miss generators),
        *stream* sites walk arrays sequentially (mostly hits, one miss
        per cache line), and *hot* sites poke a small cache-resident
        region (hits).
        """
        rng = self._rng
        footprint = self.profile.footprint_bytes
        site = self._mem_site
        self._mem_site += 1
        r = rng.random()
        if r < self.profile.cold_access_frac:
            return MemBehavior("random", base=0, region=footprint)
        if r < self.profile.cold_access_frac + 0.45:
            base = (site * 4096) % footprint
            stride = rng.choice((4, 4, 8))
            region = min(32 * 1024, max(4096, footprint // 4))
            return MemBehavior(
                "stream", base=base, region=region, stride=stride
            )
        hot_region = min(footprint, 8 * 1024)
        return MemBehavior("random", base=0, region=hot_region)

    def _emit_load(self, draft: _BlockDraft) -> None:
        addr = self._emit_address_chain(draft)
        dst = self._next_data_reg()
        pc = self._alloc_pc()
        self._emit(draft, Instruction(pc, Opcode.LOAD, dst, (addr,)))
        self._mem_behaviors[pc] = self._mem_behavior()
        self._note_write(dst)
        self._recent_loads.append(dst)
        if len(self._recent_loads) > 4:
            self._recent_loads.pop(0)

    def _emit_store(self, draft: _BlockDraft) -> None:
        addr = self._emit_address_chain(draft)
        data = self._pick_source()
        pc = self._alloc_pc()
        self._emit(draft, Instruction(pc, Opcode.STORE, None, (addr, data)))
        self._mem_behaviors[pc] = self._mem_behavior()

    def _emit_condition_chain(self, draft: _BlockDraft) -> int:
        """Emit the computation feeding a branch condition.

        With probability ``slice_overlap`` the condition consumes the most
        recent loaded value, tying the Br slice to the LdSt slice.  Most
        other branches test loop-control state (induction variables); only
        a minority consume arbitrary data-flow, which keeps the Br slice
        from swallowing the whole program the way unconstrained source
        selection would.
        """
        rng = self._rng
        depth = self._sample_depth(self.profile.cond_depth)
        if self._recent_loads and rng.random() < self.profile.slice_overlap:
            src = self._recent_loads[-1]
        elif rng.random() < 0.6:
            src = rng.choice(INDEX_REGS)
        else:
            src = self._pick_source()
        reg = src
        for _ in range(depth):
            dst = self._next_cond_reg()
            op = rng.choice((Opcode.AND, Opcode.SUB, Opcode.XOR))
            self._emit(draft, Instruction(self._alloc_pc(), op, dst, (reg,)))
            reg = dst
        cond = self._next_cond_reg()
        self._emit(draft, Instruction(self._alloc_pc(), Opcode.CMP, cond, (reg,)))
        return cond

    def _branch_behavior(self, is_backedge: bool) -> BranchBehavior:
        rng = self._rng
        if is_backedge:
            trip = rng.choice((4, 8, 12, 16, 24, 32, 48, 64))
            return BranchBehavior("loop", trip=trip)
        if rng.random() < self.profile.loop_branch_frac:
            # Predictable non-backedge branch: heavily biased.
            prob = rng.choice((0.02, 0.05, 0.95, 0.98))
            return BranchBehavior("biased", taken_prob=prob)
        low, high = self.profile.data_branch_bias
        return BranchBehavior("biased", taken_prob=rng.uniform(low, high))

    # ------------------------------------------------------------------
    # Block filling
    # ------------------------------------------------------------------
    def _fill_cold_block(self, draft: _BlockDraft) -> None:
        """Fill a rarely-executed block with slice-polluting accesses.

        The loads here address memory *through general data registers*,
        so a conservative whole-program analysis must pull the producers
        of those registers — essentially all of the data flow — into the
        LdSt slice, even though the block executes a few percent of the
        time at most.
        """
        for _ in range(3):
            src = self._rng.choice(DATA_REGS)
            dst = self._next_data_reg()
            pc = self._alloc_pc()
            self._emit(draft, Instruction(pc, Opcode.LOAD, dst, (src,)))
            self._mem_behaviors[pc] = MemBehavior(
                "random", base=0, region=min(
                    self.profile.footprint_bytes, 8 * 1024
                )
            )

    def _fill_block(self, draft: _BlockDraft) -> None:
        profile = self.profile
        rng = self._rng
        body_target = max(
            1, int(round(rng.gauss(profile.avg_block_size - 1, 1.5)))
        )
        if draft.is_cold:
            self._fill_cold_block(draft)
        cut_load, cut_store, cut_complex, cut_fp = self._template_cuts
        while len(draft.instructions) < body_target:
            r = rng.random()
            if r < cut_load:
                self._emit_load(draft)
            elif r < cut_store:
                self._emit_store(draft)
            elif r < cut_complex:
                self._emit_complex(draft)
            elif r < cut_fp:
                self._emit_fp(draft)
            else:
                self._emit_simple(draft)
        if draft.is_backedge:
            # Loop induction variable: written here, read by address
            # computations and loop-exit conditions (the classic overlap
            # between the LdSt and Br slices).
            idx = rng.choice(INDEX_REGS)
            self._emit(
                draft, Instruction(self._alloc_pc(), Opcode.ADDI, idx, (idx,))
            )
        if draft.wants_conditional:
            cond = self._emit_condition_chain(draft)
            op = rng.choice(_BRANCH_OPS)
            pc = self._alloc_pc()
            # Target pc is resolved against block start later by the fetch
            # unit via the CFG; store a placeholder target of 0 is not
            # allowed, so we point at pc (self loop placeholder) and rely on
            # successors.  The real target pc is patched below by the
            # program assembly: we simply use the successor block ids.
            self._emit(
                draft,
                Instruction(pc, op, None, (cond,), target=pc),
            )
            if draft.force_taken_prob is not None:
                self._branch_behaviors[pc] = BranchBehavior(
                    "biased", taken_prob=draft.force_taken_prob
                )
            else:
                self._branch_behaviors[pc] = self._branch_behavior(
                    draft.is_backedge
                )
        elif rng.random() < 0.25:
            # Occasionally end a fall-through block with an explicit jump.
            pc = self._alloc_pc()
            self._emit(draft, Instruction(pc, Opcode.JMP, None, (), target=pc))
            draft.taken_succ = draft.fall_succ


def generate_program(profile: WorkloadProfile, seed: int = 0) -> StaticProgram:
    """Convenience wrapper: generate the synthetic program for *profile*."""
    return ProgramGenerator(profile, seed=seed).generate()
