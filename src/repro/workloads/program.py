"""Static program representation: basic blocks, behaviours, CFG.

A :class:`StaticProgram` is a closed control-flow graph of
:class:`BasicBlock` objects.  Every block ends in a terminator (conditional
branch or jump) whose successors stay inside the program, so the dynamic
instruction stream is infinite — the paper simulates a 100M-instruction
window of much longer executions, and we likewise simulate a window of an
endless synthetic execution.

Besides the instructions themselves, the program records the *behaviour*
of every conditional branch (how its outcome stream looks) and of every
memory instruction (how its address stream looks).  The timing simulator is
trace-driven: outcomes and addresses come from these behaviours via the
:class:`~repro.workloads.trace.TraceExecutor` oracle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import WorkloadError
from ..isa import Instruction


@dataclass(frozen=True)
class BranchBehavior:
    """Outcome model of one static conditional branch.

    Two families cover the predictability spectrum:

    * ``kind="loop"`` — taken ``trip - 1`` consecutive times, then
      not-taken once, repeating.  Two-bit counters predict these almost
      perfectly for non-trivial trip counts.
    * ``kind="biased"`` — independent Bernoulli outcomes with probability
      ``taken_prob``.  Near 0.5 these defeat any predictor.
    """

    kind: str  # "loop" | "biased"
    taken_prob: float = 0.5
    trip: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("loop", "biased"):
            raise WorkloadError(f"unknown branch behaviour kind {self.kind!r}")
        if self.kind == "loop" and self.trip < 2:
            raise WorkloadError("loop behaviour needs trip >= 2")
        if not 0.0 <= self.taken_prob <= 1.0:
            raise WorkloadError("taken_prob must lie in [0, 1]")


@dataclass(frozen=True)
class MemBehavior:
    """Address model of one static memory instruction.

    * ``kind="stream"`` — sequential walk ``base, base+stride, ...``
      wrapping inside ``region`` bytes.  Hits most of the time with 32-byte
      lines.
    * ``kind="random"`` — uniform random word inside ``region`` bytes
      starting at ``base``.  Misses once the region exceeds the cache.
    """

    kind: str  # "stream" | "random"
    base: int
    region: int
    stride: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ("stream", "random"):
            raise WorkloadError(f"unknown memory behaviour kind {self.kind!r}")
        if self.region <= 0 or self.base < 0:
            raise WorkloadError("memory behaviour needs region > 0, base >= 0")
        if self.kind == "stream" and self.stride <= 0:
            raise WorkloadError("stream behaviour needs a positive stride")


class BasicBlock:
    """A straight-line instruction sequence with a single terminator.

    Attributes
    ----------
    block_id:
        Dense index of the block inside its program.
    instructions:
        The instructions in program order.  The last one is the terminator
        when :attr:`terminator` is not ``None``; otherwise the block falls
        through to :attr:`fall_through`.
    taken_succ / fall_succ:
        Successor block ids for the taken and fall-through edges.  Jumps
        only use ``taken_succ``.
    """

    def __init__(
        self,
        block_id: int,
        instructions: List[Instruction],
        taken_succ: Optional[int] = None,
        fall_succ: Optional[int] = None,
    ) -> None:
        if not instructions:
            raise WorkloadError(f"basic block {block_id} is empty")
        self.block_id = block_id
        self.instructions = instructions
        self.taken_succ = taken_succ
        self.fall_succ = fall_succ

    @property
    def terminator(self) -> Optional[Instruction]:
        """The control instruction ending the block, if any."""
        last = self.instructions[-1]
        return last if last.is_control else None

    @property
    def start_pc(self) -> int:
        """PC of the first instruction."""
        return self.instructions[0].pc

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return (
            f"<BasicBlock {self.block_id} pc={self.start_pc:#x} "
            f"len={len(self.instructions)}>"
        )


class StaticProgram:
    """A closed CFG plus the behaviours driving its dynamic execution."""

    def __init__(
        self,
        name: str,
        blocks: List[BasicBlock],
        entry: int = 0,
        branch_behaviors: Optional[Dict[int, BranchBehavior]] = None,
        mem_behaviors: Optional[Dict[int, MemBehavior]] = None,
    ) -> None:
        self.name = name
        self.blocks = blocks
        self.entry = entry
        self.branch_behaviors = dict(branch_behaviors or {})
        self.mem_behaviors = dict(mem_behaviors or {})
        self._by_pc: Dict[int, Instruction] = {}
        self._block_of_pc: Dict[int, int] = {}
        for block in blocks:
            for inst in block:
                if inst.pc in self._by_pc:
                    raise WorkloadError(f"duplicate pc {inst.pc:#x}")
                self._by_pc[inst.pc] = inst
                self._block_of_pc[inst.pc] = block.block_id
        self._validate()

    def _validate(self) -> None:
        n = len(self.blocks)
        if not 0 <= self.entry < n:
            raise WorkloadError(f"entry block {self.entry} out of range")
        for block in self.blocks:
            if block.block_id != self.blocks[block.block_id].block_id:
                raise WorkloadError("block ids must be dense indices")
            term = block.terminator
            if term is None:
                if block.fall_succ is None:
                    raise WorkloadError(
                        f"block {block.block_id} has no terminator and no "
                        f"fall-through successor"
                    )
            else:
                if block.taken_succ is None:
                    raise WorkloadError(
                        f"block {block.block_id} terminator lacks a taken "
                        f"successor"
                    )
                if term.is_conditional:
                    if block.fall_succ is None:
                        raise WorkloadError(
                            f"block {block.block_id} conditional branch lacks "
                            f"a fall-through successor"
                        )
                    if term.pc not in self.branch_behaviors:
                        raise WorkloadError(
                            f"conditional branch at {term.pc:#x} has no "
                            f"behaviour"
                        )
            for succ in (block.taken_succ, block.fall_succ):
                if succ is not None and not 0 <= succ < n:
                    raise WorkloadError(
                        f"block {block.block_id} successor {succ} out of range"
                    )
            for inst in block:
                if inst.is_memory and inst.pc not in self.mem_behaviors:
                    raise WorkloadError(
                        f"memory instruction at {inst.pc:#x} has no behaviour"
                    )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def instruction_at(self, pc: int) -> Instruction:
        """Return the static instruction at *pc* (raises on a bad pc)."""
        try:
            return self._by_pc[pc]
        except KeyError:
            raise WorkloadError(f"no instruction at pc {pc:#x}") from None

    def block_of(self, pc: int) -> BasicBlock:
        """Return the block containing *pc*."""
        return self.blocks[self._block_of_pc[pc]]

    def all_instructions(self) -> Iterator[Instruction]:
        """Iterate over every static instruction in program order."""
        for block in self.blocks:
            yield from block

    @property
    def num_instructions(self) -> int:
        """Total static instruction count."""
        return len(self._by_pc)

    def __repr__(self) -> str:
        return (
            f"<StaticProgram {self.name!r} blocks={len(self.blocks)} "
            f"instructions={self.num_instructions}>"
        )


def sample_branch_outcome(
    behavior: BranchBehavior, rng: random.Random, state: List[int]
) -> bool:
    """Draw the next outcome of a branch with the given behaviour.

    *state* is a one-element mutable counter used by loop behaviours; the
    caller owns one state list per static branch.
    """
    if behavior.kind == "loop":
        state[0] += 1
        if state[0] >= behavior.trip:
            state[0] = 0
            return False
        return True
    return rng.random() < behavior.taken_prob


def sample_mem_address(
    behavior: MemBehavior, rng: random.Random, state: List[int]
) -> int:
    """Draw the next address of a memory instruction.

    *state* is a one-element mutable stream offset for ``stream``
    behaviours.
    """
    if behavior.kind == "stream":
        addr = behavior.base + state[0]
        state[0] = (state[0] + behavior.stride) % behavior.region
        return addr
    word = rng.randrange(behavior.region // 4)
    return behavior.base + word * 4
