"""Per-benchmark workload profiles standing in for SpecInt95 (Table 1).

The paper evaluates eight SpecInt95 programs.  We cannot redistribute those
binaries, so each benchmark is replaced by a *profile*: a parameter set for
the synthetic program generator that reproduces the characteristics the
steering trade-offs depend on — instruction mix, basic-block size, branch
predictability, memory footprint and access pattern, and the depth/overlap
of the address and branch backward slices.

The numbers are calibrated from the published characterisations of
SpecInt95 (instruction mixes and branch/miss behaviour are folklore for
this suite): *compress* misses a lot, *li* chases pointers, *go* has very
unpredictable branches, *m88ksim* and *ijpeg* are regular and predictable,
*gcc*/*vortex* have large instruction and data footprints, *perl* sits in
between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import WorkloadError

#: Kilobyte, for footprint arithmetic.
KB = 1024


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator parameters that emulate one benchmark.

    Parameters
    ----------
    name:
        Benchmark name (``go``, ``gcc``...).
    input_name:
        The reference input listed in Table 1 of the paper (documentation
        only; the generator is synthetic).
    avg_block_size:
        Mean dynamic basic-block length including the terminator branch.
    frac_load / frac_store / frac_complex / frac_fp:
        Instruction-mix fractions of the *non-branch* instructions.
    loop_branch_frac:
        Fraction of conditional branches that behave like loop back-edges
        (highly predictable); the rest are data-dependent with a bias drawn
        from ``data_branch_bias``.
    data_branch_bias:
        ``(low, high)`` taken-probability range for data-dependent branches.
        Values near 0.5 are hard to predict.
    footprint_bytes:
        Data working-set size; larger than L1 means misses.
    cold_access_frac:
        Fraction of static memory sites touching the *whole* footprint at
        random — these are the miss-prone accesses (hash tables, large
        graphs); the remaining sites either stream sequentially or hit a
        small hot region, both mostly cache-resident.  This knob is the
        main control of the D-cache miss rate.
    pointer_chase_frac:
        Fraction of loads whose result feeds the next address computation
        (dependent loads, e.g. list traversal in *li*).
    addr_depth:
        Mean number of extra simple-int instructions feeding each address
        computation (controls the LdSt-slice size).
    cond_depth:
        Mean number of extra simple-int instructions feeding each branch
        condition (controls the Br-slice size).
    slice_overlap:
        Probability that a branch condition consumes a loaded value, which
        makes the LdSt and Br slices overlap.
    dep_distance:
        Mean backward distance (in instructions) when choosing source
        registers; smaller means longer dependence chains and less ILP.
    n_blocks:
        Number of static basic blocks to generate (instruction footprint).
    """

    name: str
    input_name: str
    avg_block_size: float
    frac_load: float
    frac_store: float
    frac_complex: float
    frac_fp: float
    loop_branch_frac: float
    data_branch_bias: Tuple[float, float]
    footprint_bytes: int
    cold_access_frac: float
    pointer_chase_frac: float
    addr_depth: float
    cond_depth: float
    slice_overlap: float
    dep_distance: float
    n_blocks: int = 48
    description: str = ""

    def __post_init__(self) -> None:
        fracs = (
            self.frac_load,
            self.frac_store,
            self.frac_complex,
            self.frac_fp,
        )
        if any(f < 0 for f in fracs) or sum(fracs) > 1.0 + 1e-9:
            raise WorkloadError(
                f"profile {self.name!r}: instruction-mix fractions must be "
                f"non-negative and sum to at most 1 (got {fracs})"
            )
        if self.avg_block_size < 2:
            raise WorkloadError(
                f"profile {self.name!r}: avg_block_size must be >= 2"
            )
        if self.footprint_bytes <= 0:
            raise WorkloadError(
                f"profile {self.name!r}: footprint must be positive"
            )
        if not 0 <= self.loop_branch_frac <= 1:
            raise WorkloadError(
                f"profile {self.name!r}: loop_branch_frac out of range"
            )

    @property
    def frac_simple(self) -> float:
        """Fraction of non-branch instructions that are simple integer."""
        return 1.0 - (
            self.frac_load + self.frac_store + self.frac_complex + self.frac_fp
        )


def _profile(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


#: The eight SpecInt95 stand-ins of Table 1, keyed by benchmark name.
SPECINT95: Dict[str, WorkloadProfile] = {
    "go": _profile(
        name="go",
        input_name="bigtest.in",
        avg_block_size=6.0,
        frac_load=0.24,
        frac_store=0.08,
        frac_complex=0.01,
        frac_fp=0.0,
        loop_branch_frac=0.5,
        data_branch_bias=(0.35, 0.65),
        footprint_bytes=96 * KB,
        cold_access_frac=0.015,
        pointer_chase_frac=0.06,
        addr_depth=1.0,
        cond_depth=1.6,
        slice_overlap=0.45,
        dep_distance=6.0,
        n_blocks=72,
        description="game tree search; notoriously unpredictable branches",
    ),
    "gcc": _profile(
        name="gcc",
        input_name="insn-recog.i",
        avg_block_size=5.0,
        frac_load=0.26,
        frac_store=0.12,
        frac_complex=0.01,
        frac_fp=0.0,
        loop_branch_frac=0.65,
        data_branch_bias=(0.2, 0.8),
        footprint_bytes=256 * KB,
        cold_access_frac=0.03,
        pointer_chase_frac=0.1,
        addr_depth=1.1,
        cond_depth=1.2,
        slice_overlap=0.40,
        dep_distance=7.0,
        n_blocks=96,
        description="compiler; large code and data footprint",
    ),
    "compress": _profile(
        name="compress",
        input_name="50000 e 2231",
        avg_block_size=6.5,
        frac_load=0.22,
        frac_store=0.10,
        frac_complex=0.02,
        frac_fp=0.0,
        loop_branch_frac=0.7,
        data_branch_bias=(0.30, 0.70),
        footprint_bytes=448 * KB,
        cold_access_frac=0.08,
        pointer_chase_frac=0.04,
        addr_depth=1.5,
        cond_depth=1.2,
        slice_overlap=0.50,
        dep_distance=5.0,
        n_blocks=40,
        description="LZW compression; hash table thrashes the D-cache",
    ),
    "li": _profile(
        name="li",
        input_name="*.lsp",
        avg_block_size=4.5,
        frac_load=0.28,
        frac_store=0.12,
        frac_complex=0.0,
        frac_fp=0.0,
        loop_branch_frac=0.6,
        data_branch_bias=(0.30, 0.70),
        footprint_bytes=128 * KB,
        cold_access_frac=0.03,
        pointer_chase_frac=0.25,
        addr_depth=0.9,
        cond_depth=1.2,
        slice_overlap=0.55,
        dep_distance=4.5,
        n_blocks=56,
        description="lisp interpreter; pointer chasing, short blocks",
    ),
    "ijpeg": _profile(
        name="ijpeg",
        input_name="pengin.ppm",
        avg_block_size=8.5,
        frac_load=0.20,
        frac_store=0.09,
        frac_complex=0.05,
        frac_fp=0.0,
        loop_branch_frac=0.88,
        data_branch_bias=(0.15, 0.85),
        footprint_bytes=160 * KB,
        cold_access_frac=0.01,
        pointer_chase_frac=0.02,
        addr_depth=1.8,
        cond_depth=1.0,
        slice_overlap=0.25,
        dep_distance=9.0,
        n_blocks=48,
        description="image codec; long predictable loops, streaming access",
    ),
    "vortex": _profile(
        name="vortex",
        input_name="vortex.raw",
        avg_block_size=5.5,
        frac_load=0.27,
        frac_store=0.14,
        frac_complex=0.01,
        frac_fp=0.0,
        loop_branch_frac=0.75,
        data_branch_bias=(0.2, 0.8),
        footprint_bytes=320 * KB,
        cold_access_frac=0.04,
        pointer_chase_frac=0.12,
        addr_depth=1.2,
        cond_depth=1.2,
        slice_overlap=0.40,
        dep_distance=6.5,
        n_blocks=88,
        description="object database; memory intensive",
    ),
    "perl": _profile(
        name="perl",
        input_name="primes.pl",
        avg_block_size=5.0,
        frac_load=0.25,
        frac_store=0.11,
        frac_complex=0.02,
        frac_fp=0.0,
        loop_branch_frac=0.65,
        data_branch_bias=(0.25, 0.75),
        footprint_bytes=144 * KB,
        cold_access_frac=0.02,
        pointer_chase_frac=0.1,
        addr_depth=1.0,
        cond_depth=1.4,
        slice_overlap=0.45,
        dep_distance=6.0,
        n_blocks=72,
        description="perl interpreter; branchy with moderate locality",
    ),
    "m88ksim": _profile(
        name="m88ksim",
        input_name="ctl.raw, dcrand.lit",
        avg_block_size=6.0,
        frac_load=0.21,
        frac_store=0.08,
        frac_complex=0.02,
        frac_fp=0.0,
        loop_branch_frac=0.85,
        data_branch_bias=(0.10, 0.90),
        footprint_bytes=64 * KB,
        cold_access_frac=0.008,
        pointer_chase_frac=0.05,
        addr_depth=1.3,
        cond_depth=1.2,
        slice_overlap=0.30,
        dep_distance=8.0,
        n_blocks=64,
        description="CPU simulator; small working set, predictable",
    ),
}

#: Benchmark order used by the paper's figures.
FIGURE_ORDER: Tuple[str, ...] = (
    "go",
    "gcc",
    "compress",
    "li",
    "ijpeg",
    "vortex",
    "perl",
    "m88ksim",
)

#: Figure 3 compares against Sastry et al., which reports seven programs.
FIGURE3_ORDER: Tuple[str, ...] = (
    "perl",
    "go",
    "gcc",
    "li",
    "compress",
    "ijpeg",
    "m88ksim",
)


#: Profiles contributed by workload families outside the SpecInt95 table
#: (see :mod:`repro.scenarios.registry`).  Kept separate so the paper's
#: Table 1 stays closed and contributed names can never shadow it.
_EXTRA_PROFILES: Dict[str, WorkloadProfile] = {}

#: Whether the built-in scenario families have been pulled in yet (the
#: import is deferred to the first profile miss so that importing
#: ``repro.workloads`` alone stays cheap and cycle-free).
_SCENARIOS_LOADED = False


def register_profile(profile: WorkloadProfile, replace: bool = False) -> None:
    """Make *profile* resolvable by name through :func:`get_profile`.

    SpecInt95 names are reserved; registering one raises.  Re-registering
    an extra name raises unless ``replace=True`` (tests use replacement to
    install doctored variants).
    """
    if profile.name in SPECINT95:
        raise WorkloadError(
            f"cannot register profile {profile.name!r}: the SpecInt95 "
            f"benchmark names are reserved"
        )
    if profile.name in _EXTRA_PROFILES and not replace:
        raise WorkloadError(
            f"profile {profile.name!r} is already registered "
            f"(pass replace=True to overwrite)"
        )
    _EXTRA_PROFILES[profile.name] = profile


def unregister_profile(name: str) -> None:
    """Remove a registered extra profile (no-op for unknown names)."""
    _EXTRA_PROFILES.pop(name, None)


def registered_profiles() -> Dict[str, WorkloadProfile]:
    """Snapshot of the extra (non-SpecInt95) profiles by name."""
    return dict(_EXTRA_PROFILES)


def _load_builtin_scenarios() -> bool:
    """Import :mod:`repro.scenarios` once, registering its families.

    Returns ``True`` when the import happened on this call (the caller
    then retries its lookup).  The import is safe here: by the time any
    profile is looked up, :mod:`repro.workloads` is fully initialised.
    """
    global _SCENARIOS_LOADED
    if _SCENARIOS_LOADED:
        return False
    _SCENARIOS_LOADED = True
    import repro.scenarios  # noqa: F401 — imported for its registrations

    return True


def get_profile(name: str) -> WorkloadProfile:
    """Look up a benchmark profile by name.

    SpecInt95 stand-ins are checked first, then profiles contributed by
    registered workload families (loading the built-in scenario families
    on the first miss).  Raises :class:`~repro.errors.WorkloadError` for
    unknown names, listing the available benchmarks.
    """
    profile = SPECINT95.get(name) or _EXTRA_PROFILES.get(name)
    if profile is None and _load_builtin_scenarios():
        profile = _EXTRA_PROFILES.get(name)
    if profile is not None:
        return profile
    known = ", ".join(sorted((*SPECINT95, *_EXTRA_PROFILES)))
    raise WorkloadError(f"unknown benchmark {name!r}; available: {known}")
