"""Dynamic trace execution: the committed-path oracle.

The timing simulator is trace-driven: it consumes the committed instruction
stream (with branch outcomes and memory addresses decided here) and models
the machine's timing around it.  This matches the methodology of
trace-driven SimpleScalar timing studies: wrong-path instructions are not
simulated; a mispredicted branch instead stalls fetch until it resolves.

:class:`TraceExecutor` walks the program CFG for ever, sampling branch
outcomes and memory addresses from the per-instruction behaviours attached
to the program.  Iteration is deterministic for a fixed seed.

:class:`SharedTrace` materialises that committed path once and replays it
to any number of simulations: a figure campaign running ten steering
schemes over one benchmark decodes the trace a single time instead of
ten.  Replays are exact — a :class:`TraceReplay` yields the very records
the underlying executor produced, lazily extending the shared buffer when
a consumer runs past the materialised prefix.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, NamedTuple, Tuple

from ..isa import Instruction
from .program import (
    StaticProgram,
    sample_branch_outcome,
    sample_mem_address,
)


class TraceRecord(NamedTuple):
    """One committed dynamic instruction.

    ``taken`` is meaningful for control instructions, ``mem_addr`` for
    memory instructions (0 otherwise).
    """

    inst: Instruction
    taken: bool
    mem_addr: int


class TraceExecutor:
    """Infinite iterator over the committed path of a program."""

    def __init__(self, program: StaticProgram, seed: int = 0) -> None:
        self.program = program
        self.seed = seed
        self._rng = random.Random(seed * 9176 + 11)
        self._branch_state = {
            pc: [0] for pc in program.branch_behaviors
        }
        self._mem_state: dict = {}
        for pc, behavior in program.mem_behaviors.items():
            self._mem_state[pc] = [0]
        self._block = program.blocks[program.entry]
        self._index = 0
        self._emitted = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return self

    def __next__(self) -> TraceRecord:
        block = self._block
        inst = block.instructions[self._index]
        taken = False
        mem_addr = 0
        is_last = self._index == len(block.instructions) - 1
        if inst.is_memory:
            behavior = self.program.mem_behaviors[inst.pc]
            mem_addr = sample_mem_address(
                behavior, self._rng, self._mem_state[inst.pc]
            )
        if is_last:
            next_block = block.fall_succ
            if inst.is_control:
                if inst.is_conditional:
                    behavior = self.program.branch_behaviors[inst.pc]
                    taken = sample_branch_outcome(
                        behavior, self._rng, self._branch_state[inst.pc]
                    )
                else:
                    taken = True
                next_block = (
                    block.taken_succ if taken else block.fall_succ
                )
            self._block = self.program.blocks[next_block]
            self._index = 0
        else:
            self._index += 1
        self._emitted += 1
        return TraceRecord(inst, taken, mem_addr)

    @property
    def emitted(self) -> int:
        """Number of records produced so far."""
        return self._emitted

    def skip(self, n: int) -> None:
        """Advance the trace by *n* instructions without yielding them.

        Mirrors the paper's methodology of skipping the first part of each
        benchmark before measuring.
        """
        for _ in range(n):
            next(self)

    def take(self, n: int) -> List[TraceRecord]:
        """Materialise the next *n* records (mainly for tests/analysis)."""
        return list(itertools.islice(self, n))


#: How many records a replay materialises at a time when it outruns the
#: shared buffer.  Large enough to amortise the Python call overhead,
#: small enough that a short smoke run does not decode a huge prefix.
_EXTEND_CHUNK = 2048

#: Builds per (program name, seed) since the last reset — the campaign
#: tests use this to prove a trace is generated exactly once per
#: benchmark/seed pair.
_BUILD_COUNTS: Dict[Tuple[str, int], int] = {}


def trace_build_counts() -> Dict[Tuple[str, int], int]:
    """Snapshot of ``{(program_name, seed): SharedTrace builds}``."""
    return dict(_BUILD_COUNTS)


def reset_trace_stats() -> None:
    """Forget the build counters (test isolation)."""
    _BUILD_COUNTS.clear()


class SharedTrace:
    """A lazily materialised committed path, shared across simulations.

    Wraps one :class:`TraceExecutor` and buffers everything it emits.
    :meth:`replay` hands out independent cursors over the buffer, so many
    processors can consume the same dynamic stream without re-sampling
    branch outcomes or memory addresses.  The buffer grows on demand and
    is append-only, which keeps replays exact and deterministic.

    This trades memory for speed: the buffer retains every record any
    consumer has reached (O(warmup + n) per (bench, seed)), and the
    workload cache keeps it alive for the process lifetime.  At the
    default 25k-instruction windows that is negligible; sessions
    running very large windows over many benchmarks should call
    :func:`repro.workloads.clear_workload_cache` between campaigns.
    """

    def __init__(self, program, seed: int = 0) -> None:
        self.program = program
        self.seed = seed
        self._source = TraceExecutor(program, seed=seed)
        self._records: List[TraceRecord] = []
        self._columns = None
        key = (program.name, seed)
        _BUILD_COUNTS[key] = _BUILD_COUNTS.get(key, 0) + 1

    def __len__(self) -> int:
        """Records materialised so far."""
        return len(self._records)

    def ensure(self, n: int) -> None:
        """Materialise the committed path out to at least *n* records."""
        records = self._records
        source = self._source
        while len(records) < n:
            records.append(next(source))

    def record(self, index: int) -> TraceRecord:
        """The *index*-th committed record (materialising as needed)."""
        if index >= len(self._records):
            self.ensure(index + _EXTEND_CHUNK)
        return self._records[index]

    def replay(self) -> "TraceReplay":
        """A fresh cursor over the shared stream (starts at record 0)."""
        return TraceReplay(self)

    def columns(self):
        """Structure-of-arrays view of the trace, built once and pinned.

        The returned :class:`~repro.workloads.columns.TraceColumns`
        extends in step with this buffer; every simulation of the same
        shared trace reuses the same column set (the columnar pipeline's
        analogue of sharing the record buffer).
        """
        from .columns import TraceColumns

        if self._columns is None:
            self._columns = TraceColumns.for_trace(self)
        else:
            self._columns.sync()
        return self._columns


class TraceReplay:
    """Iterator replaying a :class:`SharedTrace` from the beginning.

    Implements the same surface as :class:`TraceExecutor` (iteration,
    ``skip``, ``take``, ``emitted``) so the fetch unit and the analysis
    helpers cannot tell a replay from a live executor.
    """

    __slots__ = ("_shared", "_pos")

    def __init__(self, shared: SharedTrace) -> None:
        self._shared = shared
        self._pos = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return self

    def __next__(self) -> TraceRecord:
        record = self._shared.record(self._pos)
        self._pos += 1
        return record

    @property
    def emitted(self) -> int:
        """Number of records produced so far."""
        return self._pos

    def skip(self, n: int) -> None:
        """Advance the replay by *n* records without yielding them."""
        self._shared.ensure(self._pos + n)
        self._pos += n

    def take(self, n: int) -> List[TraceRecord]:
        """Materialise the next *n* records."""
        return list(itertools.islice(self, n))
