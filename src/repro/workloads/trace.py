"""Dynamic trace execution: the committed-path oracle.

The timing simulator is trace-driven: it consumes the committed instruction
stream (with branch outcomes and memory addresses decided here) and models
the machine's timing around it.  This matches the methodology of
trace-driven SimpleScalar timing studies: wrong-path instructions are not
simulated; a mispredicted branch instead stalls fetch until it resolves.

:class:`TraceExecutor` walks the program CFG for ever, sampling branch
outcomes and memory addresses from the per-instruction behaviours attached
to the program.  Iteration is deterministic for a fixed seed.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, NamedTuple

from ..isa import Instruction
from .program import (
    StaticProgram,
    sample_branch_outcome,
    sample_mem_address,
)


class TraceRecord(NamedTuple):
    """One committed dynamic instruction.

    ``taken`` is meaningful for control instructions, ``mem_addr`` for
    memory instructions (0 otherwise).
    """

    inst: Instruction
    taken: bool
    mem_addr: int


class TraceExecutor:
    """Infinite iterator over the committed path of a program."""

    def __init__(self, program: StaticProgram, seed: int = 0) -> None:
        self.program = program
        self.seed = seed
        self._rng = random.Random(seed * 9176 + 11)
        self._branch_state = {
            pc: [0] for pc in program.branch_behaviors
        }
        self._mem_state: dict = {}
        for pc, behavior in program.mem_behaviors.items():
            self._mem_state[pc] = [0]
        self._block = program.blocks[program.entry]
        self._index = 0
        self._emitted = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return self

    def __next__(self) -> TraceRecord:
        block = self._block
        inst = block.instructions[self._index]
        taken = False
        mem_addr = 0
        is_last = self._index == len(block.instructions) - 1
        if inst.is_memory:
            behavior = self.program.mem_behaviors[inst.pc]
            mem_addr = sample_mem_address(
                behavior, self._rng, self._mem_state[inst.pc]
            )
        if is_last:
            next_block = block.fall_succ
            if inst.is_control:
                if inst.is_conditional:
                    behavior = self.program.branch_behaviors[inst.pc]
                    taken = sample_branch_outcome(
                        behavior, self._rng, self._branch_state[inst.pc]
                    )
                else:
                    taken = True
                next_block = (
                    block.taken_succ if taken else block.fall_succ
                )
            self._block = self.program.blocks[next_block]
            self._index = 0
        else:
            self._index += 1
        self._emitted += 1
        return TraceRecord(inst, taken, mem_addr)

    @property
    def emitted(self) -> int:
        """Number of records produced so far."""
        return self._emitted

    def skip(self, n: int) -> None:
        """Advance the trace by *n* instructions without yielding them.

        Mirrors the paper's methodology of skipping the first part of each
        benchmark before measuring.
        """
        for _ in range(n):
            next(self)

    def take(self, n: int) -> List[TraceRecord]:
        """Materialise the next *n* records (mainly for tests/analysis)."""
        return list(itertools.islice(self, n))
