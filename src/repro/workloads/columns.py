"""Structure-of-arrays form of a committed trace (the columnar core).

:class:`TraceColumns` holds one workload's committed path as parallel
arrays — static :class:`~repro.isa.Instruction` references, program
counters, packed per-record flags, memory addresses and dense static
(slice) ids — instead of a list of per-record tuples.  The fetch and
dispatch hot paths index these arrays directly, which removes the
per-instruction method-call chain (``_peek``/``_pop``/``record``) the
object path pays for every fetched record.

Columns are built once per shared trace and pinned alongside it:

* :meth:`TraceColumns.for_trace` wraps a live
  :class:`~repro.workloads.trace.SharedTrace` (or a record-backed frozen
  trace) and extends lazily as the underlying buffer grows;
* :meth:`TraceColumns.from_arrays` decodes an ``.rtrace`` document's
  ``pc``/``taken``/``addr`` columns straight into DynInst-ready arrays
  without materialising intermediate ``TraceRecord`` tuples — the
  ``import_trace(..., columnar=True)`` fast path.

The numpy kernel (bulk line-id computation for the I-cache line checks)
is optional: it engages only when numpy is importable, only for the
initial bulk build, and produces exactly the integers the pure-Python
fallback does.  Nothing in this module is reachable unless the columnar
pipeline is selected (``REPRO_DISPATCH=columnar``, the default) or
columns are requested explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ScenarioError

try:  # Optional bulk-build kernel; the container may lack numpy.
    import numpy as _np
except ImportError:  # pragma: no cover - environment-dependent
    _np = None

#: Packed per-record flag bits (``TraceColumns.flags``).
TAKEN = 1
CONTROL = 2
CONDITIONAL = 4
MEMORY = 8


def _base_flags(inst) -> int:
    """The static (taken-independent) flag bits of one instruction."""
    base = 0
    if inst.is_control:
        base |= CONTROL
    if inst.is_conditional:
        base |= CONDITIONAL
    if inst.is_memory:
        base |= MEMORY
    return base


class TraceColumns:
    """Parallel per-record arrays over one committed instruction stream.

    Attributes (all lists of equal length, one entry per record):

    ``insts``
        The static :class:`~repro.isa.Instruction` at each record.
    ``pcs``
        Program counter of each record.
    ``flags``
        Packed ``TAKEN | CONTROL | CONDITIONAL | MEMORY`` bits.
    ``mem_addrs``
        Effective address for memory records (0 otherwise).
    ``static_ids``
        Dense per-static-instruction index (first-seen order) — the
        compact slice-id key steering memo tables use instead of sparse
        PCs.  Stable within one :class:`TraceColumns`.

    Plain Python lists are deliberate: the hot loops index one element
    at a time, where list indexing beats numpy scalar access.  numpy is
    used only for the bulk :meth:`line_ids` build.
    """

    __slots__ = (
        "program",
        "insts",
        "pcs",
        "flags",
        "mem_addrs",
        "static_ids",
        "_per_pc",
        "_pc_ids",
        "_line_cache",
        "_trace",
    )

    def __init__(self, program) -> None:
        self.program = program
        self.insts: List[object] = []
        self.pcs: List[int] = []
        self.flags: List[int] = []
        self.mem_addrs: List[int] = []
        self.static_ids: List[int] = []
        #: pc -> (instruction, base flags, static id) build cache.
        self._per_pc: Dict[int, tuple] = {}
        self._pc_ids: Dict[int, int] = {}
        #: line_bytes -> per-record I-cache line ids (extended in step
        #: with the record columns, so cached lists stay valid).
        self._line_cache: Dict[int, List[int]] = {}
        #: Backing trace for lazy extension (None = fixed length).
        self._trace = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_trace(cls, trace) -> "TraceColumns":
        """Columns over *trace*'s record buffer, extending on demand."""
        self = cls(trace.program)
        self._trace = trace
        self.sync()
        return self

    @classmethod
    def from_arrays(
        cls,
        program,
        pcs: Sequence[int],
        taken: Sequence[int],
        addrs: Sequence[int],
    ) -> "TraceColumns":
        """Decode ``.rtrace`` record columns directly (no TraceRecords).

        The arrays are the wire format of the ``records`` section of an
        ``.rtrace`` document; the result is a fixed-length column set
        (reading past the end raises :class:`ScenarioError`).
        """
        self = cls(program)
        info = self._pc_info
        out_insts = self.insts
        out_pcs = self.pcs
        out_flags = self.flags
        out_addrs = self.mem_addrs
        out_sids = self.static_ids
        for pc, t, addr in zip(pcs, taken, addrs):
            inst, base, sid = info(pc)
            out_insts.append(inst)
            out_pcs.append(pc)
            out_flags.append(base | TAKEN if t else base)
            out_addrs.append(addr)
            out_sids.append(sid)
        return self

    def _pc_info(self, pc: int) -> tuple:
        """(instruction, base flags, static id) of *pc*, cached."""
        tup = self._per_pc.get(pc)
        if tup is None:
            inst = self.program.instruction_at(pc)
            sid = self._pc_ids.setdefault(pc, len(self._pc_ids))
            tup = (inst, _base_flags(inst), sid)
            self._per_pc[pc] = tup
        return tup

    # ------------------------------------------------------------------
    # Length / extension protocol
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Records decoded into the columns so far."""
        return len(self.pcs)

    def sync(self) -> None:
        """Pull records the backing trace materialised since last sync."""
        trace = self._trace
        if trace is None:
            return
        records = trace._records
        if records is None:
            return
        start = len(self.pcs)
        if start >= len(records):
            return
        info = self._pc_info
        out_insts = self.insts
        out_pcs = self.pcs
        out_flags = self.flags
        out_addrs = self.mem_addrs
        out_sids = self.static_ids
        for record in records[start:]:
            inst = record.inst
            pc = inst.pc
            _, base, sid = info(pc)
            out_insts.append(inst)
            out_pcs.append(pc)
            out_flags.append(base | TAKEN if record.taken else base)
            out_addrs.append(record.mem_addr)
            out_sids.append(sid)
        if self._line_cache:
            new_pcs = out_pcs[start:]
            for line_bytes, ids in self._line_cache.items():
                ids.extend(pc // line_bytes for pc in new_pcs)

    def require(self, n: int) -> None:
        """Make at least *n* records available, or raise.

        Mirrors the timing of the object path's ``_peek``: a live shared
        trace extends its buffer (in the same chunks ``record`` uses); a
        frozen trace raises :class:`~repro.errors.ScenarioError` with
        the same message the record path produces.
        """
        if n <= len(self.pcs):
            return
        trace = self._trace
        if trace is None:
            raise ScenarioError(
                f"trace columns hold {len(self.pcs)} records but {n} "
                f"were requested"
            )
        trace.record(n - 1)  # extends (chunked) or raises ScenarioError
        self.sync()
        if n > len(self.pcs):  # pragma: no cover - defensive
            raise ScenarioError(
                f"trace columns could not extend to {n} records"
            )

    # ------------------------------------------------------------------
    # Derived columns
    # ------------------------------------------------------------------
    def line_ids(self, line_bytes: int) -> List[int]:
        """Per-record I-cache line ids (``pc // line_bytes``), cached.

        The cached list is extended in place by :meth:`sync`, so hot
        loops may hold a reference across extensions.  The initial bulk
        build vectorises through numpy when available.
        """
        ids = self._line_cache.get(line_bytes)
        if ids is None:
            if _np is not None and len(self.pcs) > 512:
                ids = (
                    _np.asarray(self.pcs, dtype=_np.int64) // line_bytes
                ).tolist()
            else:
                ids = [pc // line_bytes for pc in self.pcs]
            self._line_cache[line_bytes] = ids
        return ids

    # ------------------------------------------------------------------
    # Interop with the record form
    # ------------------------------------------------------------------
    def to_records(self) -> list:
        """Materialise the classic ``TraceRecord`` list (object path)."""
        from .trace import TraceRecord

        insts = self.insts
        flags = self.flags
        addrs = self.mem_addrs
        return [
            TraceRecord(insts[i], (flags[i] & TAKEN) != 0, addrs[i])
            for i in range(len(insts))
        ]

    def __len__(self) -> int:
        return len(self.pcs)

    def __repr__(self) -> str:
        name = getattr(self.program, "name", "?")
        return f"<TraceColumns {name!r} n={len(self.pcs)}>"
