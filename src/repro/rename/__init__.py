"""Dynamic register renaming with per-cluster mappings and copy insertion."""

from .free_list import FreeList, make_free_lists
from .map_table import MapEntry, MapTable
from .renamer import RenamePlan, Renamer

__all__ = [
    "FreeList",
    "make_free_lists",
    "MapEntry",
    "MapTable",
    "RenamePlan",
    "Renamer",
]
