"""Register rename with dynamic copy insertion (paper §2).

When an instruction is decoded, the steering logic picks its cluster and a
physical register from that cluster is allocated for the destination.
When a source operand resides only in the remote cluster, the dispatch
logic allocates a local physical register and inserts a *copy* instruction
in the remote cluster that will read the operand when available and send
it through an inter-cluster bypass.  Copies compete for issue slots and
ports like normal instructions.

The renamer is split into :meth:`plan` (a pure feasibility check that the
dispatch stage uses to decide whether to stall) and :meth:`rename` (the
mutating step producing the copy instructions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError
from ..isa import DynInst, make_copy_inst
from ..isa.registers import is_fp_reg
from .free_list import FreeList
from .map_table import MapTable


@dataclass
class RenamePlan:
    """Resource requirements of renaming one instruction to a cluster."""

    cluster: int
    regs_needed: Tuple[int, int] = (0, 0)
    #: (logical_reg, source_cluster) for each copy to insert; copies join
    #: the *source* cluster's issue queue.
    copies: List[Tuple[int, int]] = field(default_factory=list)

    def copies_from(self, cluster: int) -> int:
        """Number of planned copies issuing out of *cluster*."""
        return sum(1 for _, src in self.copies if src == cluster)


class Renamer:
    """Allocates registers, resolves providers, and inserts copies."""

    def __init__(
        self,
        map_table: MapTable,
        free_lists: List[FreeList],
        allow_copies: bool = True,
    ) -> None:
        self.map_table = map_table
        self.free_lists = free_lists
        self.allow_copies = allow_copies
        self.copies_created = 0

    # ------------------------------------------------------------------
    def _dst_cluster(self, dyn: DynInst, cluster: int) -> int:
        """Cluster whose register file receives the destination value.

        FP registers exist only in the FP cluster (cluster 1): an FP load
        may compute its address in either cluster but the loaded value is
        written into the FP register file.
        """
        dst = dyn.inst.dst
        if dst is not None and is_fp_reg(dst):
            return 1
        return cluster

    def plan(self, dyn: DynInst, cluster: int) -> RenamePlan:
        """Compute the registers and copies renaming would need."""
        plan = RenamePlan(cluster=cluster)
        need = [0, 0]
        provider = self.map_table.provider
        copies = plan.copies
        for reg in dyn.inst.issue_srcs:
            if provider(reg, cluster) is not None:
                continue
            if copies and any(reg == planned for planned, _ in copies):
                continue
            if provider(reg, 1 - cluster) is None:
                raise SimulationError(
                    f"register {reg} of {dyn!r} is present in no cluster"
                )
            if is_fp_reg(reg):
                raise SimulationError(
                    f"FP register {reg} would need a copy; FP values must "
                    f"stay in cluster 1"
                )
            copies.append((reg, 1 - cluster))
            need[cluster] += 1
        if dyn.inst.dst is not None:
            need[self._dst_cluster(dyn, cluster)] += 1
        plan.regs_needed = (need[0], need[1])
        return plan

    def feasible(self, plan: RenamePlan) -> bool:
        """True when the free lists can satisfy *plan*."""
        if plan.copies and not self.allow_copies:
            return False
        return self.free_lists[0].can_allocate(
            plan.regs_needed[0]
        ) and self.free_lists[1].can_allocate(plan.regs_needed[1])

    # ------------------------------------------------------------------
    def rename(
        self,
        dyn: DynInst,
        plan: RenamePlan,
        cycle: int,
        next_seq: Callable[[], int],
    ) -> List[DynInst]:
        """Execute *plan*: mutate the map table, return the new copies."""
        if plan.copies and not self.allow_copies:
            raise SimulationError(
                "copy needed but this machine has no inter-cluster bypasses"
            )
        cluster = plan.cluster
        copies: List[DynInst] = []
        for reg, src_cluster in plan.copies:
            provider = self.map_table.provider(reg, src_cluster)
            if provider is None:
                raise SimulationError(
                    f"planned copy source for register {reg} vanished"
                )
            copy = make_copy_inst(next_seq(), reg, dyn.seq)
            copy.cluster = src_cluster
            copy.dispatch_cycle = cycle
            copy.providers = [provider]
            self.free_lists[cluster].allocate()
            self.map_table.add_copy(reg, cluster, copy)
            copies.append(copy)
            self.copies_created += 1
        providers: List[DynInst] = []
        lookup = self.map_table.provider
        copy_srcs = False
        for reg in dyn.inst.issue_srcs:
            provider = lookup(reg, cluster)
            if provider is None:
                raise SimulationError(
                    f"register {reg} still absent in cluster {cluster} "
                    f"after copy insertion"
                )
            if not (provider.completed and provider.complete_cycle <= 0):
                providers.append(provider)
                if provider.is_copy:
                    copy_srcs = True
        dyn.providers = providers
        dyn.copy_srcs = copy_srcs
        if dyn.inst.dst is not None:
            dst_cluster = self._dst_cluster(dyn, cluster)
            self.free_lists[dst_cluster].allocate()
            dyn.frees = self.map_table.define(dyn.inst.dst, dst_cluster, dyn)
        dyn.cluster = cluster
        return copies

    def release_at_commit(self, dyn: DynInst) -> None:
        """Free the registers of the mapping *dyn* overwrote."""
        freed0, freed1 = dyn.frees
        if freed0:
            self.free_lists[0].release(freed0)
        if freed1:
            self.free_lists[1].release(freed1)
