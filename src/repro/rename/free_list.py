"""Per-cluster physical register free lists.

The timing model does not track register *values*, only occupancy: rename
stalls when a cluster's free list is empty, and commits release the
registers held by overwritten mappings.  A counter per cluster is
therefore sufficient and keeps the hot path cheap, but the class checks
its own invariants so model bugs surface as exceptions rather than as
silently wrong speedups.
"""

from __future__ import annotations

from typing import List

from ..errors import SimulationError


class FreeList:
    """Counts free physical registers in one cluster."""

    def __init__(self, total: int, initially_used: int = 0, name: str = "") -> None:
        if initially_used > total:
            raise SimulationError(
                f"free list {name}: architectural state ({initially_used}) "
                f"exceeds the physical register file ({total})"
            )
        self.total = total
        self.name = name
        self._free = total - initially_used

    @property
    def free(self) -> int:
        """Number of registers currently available."""
        return self._free

    @property
    def used(self) -> int:
        """Number of registers currently allocated."""
        return self.total - self._free

    def can_allocate(self, n: int = 1) -> bool:
        """True when *n* registers can be allocated."""
        return self._free >= n

    def allocate(self, n: int = 1) -> None:
        """Take *n* registers; raises when the list underflows."""
        if self._free < n:
            raise SimulationError(
                f"free list {self.name}: allocating {n} with {self._free} free"
            )
        self._free -= n

    def release(self, n: int = 1) -> None:
        """Return *n* registers; raises when the list overflows."""
        if self._free + n > self.total:
            raise SimulationError(
                f"free list {self.name}: releasing {n} beyond capacity"
            )
        self._free += n


def make_free_lists(
    regs_per_cluster: List[int], pinned: List[int]
) -> List[FreeList]:
    """Build one free list per cluster.

    *pinned* gives the number of registers holding architectural state at
    reset in each cluster (integer registers live in cluster 0, FP
    registers in cluster 1).
    """
    if len(regs_per_cluster) != len(pinned):
        raise SimulationError("regs_per_cluster and pinned length mismatch")
    return [
        FreeList(total, used, name=f"cluster{i}")
        for i, (total, used) in enumerate(zip(regs_per_cluster, pinned))
    ]
