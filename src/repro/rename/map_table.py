"""The single register map table with per-cluster mappings (paper §2).

Because simple integer instructions may execute in either cluster, each
integer logical register can be *present* (have an allocated physical
register) in one cluster, in both, or transiently in neither cluster's
committed state while a producer is in flight.  The map table therefore
stores, per logical register and per cluster, the :class:`DynInst` whose
completion makes the value readable there — either the producing
instruction or a copy instruction moving it across.

A consumer steered to cluster *c* resolves its source to ``entry[c]``;
when the value is absent there, the dispatch logic inserts a copy (see
:mod:`repro.rename.renamer`) and records it in the entry so later
consumers in *c* reuse the same copy — the register replication the paper
measures in Figure 15.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa import DynInst, Instruction, Opcode
from ..isa.registers import FP_BASE, N_REGS


def _architectural_value() -> DynInst:
    """A pseudo-producer representing committed architectural state."""
    inst = Instruction(pc=0, opcode=Opcode.NOP)
    dyn = DynInst(-1, inst)
    dyn.complete_cycle = 0
    dyn.completed = True
    return dyn


class MapEntry:
    """Presence of one logical register in each cluster."""

    __slots__ = ("providers",)

    def __init__(self) -> None:
        self.providers: List[Optional[DynInst]] = [None, None]

    def present_in(self, cluster: int) -> bool:
        """True when the value has (or will have) a register in *cluster*."""
        return self.providers[cluster] is not None

    @property
    def replicated(self) -> bool:
        """True when the value occupies registers in both clusters."""
        return self.providers[0] is not None and self.providers[1] is not None


class MapTable:
    """Map from logical register to per-cluster providers."""

    def __init__(self, n_clusters: int = 2) -> None:
        if n_clusters != 2:
            raise ValueError("the paper's machine has exactly two clusters")
        self.entries: List[MapEntry] = [MapEntry() for _ in range(N_REGS)]
        # Flat per-register presence masks (bit c = present in cluster
        # c), maintained by define/add_copy in lock-step with the
        # entries.  The steering/dispatch hot paths index this list
        # directly; its identity is stable for the table's lifetime so
        # a SteeringContext can hold a reference across resets.
        self.masks: List[int] = [0] * N_REGS
        self.reset()

    def reset(self) -> None:
        """Pin architectural state: int regs in cluster 0, FP in cluster 1."""
        anchor = _architectural_value()
        masks = self.masks
        for reg, entry in enumerate(self.entries):
            entry.providers = [None, None]
            entry.providers[0 if reg < FP_BASE else 1] = anchor
            masks[reg] = 1 if reg < FP_BASE else 2
        # Maintained incrementally by define/add_copy so the per-cycle
        # replication statistic is O(1) instead of a 64-entry scan.
        self._replicated_ints = 0

    # ------------------------------------------------------------------
    def provider(self, reg: int, cluster: int) -> Optional[DynInst]:
        """Provider of *reg* in *cluster* (None when absent)."""
        return self.entries[reg].providers[cluster]

    def presence_mask(self, reg: int) -> int:
        """Bit mask of clusters where *reg* is present (bit c = cluster c)."""
        return self.masks[reg]

    def define(self, reg: int, cluster: int, producer: DynInst) -> tuple:
        """Install *producer* as the new value of *reg* in *cluster*.

        Returns ``(freed0, freed1)``: how many physical registers the old
        mapping held in each cluster.  Those registers are released when
        *producer* commits (the old value may still have in-flight
        readers until then).
        """
        entry = self.entries[reg]
        freed = (
            int(entry.providers[0] is not None),
            int(entry.providers[1] is not None),
        )
        if reg < FP_BASE and freed[0] and freed[1]:
            self._replicated_ints -= 1
        entry.providers = [None, None]
        entry.providers[cluster] = producer
        self.masks[reg] = 1 << cluster
        return freed

    def add_copy(self, reg: int, cluster: int, copy: DynInst) -> None:
        """Record that *copy* will materialise *reg* in *cluster*."""
        entry = self.entries[reg]
        if entry.providers[cluster] is not None:
            raise ValueError(
                f"register {reg} already present in cluster {cluster}"
            )
        entry.providers[cluster] = copy
        self.masks[reg] |= 1 << cluster
        if reg < FP_BASE and entry.providers[1 - cluster] is not None:
            self._replicated_ints += 1

    def count_replicated(self, upto: int = FP_BASE) -> int:
        """Number of logical registers currently mapped in both clusters.

        By default only integer registers are counted — FP values never
        replicate in this microarchitecture.  The default is served from
        the incrementally maintained counter; other ranges fall back to a
        scan.
        """
        if upto == FP_BASE:
            return self._replicated_ints
        return sum(1 for e in self.entries[:upto] if e.replicated)
