"""Out-of-order issue queue (one per cluster).

Entries are kept in dispatch order; issue selection walks oldest-first,
which both matches age-based select logic and gives deterministic results.
Entries vacate the queue when they issue.

The queue keeps an explicit *ready list* maintained by the event-driven
wakeup machinery (:mod:`repro.pipeline.wakeup`): an entry joins it when
its pending-operand counter reaches zero and leaves when it issues.  The
list is kept in age order incrementally (binary insertion on wakeup, not
a per-cycle sort), so the issue stage walks only ready instructions —
and usually only the first ``issue_width`` of them — instead of
re-scanning the whole window every cycle; ``remove`` is O(1) on the
window instead of a linear ``list.remove``.

Age order for selection is *insertion* order, not ``seq`` order: copy
instructions receive fresh (younger) sequence numbers at the consumer's
dispatch but can enter a window before older program instructions, and
the select logic must keep treating insertion order as age — entries
carry an ``iq_rank`` stamped at insertion for exactly this purpose.
Ready entries are held as ``(iq_rank, entry)`` pairs so the binary
insertion compares plain integers.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterator, List, Tuple

from ..errors import SimulationError
from ..isa import DynInst


class IssueQueue:
    """A bounded, age-ordered window of waiting instructions."""

    def __init__(self, capacity: int, name: str = "iq") -> None:
        if capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self.capacity = capacity
        self.name = name
        #: seq -> entry; dict preserves insertion (age) order.
        self._entries: Dict[int, DynInst] = {}
        #: Ready entries as (iq_rank, entry), kept sorted by rank.
        self._ready: List[Tuple[int, DynInst]] = []
        self._next_rank = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self._entries.values())

    @property
    def free_slots(self) -> int:
        """Entries still available."""
        return self.capacity - len(self._entries)

    def can_accept(self, n: int = 1) -> bool:
        """True when *n* more instructions fit."""
        return self.free_slots >= n

    def insert(self, dyn: DynInst) -> bool:
        """Add *dyn* at the tail (youngest); ``False`` when full.

        This is the single guarded path: callers that pre-reserved via
        :meth:`can_accept` treat ``False`` as an invariant violation, and
        callers that did not simply observe the refusal.
        """
        if len(self._entries) >= self.capacity:
            return False
        rank = self._next_rank
        self._next_rank = rank + 1
        dyn.iq_rank = rank
        self._entries[dyn.seq] = dyn
        if not dyn.pending_ops:
            self._ready.append((rank, dyn))  # newest rank: sorted append
        return True

    def remove(self, dyn: DynInst) -> None:
        """Remove an instruction (issued, or evicted by a test)."""
        if self._entries.pop(dyn.seq, None) is None:
            raise SimulationError(
                f"{self.name}: removing instruction not in queue"
            )
        if self._ready:
            try:
                self._ready.remove((dyn.iq_rank, dyn))
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Ready-list view (event-driven issue)
    # ------------------------------------------------------------------
    def mark_ready(self, dyn: DynInst) -> None:
        """Wakeup callback: *dyn*'s last pending operand completed."""
        if dyn.seq in self._entries:
            insort(self._ready, (dyn.iq_rank, dyn))

    def ready_view(self) -> List[Tuple[int, DynInst]]:
        """The live ``(rank, entry)`` ready list, oldest first.

        The issue stage iterates it by index and removes issued entries
        via :meth:`issue_ready`; other callers must treat it as
        read-only.
        """
        return self._ready

    def issue_ready(self, index: int) -> None:
        """Remove ready candidate *index* (it issued) from the window."""
        _, dyn = self._ready.pop(index)
        del self._entries[dyn.seq]

    @property
    def ready_count(self) -> int:
        """Entries whose operands are all complete."""
        return len(self._ready)

    def ready_oldest_first(self) -> List[DynInst]:
        """Ready entries in age (insertion) order — the issue candidates."""
        return [dyn for _, dyn in self._ready]

    # ------------------------------------------------------------------
    def entries_oldest_first(self) -> List[DynInst]:
        """Snapshot of entries in age order (oldest first)."""
        return list(self._entries.values())
