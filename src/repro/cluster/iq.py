"""Out-of-order issue queue (one per cluster).

Entries are kept in dispatch order; issue selection walks oldest-first,
which both matches age-based select logic and gives deterministic results.
Entries vacate the queue when they issue.
"""

from __future__ import annotations

from typing import Iterator, List

from ..errors import SimulationError
from ..isa import DynInst


class IssueQueue:
    """A bounded, age-ordered window of waiting instructions."""

    def __init__(self, capacity: int, name: str = "iq") -> None:
        if capacity <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: List[DynInst] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self._entries)

    @property
    def free_slots(self) -> int:
        """Entries still available."""
        return self.capacity - len(self._entries)

    def can_accept(self, n: int = 1) -> bool:
        """True when *n* more instructions fit."""
        return self.free_slots >= n

    def insert(self, dyn: DynInst) -> None:
        """Add *dyn* at the tail (youngest)."""
        if not self.free_slots:
            raise SimulationError(f"{self.name}: insert into a full queue")
        self._entries.append(dyn)

    def remove(self, dyn: DynInst) -> None:
        """Remove an issued instruction."""
        try:
            self._entries.remove(dyn)
        except ValueError:
            raise SimulationError(
                f"{self.name}: removing instruction not in queue"
            ) from None

    def entries_oldest_first(self) -> List[DynInst]:
        """Snapshot of entries in age order (oldest first)."""
        return list(self._entries)
