"""FIFO-collection issue queue (Palacharla, Jouppi & Smith [15]).

Section 3.9 of the paper compares its steering schemes against the
complexity-effective design where each cluster's window is a collection of
FIFOs (8 FIFOs, each 8 deep, per cluster) and only FIFO *heads* are
candidates for issue.  The steering invariant is that a FIFO holds a chain
of dependent instructions: an instruction is appended to a FIFO whose tail
produces one of its operands; otherwise it must start an empty FIFO.

The placement heuristic implemented here follows the original paper:

1. if some source operand's producer sits at the *tail* of a non-full
   FIFO, append there (the dependence chain continues);
2. otherwise pick an empty FIFO;
3. otherwise the instruction cannot be placed this cycle (dispatch
   stalls) — reported by :meth:`can_accept`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import SimulationError
from ..isa import DynInst


class FifoIssueQueue:
    """A cluster window organised as FIFOs of dependent instructions."""

    def __init__(self, n_fifos: int = 8, depth: int = 8, name: str = "fifo-iq") -> None:
        if n_fifos <= 0 or depth <= 0:
            raise SimulationError(f"{name}: FIFO geometry must be positive")
        self.n_fifos = n_fifos
        self.depth = depth
        self.name = name
        self.capacity = n_fifos * depth
        self._fifos: List[List[DynInst]] = [[] for _ in range(n_fifos)]

    # ------------------------------------------------------------------
    # Capacity / placement
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(f) for f in self._fifos)

    def __iter__(self) -> Iterator[DynInst]:
        for fifo in self._fifos:
            yield from fifo

    @property
    def free_slots(self) -> int:
        """Total unoccupied FIFO slots (not all are usable — see
        :meth:`placement_for`)."""
        return self.capacity - len(self)

    def placement_for(self, dyn: DynInst) -> Optional[int]:
        """FIFO index the heuristic would place *dyn* in, or ``None``."""
        for index, fifo in enumerate(self._fifos):
            if fifo and len(fifo) < self.depth:
                tail = fifo[-1]
                if any(p is tail for p in dyn.providers):
                    return index
        for index, fifo in enumerate(self._fifos):
            if not fifo:
                return index
        return None

    def can_accept(self, dyn: DynInst) -> bool:
        """True when the heuristic can place *dyn* right now."""
        return self.placement_for(dyn) is not None

    def plan_insertions(self, dyns: List[DynInst]) -> Optional[List[int]]:
        """Dry-run placement of several instructions in order.

        Returns the FIFO index per instruction, or ``None`` when some
        instruction cannot be placed (the caller then stalls dispatch).
        Needed because dispatch may insert an instruction *and* its copy
        into queues in the same cycle and must know up front that both
        placements succeed.
        """
        lengths = [len(f) for f in self._fifos]
        tails = [f[-1] if f else None for f in self._fifos]
        placements: List[int] = []
        for dyn in dyns:
            chosen = None
            for index in range(self.n_fifos):
                if lengths[index] and lengths[index] < self.depth:
                    tail = tails[index]
                    if tail is not None and any(
                        p is tail for p in dyn.providers
                    ):
                        chosen = index
                        break
            if chosen is None:
                for index in range(self.n_fifos):
                    if lengths[index] == 0:
                        chosen = index
                        break
            if chosen is None:
                return None
            placements.append(chosen)
            lengths[chosen] += 1
            tails[chosen] = dyn
        return placements

    def insert_at(self, dyn: DynInst, index: int) -> None:
        """Insert into a specific FIFO (from :meth:`plan_insertions`)."""
        if len(self._fifos[index]) >= self.depth:
            raise SimulationError(f"{self.name}: FIFO {index} overflow")
        self._fifos[index].append(dyn)

    def insert(self, dyn: DynInst) -> None:
        """Place *dyn* according to the heuristic (raises when impossible)."""
        index = self.placement_for(dyn)
        if index is None:
            raise SimulationError(f"{self.name}: no FIFO can accept {dyn!r}")
        self._fifos[index].append(dyn)

    def remove(self, dyn: DynInst) -> None:
        """Remove an issued instruction; it must be a FIFO head."""
        for fifo in self._fifos:
            if fifo and fifo[0] is dyn:
                fifo.pop(0)
                return
        raise SimulationError(
            f"{self.name}: removing instruction that is not a FIFO head"
        )

    # ------------------------------------------------------------------
    # Issue-side view
    # ------------------------------------------------------------------
    def entries_oldest_first(self) -> List[DynInst]:
        """Issue candidates: the FIFO heads, oldest first."""
        heads = [fifo[0] for fifo in self._fifos if fifo]
        heads.sort(key=lambda dyn: dyn.seq)
        return heads

    def tails_producing(self, provider: DynInst) -> bool:
        """True when *provider* is currently some FIFO's tail (used by the
        cross-cluster steering heuristic to prefer this cluster)."""
        return any(fifo and fifo[-1] is provider for fifo in self._fifos)

    def occupancy(self) -> int:
        """Total instructions queued (load-balance signal)."""
        return len(self)
