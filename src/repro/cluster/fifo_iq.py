"""FIFO-collection issue queue (Palacharla, Jouppi & Smith [15]).

Section 3.9 of the paper compares its steering schemes against the
complexity-effective design where each cluster's window is a collection of
FIFOs (8 FIFOs, each 8 deep, per cluster) and only FIFO *heads* are
candidates for issue.  The steering invariant is that a FIFO holds a chain
of dependent instructions: an instruction is appended to a FIFO whose tail
produces one of its operands; otherwise it must start an empty FIFO.

The placement heuristic implemented here follows the original paper:

1. if some source operand's producer sits at the *tail* of a non-full
   FIFO, append there (the dependence chain continues);
2. otherwise pick an empty FIFO;
3. otherwise the instruction cannot be placed this cycle (dispatch
   stalls) — reported by :meth:`can_accept`.

Like :class:`~repro.cluster.iq.IssueQueue`, the collection keeps an
explicit ready list for the event-driven issue stage — here restricted
to FIFO *heads* with no pending operands, since only heads are select
candidates.  Candidate order among heads is sequence order, matching the
age-ordered select, and the list is maintained incrementally (binary
insertion) rather than rebuilt per cycle.  A head exposed by an issuing
predecessor is *deferred* until the next cycle's view: the select logic
snapshots its candidates at the start of the cluster's turn, so a head
surfacing mid-selection must not compete until the following cycle.
"""

from __future__ import annotations

from bisect import insort
from operator import attrgetter
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import SimulationError
from ..isa import DynInst

_BY_SEQ = attrgetter("seq")


class FifoIssueQueue:
    """A cluster window organised as FIFOs of dependent instructions."""

    def __init__(self, n_fifos: int = 8, depth: int = 8, name: str = "fifo-iq") -> None:
        if n_fifos <= 0 or depth <= 0:
            raise SimulationError(f"{name}: FIFO geometry must be positive")
        self.n_fifos = n_fifos
        self.depth = depth
        self.name = name
        self.capacity = n_fifos * depth
        self._fifos: List[List[DynInst]] = [[] for _ in range(n_fifos)]
        #: seq -> index of the FIFO holding the entry (O(1) remove).
        self._where: Dict[int, int] = {}
        #: Ready heads as (seq, head), kept sorted by seq.
        self._ready: List[Tuple[int, DynInst]] = []
        #: Heads exposed by an issue this cycle; enrolled at next view.
        self._deferred: List[DynInst] = []
        self._size = 0

    # ------------------------------------------------------------------
    # Capacity / placement
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[DynInst]:
        for fifo in self._fifos:
            yield from fifo

    @property
    def free_slots(self) -> int:
        """Total unoccupied FIFO slots (not all are usable — see
        :meth:`placement_for`)."""
        return self.capacity - self._size

    def placement_for(self, dyn: DynInst) -> Optional[int]:
        """FIFO index the heuristic would place *dyn* in, or ``None``."""
        for index, fifo in enumerate(self._fifos):
            if fifo and len(fifo) < self.depth:
                tail = fifo[-1]
                if any(p is tail for p in dyn.providers):
                    return index
        for index, fifo in enumerate(self._fifos):
            if not fifo:
                return index
        return None

    def can_accept(self, dyn: DynInst) -> bool:
        """True when the heuristic can place *dyn* right now."""
        return self.placement_for(dyn) is not None

    def plan_insertions(self, dyns: List[DynInst]) -> Optional[List[int]]:
        """Dry-run placement of several instructions in order.

        Returns the FIFO index per instruction, or ``None`` when some
        instruction cannot be placed (the caller then stalls dispatch).
        Needed because dispatch may insert an instruction *and* its copy
        into queues in the same cycle and must know up front that both
        placements succeed.
        """
        lengths = [len(f) for f in self._fifos]
        tails = [f[-1] if f else None for f in self._fifos]
        placements: List[int] = []
        for dyn in dyns:
            chosen = None
            for index in range(self.n_fifos):
                if lengths[index] and lengths[index] < self.depth:
                    tail = tails[index]
                    if tail is not None and any(
                        p is tail for p in dyn.providers
                    ):
                        chosen = index
                        break
            if chosen is None:
                for index in range(self.n_fifos):
                    if lengths[index] == 0:
                        chosen = index
                        break
            if chosen is None:
                return None
            placements.append(chosen)
            lengths[chosen] += 1
            tails[chosen] = dyn
        return placements

    def _place(self, dyn: DynInst, index: int) -> None:
        fifo = self._fifos[index]
        fifo.append(dyn)
        self._where[dyn.seq] = index
        self._size += 1
        if len(fifo) == 1 and not dyn.pending_ops:
            insort(self._ready, (dyn.seq, dyn))

    def insert_at(self, dyn: DynInst, index: int) -> None:
        """Insert into a specific FIFO (from :meth:`plan_insertions`)."""
        if len(self._fifos[index]) >= self.depth:
            raise SimulationError(f"{self.name}: FIFO {index} overflow")
        self._place(dyn, index)

    def insert(self, dyn: DynInst) -> bool:
        """Place *dyn* by the heuristic; ``False`` when no FIFO can take it."""
        index = self.placement_for(dyn)
        if index is None:
            return False
        self._place(dyn, index)
        return True

    def remove(self, dyn: DynInst) -> None:
        """Remove an issued instruction; it must be a FIFO head."""
        index = self._where.get(dyn.seq)
        if index is None or self._fifos[index][0] is not dyn:
            raise SimulationError(
                f"{self.name}: removing instruction that is not a FIFO head"
            )
        self._pop_head(index, dyn)
        if self._ready:
            try:
                self._ready.remove((dyn.seq, dyn))
            except ValueError:
                pass
        if self._deferred:
            try:
                self._deferred.remove(dyn)
            except ValueError:
                pass

    def _pop_head(self, index: int, dyn: DynInst) -> None:
        """Drop the head of FIFO *index*, deferring the successor head."""
        fifo = self._fifos[index]
        fifo.pop(0)
        del self._where[dyn.seq]
        self._size -= 1
        if fifo:
            head = fifo[0]
            if not head.pending_ops:
                self._deferred.append(head)

    # ------------------------------------------------------------------
    # Ready-list view (event-driven issue)
    # ------------------------------------------------------------------
    def mark_ready(self, dyn: DynInst) -> None:
        """Wakeup callback: ready only if *dyn* currently heads its FIFO."""
        index = self._where.get(dyn.seq)
        if index is not None and self._fifos[index][0] is dyn:
            insort(self._ready, (dyn.seq, dyn))

    def ready_view(self) -> List[Tuple[int, DynInst]]:
        """The live ``(seq, head)`` candidate list, oldest first.

        Heads deferred by earlier issues are enrolled here — i.e. at the
        start of the cluster's next selection turn.  The issue stage
        iterates the view by index and removes issued entries via
        :meth:`issue_ready`; other callers must treat it as read-only.
        """
        deferred = self._deferred
        if deferred:
            ready = self._ready
            for head in deferred:
                insort(ready, (head.seq, head))
            deferred.clear()
        return self._ready

    def issue_ready(self, index: int) -> None:
        """Remove ready candidate *index* (it issued) from its FIFO."""
        _, dyn = self._ready.pop(index)
        self._pop_head(self._where[dyn.seq], dyn)

    @property
    def ready_count(self) -> int:
        """FIFO heads whose operands are all complete (deferred included)."""
        return len(self._ready) + len(self._deferred)

    def ready_oldest_first(self) -> List[DynInst]:
        """Ready FIFO heads, oldest first — the issue candidates."""
        return [dyn for _, dyn in self.ready_view()]

    # ------------------------------------------------------------------
    # Issue-side view
    # ------------------------------------------------------------------
    def entries_oldest_first(self) -> List[DynInst]:
        """Issue candidates: the FIFO heads, oldest first."""
        heads = [fifo[0] for fifo in self._fifos if fifo]
        heads.sort(key=_BY_SEQ)
        return heads

    def tails_producing(self, provider: DynInst) -> bool:
        """True when *provider* is currently some FIFO's tail (used by the
        cross-cluster steering heuristic to prefer this cluster)."""
        return any(fifo and fifo[-1] is provider for fifo in self._fifos)

    def occupancy(self) -> int:
        """Total instructions queued (load-balance signal)."""
        return self._size
