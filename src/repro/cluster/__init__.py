"""Cluster execution resources: windows, functional units, bypasses."""

from .bypass import BypassNetwork
from .fifo_iq import FifoIssueQueue
from .functional_units import FUPool
from .iq import IssueQueue

__all__ = ["BypassNetwork", "FifoIssueQueue", "FUPool", "IssueQueue"]
