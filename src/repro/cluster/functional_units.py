"""Functional-unit pools for one cluster.

Cluster 1 of the paper's machine has 3 simple integer ALUs plus one
complex integer unit (multiplier/divider); cluster 2 has 3 simple integer
ALUs, 3 FP ALUs and one FP multiplier/divider.  Simple units are fully
pipelined; dividers are not (a divide occupies its unit until done).

Branches and effective-address computations execute on the simple ALUs.
Copy instructions use no functional unit (they occupy an issue slot and an
inter-cluster bypass port instead).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..isa import DynInst, InstrClass, Opcode


class FUPool:
    """Per-cluster functional units with per-cycle availability."""

    def __init__(
        self,
        n_simple: int,
        has_complex_int: bool,
        n_fp_alu: int = 0,
        has_fp_complex: bool = False,
        name: str = "cluster",
    ) -> None:
        if n_simple < 0 or n_fp_alu < 0:
            raise ConfigError("functional unit counts must be non-negative")
        self.name = name
        self.n_simple = n_simple
        self.has_complex_int = has_complex_int
        self.n_fp_alu = n_fp_alu
        self.has_fp_complex = has_fp_complex
        self._cycle = -1
        self._simple_used = 0
        self._complex_used = 0
        self._fp_used = 0
        self._fp_complex_used = 0
        self._complex_busy_until = 0  # unpipelined divider occupancy
        self._fp_complex_busy_until = 0

    def _roll(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._simple_used = 0
            self._complex_used = 0
            self._fp_used = 0
            self._fp_complex_used = 0

    # ------------------------------------------------------------------
    def can_issue(self, dyn: DynInst, cycle: int) -> bool:
        """True when a unit for *dyn* is free at *cycle*."""
        self._roll(cycle)
        cls = dyn.cls
        if cls is InstrClass.SIMPLE_INT or cls is InstrClass.BRANCH:
            return self._simple_used < self.n_simple
        if cls is InstrClass.LOAD or cls is InstrClass.STORE:
            # The effective-address add runs on a simple ALU.
            return self._simple_used < self.n_simple
        if cls is InstrClass.COMPLEX_INT:
            return (
                self.has_complex_int
                and self._complex_used == 0
                and cycle >= self._complex_busy_until
            )
        if cls is InstrClass.FP:
            op = dyn.opcode
            if op in (Opcode.FMUL, Opcode.FDIV):
                return (
                    self.has_fp_complex
                    and self._fp_complex_used == 0
                    and cycle >= self._fp_complex_busy_until
                )
            return self._fp_used < self.n_fp_alu
        if cls is InstrClass.COPY:
            return True  # copies use the bypass network, not an FU
        if cls is InstrClass.JUMP or cls is InstrClass.NOP:
            return True
        raise ConfigError(f"unhandled instruction class {cls!r}")

    def issue(self, dyn: DynInst, cycle: int) -> None:
        """Account the unit usage of *dyn* issuing at *cycle*."""
        self._roll(cycle)
        cls = dyn.cls
        if cls in (
            InstrClass.SIMPLE_INT,
            InstrClass.BRANCH,
            InstrClass.LOAD,
            InstrClass.STORE,
        ):
            self._simple_used += 1
        elif cls is InstrClass.COMPLEX_INT:
            self._complex_used = 1
            if dyn.opcode is Opcode.DIV:
                self._complex_busy_until = cycle + dyn.inst.latency
        elif cls is InstrClass.FP:
            op = dyn.opcode
            if op in (Opcode.FMUL, Opcode.FDIV):
                self._fp_complex_used = 1
                if op is Opcode.FDIV:
                    self._fp_complex_busy_until = cycle + dyn.inst.latency
            else:
                self._fp_used += 1

    def supports(self, dyn: DynInst) -> bool:
        """Static capability check, independent of timing."""
        cls = dyn.cls
        if cls is InstrClass.COMPLEX_INT:
            return self.has_complex_int
        if cls is InstrClass.FP:
            op = dyn.opcode
            if op in (Opcode.FMUL, Opcode.FDIV):
                return self.has_fp_complex
            return self.n_fp_alu > 0
        if cls in (
            InstrClass.SIMPLE_INT,
            InstrClass.BRANCH,
            InstrClass.LOAD,
            InstrClass.STORE,
        ):
            return self.n_simple > 0
        return True  # copies, jumps, nops
