"""Inter-cluster bypass network.

Table 2: three communications per cycle in each direction, each taking one
cycle; communications also consume issue slots (modelled by the copy
instructions that use these ports).  The base architecture has no
bypasses; the 16-way upper bound has free communication (both expressed
through the configuration).
"""

from __future__ import annotations

from ..errors import SimulationError


class BypassNetwork:
    """Per-direction, per-cycle bypass port arbitration."""

    def __init__(self, ports_per_direction: int = 3, latency: int = 1) -> None:
        if ports_per_direction < 0 or latency < 0:
            raise SimulationError("bypass geometry must be non-negative")
        self.ports_per_direction = ports_per_direction
        self.latency = latency
        self._cycle = -1
        self._used = [0, 0]
        self.transfers = [0, 0]

    def _roll(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = [0, 0]

    def available(self, cycle: int, from_cluster: int) -> bool:
        """True when a port out of *from_cluster* is free at *cycle*."""
        self._roll(cycle)
        return self._used[from_cluster] < self.ports_per_direction

    def claim(self, cycle: int, from_cluster: int) -> bool:
        """Claim a port; returns ``False`` when the direction is saturated."""
        self._roll(cycle)
        if self._used[from_cluster] >= self.ports_per_direction:
            return False
        self._used[from_cluster] += 1
        self.transfers[from_cluster] += 1
        return True

    @property
    def total_transfers(self) -> int:
        """All transfers performed in both directions."""
        return self.transfers[0] + self.transfers[1]
