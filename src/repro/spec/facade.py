"""``repro.run``: the one entry point every execution path routes through.

:func:`run` takes a declarative spec and executes it — a
:class:`RunSpec` becomes one :class:`~repro.pipeline.SimResult`, a
:class:`SuiteSpec` expands through the campaign engine (with the same
``workers`` / ``store`` / ``resume`` controls as
:func:`~repro.analysis.campaign.run_campaign`).  Plain dicts (e.g. read
from JSON) are accepted and classified by shape.

:func:`execute_resolved` underneath is the single simulation core:
``simulate()``, campaign workers, sweeps, the figure harness and the CLI
all end up here, so behaviour (FIFO auto-switching, workload/scheme
resolution) is defined exactly once.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Union

from ..errors import ConfigError
from .specs import MachineSpec, RunSpec, SuiteSpec

#: Per-thread timing of the most recent :func:`execute_resolved` call —
#: how long workload/trace resolution (decode) took vs the simulation
#: proper.  Campaign stores read this to attribute per-point cost.
_last_timing = threading.local()


def last_timing() -> Optional[dict]:
    """``{"resolve_seconds", "simulate_seconds"}`` of this thread's most
    recent :func:`execute_resolved` call, or ``None``."""
    return getattr(_last_timing, "value", None)


def execute_resolved(
    bench,
    steering,
    config,
    n_instructions: int,
    warmup: int,
    seed: int,
):
    """Run one simulation from (possibly already-resolved) ingredients.

    *bench* is a workload name or instance, *steering* a scheme name or
    instance, *config* a :class:`ProcessorConfig` or ``None`` (the
    clustered machine).  The FIFO steering scheme automatically switches
    the window organisation when the caller did not.
    """
    # Imported lazily: this module sits below the pipeline package in
    # the import graph, and the heavy model modules are only needed at
    # execution time.
    from ..core.steering import make_steering
    from ..pipeline.config import ProcessorConfig
    from ..pipeline.processor import Processor
    from ..workloads import Workload, workload

    t0 = time.perf_counter()
    wl = bench if isinstance(bench, Workload) else workload(bench, seed=seed)
    scheme = make_steering(steering) if isinstance(steering, str) else steering
    cfg = config if config is not None else ProcessorConfig.default()
    if getattr(scheme, "requires_fifo_issue", False) and not cfg.fifo_issue:
        cfg = cfg.with_fifo_issue()
    t1 = time.perf_counter()
    result = Processor(wl, cfg, scheme).run(n_instructions, warmup=warmup)
    t2 = time.perf_counter()
    _last_timing.value = {
        "resolve_seconds": round(t1 - t0, 6),
        "simulate_seconds": round(t2 - t1, 6),
    }
    return result


def execute(spec: RunSpec):
    """Resolve and execute one :class:`RunSpec`."""
    return execute_resolved(
        spec.bench,
        spec.scheme,
        spec.machine.resolve(),
        spec.n_instructions,
        spec.warmup,
        spec.seed,
    )


def run(
    spec: Union[RunSpec, SuiteSpec, dict],
    workers: int = 1,
    store: Optional[str] = None,
    resume: bool = False,
    backend=None,
):
    """Execute a declarative spec.

    Parameters
    ----------
    spec:
        A :class:`RunSpec` (returns the :class:`SimResult`), a
        :class:`SuiteSpec` (returns the campaign's
        :class:`~repro.analysis.campaign.IncrementalRun`), or a plain
        dict of either shape — dicts with a ``benches`` key are suites.
    workers / store / resume / backend:
        Campaign execution controls (``backend`` is a
        :mod:`repro.dist` backend name or instance); only meaningful
        for suites.
    """
    if isinstance(spec, dict):
        spec = (
            SuiteSpec.from_dict(spec)
            if "benches" in spec
            else RunSpec.from_dict(spec)
        )
    if isinstance(spec, RunSpec):
        if workers != 1 or store is not None or resume or backend is not None:
            raise ConfigError(
                "workers/store/resume/backend apply to suite specs; wrap "
                "the run in a SuiteSpec to use campaign features"
            )
        return execute(spec.validate())
    if isinstance(spec, SuiteSpec):
        from ..analysis.campaign import run_campaign

        return run_campaign(
            spec.validate().points(),
            workers=workers,
            store=store,
            resume=resume,
            backend=backend,
        )
    raise ConfigError(
        f"repro.run expects a RunSpec, SuiteSpec or dict, "
        f"got {type(spec).__name__}"
    )
