"""Serializable experiment specs: MachineSpec, RunSpec, SuiteSpec.

These are the declarative layer in front of the simulator: plain frozen
dataclasses that name *what* to run — a machine from the registry plus
dotted-path overrides, a benchmark, a steering scheme, window sizes —
and round-trip losslessly through plain JSON dicts.  Everything that
executes simulations (:func:`repro.run`, the campaign engine, scenario
suites, the CLI) programs against these objects, and a spec written to a
data file today expands to the identical grid when loaded tomorrow or on
another host.

>>> from repro.spec import RunSpec
>>> spec = RunSpec(bench="gcc", scheme="modulo",
...                machine="bypass-latency-2")
>>> RunSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

import json

from ..errors import ConfigError, SpecError
from ..pipeline.config import ProcessorConfig
from .machines import machine_config
from .overrides import (
    Overrides,
    normalize_overrides,
    overrides_from_jsonable,
    validate_overrides,
)

#: On-disk format tag / major version for suite data files.
SUITE_FORMAT = "repro-suite"
SUITE_VERSION = 1


def _reject_unknown_keys(kind: str, data: Dict[str, object], known) -> None:
    """Typos in spec data must fail loudly, not silently change the
    experiment — suite files are the source of truth for whole grids."""
    unknown = set(data) - set(known)
    if unknown:
        raise SpecError(
            f"{kind} has unknown keys: {', '.join(sorted(unknown))}; "
            f"known keys: {', '.join(sorted(known))}"
        )


@dataclass(frozen=True)
class MachineSpec:
    """A machine by registry name plus dotted-path overrides.

    ``overrides`` accepts a dict, an iterable of pairs, or the canonical
    tuple form; it is normalised on construction so specs stay hashable.
    """

    name: str = "clustered"
    overrides: Overrides = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "overrides", normalize_overrides(self.overrides)
        )

    def resolve(self) -> ProcessorConfig:
        """Materialise (and thereby eagerly validate) the description."""
        return validate_overrides(self.overrides, machine_config(self.name))

    @property
    def label(self) -> str:
        """Human-readable name for logs and result tables."""
        if not self.overrides:
            return self.name
        changes = ",".join(f"{p}={v}" for p, v in self.overrides)
        return f"{self.name}[{changes}]"

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (overrides as an ordered mapping)."""
        out: Dict[str, object] = {"name": self.name}
        if self.overrides:
            out["overrides"] = dict(self.overrides)
        return out

    @classmethod
    def from_dict(cls, data) -> "MachineSpec":
        """Inverse of :meth:`to_dict`; also accepts a bare name string."""
        if isinstance(data, str):
            return cls(name=data)
        if not isinstance(data, dict):
            raise SpecError(
                f"machine spec must be a name or a mapping, got {data!r}"
            )
        _reject_unknown_keys("machine spec", data, {"name", "overrides"})
        return cls(
            name=str(data.get("name", "clustered")),
            overrides=overrides_from_jsonable(data.get("overrides", ())),
        )


def _as_machine(value) -> MachineSpec:
    if isinstance(value, MachineSpec):
        return value
    if isinstance(value, (str, dict)):
        return MachineSpec.from_dict(value)
    raise ConfigError(
        f"machine must be a MachineSpec, name or mapping, got {value!r}"
    )


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified simulation, serializable to a plain dict."""

    bench: str
    scheme: str = "general-balance"
    machine: MachineSpec = field(default_factory=MachineSpec)
    seed: int = 0
    n_instructions: int = 20000
    warmup: int = 5000

    def __post_init__(self) -> None:
        object.__setattr__(self, "machine", _as_machine(self.machine))

    def validate(self) -> "RunSpec":
        """Eagerly resolve the scheme and machine; returns self."""
        from ..core.steering import make_steering

        make_steering(self.scheme)
        self.machine.resolve()
        return self

    # ------------------------------------------------------------------
    def to_point(self):
        """The :class:`~repro.analysis.campaign.CampaignPoint` twin."""
        from ..analysis.campaign import CampaignPoint

        return CampaignPoint(
            bench=self.bench,
            scheme=self.scheme,
            machine=self.machine.name,
            overrides=self.machine.overrides,
            seed=self.seed,
            n_instructions=self.n_instructions,
            warmup=self.warmup,
        )

    @classmethod
    def from_point(cls, point) -> "RunSpec":
        """Build a spec from a campaign point (exact inverse of
        :meth:`to_point`)."""
        return cls(
            bench=point.bench,
            scheme=point.scheme,
            machine=MachineSpec(point.machine, point.overrides),
            seed=point.seed,
            n_instructions=point.n_instructions,
            warmup=point.warmup,
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form, stable across releases."""
        return {
            "bench": self.bench,
            "scheme": self.scheme,
            "machine": self.machine.to_dict(),
            "seed": self.seed,
            "n_instructions": self.n_instructions,
            "warmup": self.warmup,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        """Inverse of :meth:`to_dict` (tolerating omitted defaults)."""
        if "bench" not in data:
            raise SpecError(f"run spec {data!r} is missing 'bench'")
        _reject_unknown_keys(
            "run spec", data, {f.name for f in fields(cls)}
        )
        return cls(
            bench=str(data["bench"]),
            scheme=str(data.get("scheme", "general-balance")),
            machine=_as_machine(data.get("machine", "clustered")),
            seed=int(data.get("seed", 0)),
            n_instructions=int(data.get("n_instructions", 20000)),
            warmup=int(data.get("warmup", 5000)),
        )


@dataclass(frozen=True)
class SuiteSpec:
    """A declarative campaign grid with a name and a purpose.

    The cross product of ``benches x schemes x machines x overrides x
    seeds`` expands into campaign points; ``overrides`` is a tuple of
    override *sets*, one grid axis entry each (the default single empty
    set means "the machines as registered").  Suites round-trip through
    JSON data files via :meth:`save` / :meth:`load`, which is how the
    checked-in ``suites/*.json`` definitions work.
    """

    name: str
    description: str
    benches: Tuple[str, ...]
    schemes: Tuple[str, ...]
    machines: Tuple[str, ...] = ("clustered",)
    seeds: Tuple[int, ...] = (0,)
    overrides: Tuple[Overrides, ...] = ((),)
    n_instructions: int = 8000
    warmup: int = 2000

    def __post_init__(self) -> None:
        for attr in ("benches", "schemes", "machines"):
            object.__setattr__(
                self, attr, tuple(str(v) for v in getattr(self, attr))
            )
        object.__setattr__(
            self, "seeds", tuple(int(s) for s in self.seeds)
        )
        object.__setattr__(
            self,
            "overrides",
            tuple(normalize_overrides(ov) for ov in self.overrides) or ((),),
        )

    def validate(self) -> "SuiteSpec":
        """Eagerly resolve every (machine, override set) combination."""
        from ..core.steering import make_steering

        for scheme in self.schemes:
            make_steering(scheme)
        for machine in self.machines:
            base = machine_config(machine)
            for override_set in self.overrides:
                validate_overrides(override_set, base)
        return self

    def points(
        self,
        n_instructions: Optional[int] = None,
        warmup: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> List:
        """Expand the suite into campaign points.

        The window sizes and seeds can be overridden per run (smoke jobs
        shrink them; scenario studies widen them) without touching the
        suite definition.
        """
        from ..analysis.campaign import expand_grid

        return expand_grid(
            list(self.benches),
            list(self.schemes),
            machines=self.machines,
            overrides=self.overrides,
            seeds=tuple(seeds) if seeds is not None else self.seeds,
            n_instructions=(
                n_instructions
                if n_instructions is not None
                else self.n_instructions
            ),
            warmup=warmup if warmup is not None else self.warmup,
        )

    # ------------------------------------------------------------------
    # Data-file round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-data form written to suite data files."""
        return {
            "format": SUITE_FORMAT,
            "version": SUITE_VERSION,
            "name": self.name,
            "description": self.description,
            "benches": list(self.benches),
            "schemes": list(self.schemes),
            "machines": list(self.machines),
            "seeds": list(self.seeds),
            "overrides": [dict(ov) for ov in self.overrides],
            "n_instructions": self.n_instructions,
            "warmup": self.warmup,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SuiteSpec":
        """Inverse of :meth:`to_dict` (tolerating omitted defaults)."""
        if not isinstance(data, dict):
            raise SpecError(f"suite spec must be a mapping, got {data!r}")
        tag = data.get("format", SUITE_FORMAT)
        if tag != SUITE_FORMAT:
            raise SpecError(f"not a suite spec (format {tag!r})")
        version = int(data.get("version", SUITE_VERSION))
        if version > SUITE_VERSION:
            raise SpecError(
                f"suite spec version {version} is newer than the "
                f"supported version {SUITE_VERSION}"
            )
        missing = {"name", "benches", "schemes"} - set(data)
        if missing:
            raise SpecError(
                f"suite spec is missing keys: {', '.join(sorted(missing))}"
            )
        _reject_unknown_keys(
            "suite spec",
            data,
            {f.name for f in fields(cls)} | {"format", "version"},
        )
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            benches=tuple(data["benches"]),
            schemes=tuple(data["schemes"]),
            machines=tuple(data.get("machines", ("clustered",))),
            seeds=tuple(data.get("seeds", (0,))),
            overrides=tuple(
                overrides_from_jsonable(ov)
                for ov in data.get("overrides", ({},))
            ),
            n_instructions=int(data.get("n_instructions", 8000)),
            warmup=int(data.get("warmup", 2000)),
        )

    def save(self, path: str) -> None:
        """Write the suite as a JSON data file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "SuiteSpec":
        """Read (and validate) a suite data file written by :meth:`save`."""
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError as err:
            raise SpecError(f"cannot read suite file {path!r}: {err}") from None
        except ValueError as err:
            raise SpecError(
                f"suite file {path!r} is not valid JSON: {err}"
            ) from None
        return cls.from_dict(data).validate()
