"""Dotted-path machine overrides with eager schema validation.

An override names one scalar leaf of the :class:`ProcessorConfig`
dataclass tree by a dotted path and gives it a new value::

    bypass_latency=2            # top-level field
    clusters.0.iq_size=128      # one cluster only
    l1d.size_kb=32              # a cache level
    iq_size=128                 # legacy flat form: both clusters

Every path is validated against the dataclass schema *before* anything
is replaced: an unknown key raises :class:`~repro.errors.ConfigError`
naming the offending path and listing the valid fields, a bad cluster
index reports the range, and a type mismatch reports the expected type —
instead of failing deep inside :func:`dataclasses.replace`.

The legacy flat form used by the original campaign API (``iq_size``,
``issue_width``, ``n_simple_alu``, ``phys_regs`` applied to both
clusters symmetrically) keeps working; see the README's deprecation
policy.
"""

from __future__ import annotations

import json
import typing
from dataclasses import fields, is_dataclass, replace
from typing import Dict, Iterable, List, Tuple

from ..errors import ConfigError
from ..pipeline.config import ProcessorConfig

#: Canonical override form: ordered ``(path, value)`` pairs.  Tuples,
#: not dicts, so campaign points stay hashable and cheap to pickle.
Overrides = Tuple[Tuple[str, object], ...]

#: Legacy flat parameter names applied to every cluster symmetrically.
SYMMETRIC_CLUSTER_PARAMS = frozenset(
    {"iq_size", "issue_width", "n_simple_alu", "phys_regs"}
)

#: Scalar types an override value may take (bool before int: bools are
#: ints in Python, but ``bypass_ports=True`` is a config bug).
_SCALAR_TYPES = (bool, int, float, str)

_HINT_CACHE: Dict[type, Dict[str, object]] = {}


def _type_hints(cls: type) -> Dict[str, object]:
    """Resolved field type hints of a config dataclass (cached)."""
    hints = _HINT_CACHE.get(cls)
    if hints is None:
        hints = typing.get_type_hints(cls)
        _HINT_CACHE[cls] = hints
    return hints


def _check_leaf_type(path: str, leaf_type, value) -> None:
    """Reject a value whose type cannot inhabit the target field."""
    if leaf_type is bool:
        ok = isinstance(value, bool)
    elif leaf_type is int:
        ok = isinstance(value, int) and not isinstance(value, bool)
    elif leaf_type is float:
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif leaf_type is str:
        ok = isinstance(value, str)
    else:  # pragma: no cover — every leaf in the schema is scalar
        ok = False
    if not ok:
        name = getattr(leaf_type, "__name__", str(leaf_type))
        raise ConfigError(
            f"override {path!r}: expected {name}, "
            f"got {type(value).__name__} ({value!r})"
        )


def _set_path(obj, segments: Tuple[str, ...], value, path: str):
    """Apply one override path to *obj*, returning the rebuilt object."""
    seg, rest = segments[0], segments[1:]
    if isinstance(obj, tuple):
        # A tuple of nested configs (the clusters): index next.
        try:
            index = int(seg)
        except ValueError:
            raise ConfigError(
                f"override {path!r}: expected a cluster index "
                f"(0..{len(obj) - 1}), got {seg!r}"
            ) from None
        if not 0 <= index < len(obj):
            raise ConfigError(
                f"override {path!r}: index {index} is out of range "
                f"(0..{len(obj) - 1})"
            )
        if not rest:
            sub = ", ".join(f.name for f in fields(obj[index]))
            raise ConfigError(
                f"override {path!r} stops at a whole cluster; extend the "
                f"path to one of its fields: {sub}"
            )
        items = list(obj)
        items[index] = _set_path(items[index], rest, value, path)
        return tuple(items)
    valid = [f.name for f in fields(obj)]
    if seg not in valid:
        raise ConfigError(
            f"override {path!r}: {type(obj).__name__} has no field "
            f"{seg!r}; valid fields: {', '.join(valid)}"
        )
    current = getattr(obj, seg)
    nested = is_dataclass(current) or isinstance(current, tuple)
    if rest:
        if not nested:
            raise ConfigError(
                f"override {path!r}: {seg!r} is a scalar field and has no "
                f"sub-field {'.'.join(rest)!r}"
            )
        return replace(obj, **{seg: _set_path(current, rest, value, path)})
    if nested:
        if isinstance(current, tuple):
            hint = f"{path}.0.{fields(current[0])[0].name}"
        else:
            hint = f"{path}.{fields(current)[0].name}"
        raise ConfigError(
            f"override {path!r} stops at a nested config; extend the path "
            f"to one of its scalar fields (e.g. {hint!r})"
        )
    _check_leaf_type(path, _type_hints(type(obj)).get(seg), value)
    return replace(obj, **{seg: value})


def apply_override(
    config: ProcessorConfig, path: str, value
) -> ProcessorConfig:
    """Return *config* with the field at dotted *path* set to *value*.

    *path* may also be one of the legacy flat cluster parameters
    (:data:`SYMMETRIC_CLUSTER_PARAMS`), which apply to every cluster.
    """
    if not isinstance(path, str) or not path:
        raise ConfigError(f"override path must be a non-empty string, got {path!r}")
    if "." not in path and path in SYMMETRIC_CLUSTER_PARAMS:
        clusters = tuple(
            _set_path(cluster, (path,), value, f"clusters.{i}.{path}")
            for i, cluster in enumerate(config.clusters)
        )
        return replace(config, clusters=clusters)
    return _set_path(config, tuple(path.split(".")), value, path)


def apply_overrides(
    config: ProcessorConfig, overrides: Iterable[Tuple[str, object]]
) -> ProcessorConfig:
    """Apply ``(path, value)`` pairs in order; alias of eager validation.

    Domain errors (a window size driven non-positive, cluster 0 losing
    its complex-integer unit) surface from the dataclass
    ``__post_init__`` hooks as :class:`~repro.errors.ConfigError` too.
    """
    for path, value in overrides:
        config = apply_override(config, path, value)
    return config


def normalize_overrides(overrides) -> Overrides:
    """Canonical hashable tuple form of any accepted override spelling.

    Accepts a dict (``{"clusters.0.iq_size": 128}``), an iterable of
    ``(path, value)`` pairs, or an already-canonical tuple.  Values must
    be scalars — the schema has no container leaves, and scalar values
    keep campaign points hashable.

    Repeated paths collapse to the last occurrence (at its position).
    That is exactly what applying them in order would compute — each
    override is an independent write, so an earlier write to the same
    path is always dead — and it makes the canonical form duplicate-free,
    which keeps the mapping wire format used by suite data files
    lossless.
    """
    if overrides is None:
        return ()
    items = overrides.items() if isinstance(overrides, dict) else overrides
    out: List[Tuple[str, object]] = []
    for item in items:
        try:
            path, value = item
        except (TypeError, ValueError):
            raise ConfigError(
                f"override entry {item!r} is not a (path, value) pair"
            ) from None
        if not isinstance(path, str) or not path:
            raise ConfigError(
                f"override path must be a non-empty string, got {path!r}"
            )
        if not isinstance(value, _SCALAR_TYPES):
            raise ConfigError(
                f"override {path!r}: value must be a scalar "
                f"(int/float/bool/str), got {type(value).__name__}"
            )
        out = [entry for entry in out if entry[0] != path]
        out.append((path, value))
    return tuple(out)


def validate_overrides(
    overrides, machine_config: ProcessorConfig
) -> ProcessorConfig:
    """Eagerly validate *overrides* against one machine; returns the
    resolved config so callers can validate and materialise in one step."""
    return apply_overrides(machine_config, normalize_overrides(overrides))


# ----------------------------------------------------------------------
# (De)serialisation — the one place override wire formats are defined
# ----------------------------------------------------------------------
def overrides_to_jsonable(overrides: Overrides) -> List[List[object]]:
    """Plain-data form for JSON/CSV stores: a list of ``[path, value]``."""
    return [[path, value] for path, value in overrides]


def overrides_from_jsonable(data) -> Overrides:
    """Inverse of :func:`overrides_to_jsonable`.

    Also accepts the dict form used by suite data files, so every store
    and spec file decodes through this one function.
    """
    return normalize_overrides(data)


def parse_override(text: str) -> Tuple[str, object]:
    """Parse one ``PATH=VALUE`` command-line override.

    The value is decoded as JSON when possible (``128``, ``2.5``,
    ``true``, ``"str"``) and kept as a bare string otherwise;
    ``True``/``False`` are accepted as Python-spelled booleans.
    """
    path, sep, raw = text.partition("=")
    if not sep or not path:
        raise ConfigError(
            f"override {text!r} must have the form PATH=VALUE "
            f"(e.g. clusters.0.iq_size=128)"
        )
    raw = raw.strip()
    if raw in ("True", "False"):
        return path, raw == "True"
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw
    return path, value
