"""Declarative spec layer: registries, dotted overrides, serializable specs.

The experiment-facing contract of the repo.  Three pieces:

* :mod:`~repro.spec.machines` — a machine registry mirroring the
  steering-scheme registry: ``clustered`` / ``baseline`` /
  ``upper-bound`` plus parametric ablation families
  (``bypass-latency-<N>``, ``bypass-ports-<N>``, ``iq-<N>``), all
  resolvable by name anywhere a machine string is accepted;
* :mod:`~repro.spec.overrides` — dotted-path config overrides
  (``clusters.0.iq_size=128``, ``l1d.size_kb=32``) validated eagerly
  against the dataclass schema;
* :mod:`~repro.spec.specs` / :mod:`~repro.spec.facade` —
  :class:`MachineSpec` / :class:`RunSpec` / :class:`SuiteSpec` objects
  that round-trip through plain JSON, and the :func:`repro.run` facade
  executing them.

Quickstart::

    import repro

    spec = repro.RunSpec(bench="gcc", scheme="modulo",
                         machine={"name": "clustered",
                                  "overrides": {"clusters.0.iq_size": 128}})
    result = repro.run(spec)
"""

from .facade import execute, execute_resolved, run
from .machines import (
    available_machine_families,
    available_machines,
    machine_config,
    machine_description,
    register_machine,
    register_machine_family,
    unregister_machine,
)
from .overrides import (
    SYMMETRIC_CLUSTER_PARAMS,
    Overrides,
    apply_override,
    apply_overrides,
    normalize_overrides,
    overrides_from_jsonable,
    overrides_to_jsonable,
    parse_override,
    validate_overrides,
)
from .specs import (
    SUITE_FORMAT,
    SUITE_VERSION,
    MachineSpec,
    RunSpec,
    SuiteSpec,
)

__all__ = [
    "run",
    "execute",
    "execute_resolved",
    "available_machine_families",
    "available_machines",
    "machine_config",
    "machine_description",
    "register_machine",
    "register_machine_family",
    "unregister_machine",
    "SYMMETRIC_CLUSTER_PARAMS",
    "Overrides",
    "apply_override",
    "apply_overrides",
    "normalize_overrides",
    "overrides_from_jsonable",
    "overrides_to_jsonable",
    "parse_override",
    "validate_overrides",
    "SUITE_FORMAT",
    "SUITE_VERSION",
    "MachineSpec",
    "RunSpec",
    "SuiteSpec",
]
