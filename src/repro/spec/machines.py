"""Machine registry: every machine the evaluation uses, by name.

Mirrors :mod:`repro.core.steering.registry` for the *other* axis of the
paper's evaluation grid.  The three Table 2 machines (``clustered``,
``baseline``, ``upper-bound``) are pre-registered, plus parametric
families for the communication ablations of Figures 11–13: any name of
the form ``bypass-latency-<N>``, ``bypass-ports-<N>`` or ``iq-<N>``
resolves to the clustered machine with that parameter changed.  Every
API that accepts a machine string — campaign points, suites, the CLI,
:class:`~repro.analysis.ExperimentRunner` — resolves through this
registry, so a user-registered machine works everywhere at once:

>>> from repro.spec import machine_config, register_machine
>>> machine_config("bypass-latency-2").bypass_latency
2
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..pipeline.config import ProcessorConfig

#: Exact machine names: ``name -> (factory, description)``.
_MACHINES: Dict[str, Tuple[Callable[[], ProcessorConfig], str]] = {}

#: Parametric families: ``prefix -> (builder(n), description)``; the
#: name ``f"{prefix}-{n}"`` resolves to ``builder(n)``.
_FAMILIES: Dict[str, Tuple[Callable[[int], ProcessorConfig], str]] = {}


def register_machine(
    name: str,
    factory: Callable[[], ProcessorConfig],
    description: str = "",
) -> None:
    """Register *factory* under *name* (rejecting duplicates).

    Registration is per-process: like imported ``.rtrace`` workloads,
    a machine registered at runtime is visible to campaign worker
    processes only where the interpreter forks after registration (the
    Linux default) or the registering module is imported in every
    worker; otherwise run such campaigns with ``workers=1``.
    """
    if name in _MACHINES:
        raise ConfigError(f"machine {name!r} already registered")
    _MACHINES[name] = (factory, description)


def unregister_machine(name: str) -> None:
    """Drop a registered machine (no-op for unknown names)."""
    _MACHINES.pop(name, None)


def register_machine_family(
    prefix: str,
    builder: Callable[[int], ProcessorConfig],
    description: str = "",
) -> None:
    """Register a parametric family resolved as ``<prefix>-<int>``."""
    if prefix in _FAMILIES:
        raise ConfigError(f"machine family {prefix!r} already registered")
    _FAMILIES[prefix] = (builder, description)


def available_machines() -> List[str]:
    """All exactly-named machines, sorted."""
    return sorted(_MACHINES)


def available_machine_families() -> List[str]:
    """Parametric family prefixes (resolve as ``<prefix>-<N>``), sorted."""
    return sorted(_FAMILIES)


def machine_description(name: str) -> str:
    """One-line description of a machine name or family prefix."""
    if name in _MACHINES:
        return _MACHINES[name][1]
    if name in _FAMILIES:
        return _FAMILIES[name][1]
    parsed = _parse_family(name)
    if parsed is not None:
        prefix, n = parsed
        return f"{_FAMILIES[prefix][1]} (n={n})"
    raise ConfigError(_unknown_machine_message(name))


def _parse_family(name: str) -> Optional[Tuple[str, int]]:
    """``("bypass-latency", 2)`` for ``"bypass-latency-2"``, else None."""
    prefix, sep, suffix = name.rpartition("-")
    if not sep or prefix not in _FAMILIES:
        return None
    try:
        return prefix, int(suffix)
    except ValueError:
        return None


def _unknown_machine_message(name: str) -> str:
    known = ", ".join(available_machines())
    families = ", ".join(f"{p}-<N>" for p in available_machine_families())
    return (
        f"unknown machine {name!r}; registered: {known}; "
        f"parametric: {families}"
    )


def machine_config(name: str) -> ProcessorConfig:
    """Materialise the machine registered under *name*.

    Exact names win; otherwise ``<prefix>-<int>`` resolves through the
    parametric families.
    """
    entry = _MACHINES.get(name)
    if entry is not None:
        return entry[0]()
    parsed = _parse_family(name)
    if parsed is not None:
        prefix, n = parsed
        return _FAMILIES[prefix][0](n)
    raise ConfigError(_unknown_machine_message(name))


# ----------------------------------------------------------------------
# Built-in machines (Table 2) and ablation families (Figures 11-13)
# ----------------------------------------------------------------------
register_machine(
    "clustered",
    ProcessorConfig.default,
    "two 4-issue clusters, 3 bypasses/cycle at 1-cycle latency (Table 2)",
)
register_machine(
    "baseline",
    ProcessorConfig.baseline,
    "conventional reference: no int units in the FP cluster, no bypasses",
)
register_machine(
    "upper-bound",
    ProcessorConfig.upper_bound,
    "16-way machine with no communication penalty (Figure 14 bound)",
)
register_machine(
    "clustered-fifo",
    lambda: ProcessorConfig.default().with_fifo_issue(),
    "clustered machine with FIFO-organised issue windows (section 3.9)",
)


def _clustered_variant(name: str, **changes) -> ProcessorConfig:
    return replace(ProcessorConfig.default(), name=name, **changes)


register_machine_family(
    "bypass-latency",
    lambda n: _clustered_variant(f"bypass-latency-{n}", bypass_latency=n),
    "clustered machine with an N-cycle inter-cluster bypass",
)
register_machine_family(
    "bypass-ports",
    lambda n: _clustered_variant(f"bypass-ports-{n}", bypass_ports=n),
    "clustered machine with N bypasses per cycle each way",
)


def _iq_variant(n: int) -> ProcessorConfig:
    from .overrides import apply_override

    return replace(
        apply_override(ProcessorConfig.default(), "iq_size", n),
        name=f"iq-{n}",
    )


register_machine_family(
    "iq",
    _iq_variant,
    "clustered machine with N-entry instruction queues in both clusters",
)


def _deep_window_variant(n: int) -> ProcessorConfig:
    base = ProcessorConfig.default()
    return replace(
        base,
        name=f"deep-window-{n}",
        max_in_flight=2 * n,
        clusters=(
            replace(base.clusters[0], iq_size=n, phys_regs=2 * n + 76),
            replace(base.clusters[1], iq_size=n, phys_regs=2 * n + 76),
        ),
    )


register_machine_family(
    "deep-window",
    _deep_window_variant,
    "clustered machine scaled to an N-entry window per cluster with a "
    "2N-deep reorder buffer (the issue-bound regime of the wakeup "
    "scheduler benchmarks)",
)
