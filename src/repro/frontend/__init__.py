"""Front end: branch predictors and the trace-driven fetch unit."""

from .fetch import FetchUnit
from .predictors import (
    BimodalPredictor,
    CombinedPredictor,
    GsharePredictor,
    TwoBitCounterTable,
)

__all__ = [
    "FetchUnit",
    "BimodalPredictor",
    "CombinedPredictor",
    "GsharePredictor",
    "TwoBitCounterTable",
]
