"""Branch direction predictors (Table 2 configuration).

The paper's machine uses a *combined* (tournament) predictor: a gshare
component with 64K 2-bit counters and 16 bits of global history, a bimodal
component with 2K 2-bit counters, and a 1K-entry chooser of 2-bit counters
that picks between them per branch.

All predictors share the saturating 2-bit counter idiom; indices come from
word-aligned PCs (``pc >> 2``).
"""

from __future__ import annotations

from ..errors import ConfigError


def _check_pow2(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{what} must be a power of two, got {value}")


class TwoBitCounterTable:
    """A table of saturating 2-bit counters (0..3; >=2 predicts taken)."""

    def __init__(self, entries: int, initial: int = 2) -> None:
        _check_pow2(entries, "counter table size")
        if not 0 <= initial <= 3:
            raise ConfigError("2-bit counter initial value must be in 0..3")
        self.entries = entries
        self._mask = entries - 1
        self._table = [initial] * entries

    def predict(self, index: int) -> bool:
        """Taken prediction for *index*."""
        return self._table[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        """Saturating update toward the actual outcome."""
        i = index & self._mask
        value = self._table[i]
        if taken:
            if value < 3:
                self._table[i] = value + 1
        elif value > 0:
            self._table[i] = value - 1

    def counter(self, index: int) -> int:
        """Raw counter value (for tests)."""
        return self._table[index & self._mask]


class BimodalPredictor:
    """PC-indexed table of 2-bit counters."""

    def __init__(self, entries: int = 2048) -> None:
        self._counters = TwoBitCounterTable(entries)

    def predict(self, pc: int) -> bool:
        return self._counters.predict(pc >> 2)

    def update(self, pc: int, taken: bool) -> None:
        self._counters.update(pc >> 2, taken)


class GsharePredictor:
    """Global-history predictor: counters indexed by ``pc ^ history``."""

    def __init__(self, entries: int = 65536, history_bits: int = 16) -> None:
        if history_bits <= 0:
            raise ConfigError("gshare needs at least one history bit")
        self._counters = TwoBitCounterTable(entries)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict(self, pc: int) -> bool:
        return self._counters.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        """Update the counter, then shift the outcome into the history."""
        self._counters.update(self._index(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    @property
    def history(self) -> int:
        """Current global history register (for tests)."""
        return self._history


class CombinedPredictor:
    """Tournament predictor per Table 2.

    The chooser counter moves toward the component that was right when the
    two disagree (the standard McFarling update rule).
    """

    def __init__(
        self,
        chooser_entries: int = 1024,
        bimodal_entries: int = 2048,
        gshare_entries: int = 65536,
        history_bits: int = 16,
    ) -> None:
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.gshare = GsharePredictor(gshare_entries, history_bits)
        self._chooser = TwoBitCounterTable(chooser_entries)
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        """Direction prediction for the branch at *pc*."""
        use_gshare = self._chooser.predict(pc >> 2)
        if use_gshare:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        """Train all components with the actual outcome."""
        g_pred = self.gshare.predict(pc)
        b_pred = self.bimodal.predict(pc)
        if g_pred != b_pred:
            self._chooser.update(pc >> 2, g_pred == taken)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)  # also advances global history

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train, and account one branch; returns the prediction.

        This is the trace-driven fast path used by the fetch unit: the
        actual outcome is known from the trace oracle, so prediction and
        training happen together.
        """
        prediction = self.predict(pc)
        self.predictions += 1
        if prediction != taken:
            self.mispredictions += 1
        self.update(pc, taken)
        return prediction

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions so far (1.0 when unused)."""
        if not self.predictions:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
