"""Fetch unit: trace-driven front end with I-cache and branch prediction.

Per cycle the unit delivers up to ``fetch_width`` instructions from the
committed path, subject to:

* **I-cache misses** — fetch stalls until the line arrives;
* **taken branches** — a (correctly) predicted-taken branch ends the fetch
  group for the cycle;
* **branch mispredictions** — trace-driven simulation does not execute the
  wrong path; instead, fetch stops at a mispredicted branch and resumes a
  configurable number of cycles after the branch resolves, which models the
  squash-and-refill penalty;
* **back-pressure** — the caller bounds the number of instructions it can
  accept (decode buffer space).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..isa import DynInst
from ..memory import MemoryHierarchy
from ..workloads.columns import CONDITIONAL, CONTROL, TAKEN
from ..workloads.trace import TraceRecord
from .predictors import CombinedPredictor


class FetchUnit:
    """Produces DynInst groups from the trace oracle."""

    def __init__(
        self,
        trace: Iterator[TraceRecord],
        hierarchy: MemoryHierarchy,
        predictor: CombinedPredictor,
        fetch_width: int = 8,
        redirect_penalty: int = 1,
        columns=None,
    ) -> None:
        self.trace = trace
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.fetch_width = fetch_width
        self.redirect_penalty = redirect_penalty
        #: Columnar fast path: when a TraceColumns set is supplied the
        #: unit indexes its parallel arrays directly (no record iterator,
        #: no per-record peek/pop calls) with identical semantics.
        self._columns = columns
        if columns is not None:
            # Skip the per-cycle mode dispatch in :meth:`fetch`.
            self.fetch = self._fetch_columnar  # type: ignore[method-assign]
        self._col_pos = 0
        self._seq = 0
        self._pending: Optional[TraceRecord] = None
        self._icache_stall_until = -1
        self._stalling_branch: Optional[DynInst] = None
        self._last_line = -1
        self.fetched = 0
        self.icache_stall_cycles = 0
        self.mispredict_stall_cycles = 0

    # ------------------------------------------------------------------
    def _peek(self) -> TraceRecord:
        if self._pending is None:
            self._pending = next(self.trace)
        return self._pending

    def _pop(self) -> TraceRecord:
        record = self._peek()
        self._pending = None
        return record

    def next_seq(self) -> int:
        """Allocate a global sequence number (also used for copies)."""
        seq = self._seq
        self._seq += 1
        return seq

    # ------------------------------------------------------------------
    def fetch(self, cycle: int, budget: int) -> List[DynInst]:
        """Fetch up to ``min(budget, fetch_width)`` instructions.

        Returns the fetched group (possibly empty while stalled).
        """
        if self._columns is not None:
            return self._fetch_columnar(cycle, budget)
        if self._stalling_branch is not None:
            branch = self._stalling_branch
            if branch.complete_cycle < 0 or cycle <= (
                branch.complete_cycle + self.redirect_penalty
            ):
                self.mispredict_stall_cycles += 1
                return []
            self._stalling_branch = None
            self._last_line = -1  # redirect refetches the target line
        if cycle < self._icache_stall_until:
            self.icache_stall_cycles += 1
            return []

        group: List[DynInst] = []
        limit = min(budget, self.fetch_width)
        line_bytes = self.hierarchy.l1i.line_bytes
        while len(group) < limit:
            record = self._peek()
            line = record.inst.pc // line_bytes
            if line != self._last_line:
                latency = self.hierarchy.ifetch_latency(record.inst.pc)
                self._last_line = line
                if latency > self.hierarchy.timing.l1_hit:
                    # Line is being filled; deliver what we have and stall.
                    self._icache_stall_until = cycle + latency
                    break
            record = self._pop()
            dyn = DynInst(
                self.next_seq(),
                record.inst,
                taken=record.taken,
                mem_addr=record.mem_addr,
            )
            dyn.fetch_cycle = cycle
            group.append(dyn)
            self.fetched += 1
            if record.inst.is_control:
                if record.inst.is_conditional:
                    prediction = self.predictor.predict_and_update(
                        record.inst.pc, record.taken
                    )
                    dyn.pred_taken = prediction
                    if prediction != record.taken:
                        dyn.mispredicted = True
                        self._stalling_branch = dyn
                        break
                else:
                    # Unconditional jumps: BTB assumed to hit.
                    dyn.pred_taken = True
                if record.taken:
                    break  # a taken branch ends the fetch group
        return group

    def _fetch_columnar(self, cycle: int, budget: int) -> List[DynInst]:
        """:meth:`fetch` over a ``TraceColumns`` set (bit-exact fast path).

        Every decision point mirrors the record loop above — including
        the timing of the out-of-records :class:`ScenarioError` (raised
        when a record is *peeked*, before the line check) — so the two
        paths produce identical cycle-for-cycle behaviour.  The win is
        structural: array indexing and packed-flag tests replace the
        per-record iterator calls and attribute chains.
        """
        if self._stalling_branch is not None:
            branch = self._stalling_branch
            if branch.complete_cycle < 0 or cycle <= (
                branch.complete_cycle + self.redirect_penalty
            ):
                self.mispredict_stall_cycles += 1
                return []
            self._stalling_branch = None
            self._last_line = -1  # redirect refetches the target line
        if cycle < self._icache_stall_until:
            self.icache_stall_cycles += 1
            return []

        cols = self._columns
        hierarchy = self.hierarchy
        line_bytes = hierarchy.l1i.line_bytes
        insts = cols.insts
        flags = cols.flags
        addrs = cols.mem_addrs
        lines = cols.line_ids(line_bytes)
        limit = min(budget, self.fetch_width)
        idx = self._col_pos
        seq = self._seq
        last_line = self._last_line
        predictor_update = self.predictor.predict_and_update
        n = len(insts)
        group: List[DynInst] = []
        fetched = 0
        while fetched < limit:
            if idx >= n:
                cols.require(idx + 1)  # extend, or ScenarioError (frozen)
                insts = cols.insts
                flags = cols.flags
                addrs = cols.mem_addrs
                lines = cols.line_ids(line_bytes)
                n = len(insts)
            line = lines[idx]
            inst = insts[idx]
            if line != last_line:
                latency = hierarchy.ifetch_latency(inst.pc)
                last_line = line
                if latency > hierarchy.timing.l1_hit:
                    # Line is being filled; deliver what we have and stall.
                    self._icache_stall_until = cycle + latency
                    break
            f = flags[idx]
            taken = (f & TAKEN) != 0
            dyn = DynInst(seq, inst, taken=taken, mem_addr=addrs[idx])
            seq += 1
            idx += 1
            dyn.fetch_cycle = cycle
            group.append(dyn)
            fetched += 1
            if f & CONTROL:
                if f & CONDITIONAL:
                    prediction = predictor_update(inst.pc, taken)
                    dyn.pred_taken = prediction
                    if prediction != taken:
                        dyn.mispredicted = True
                        self._stalling_branch = dyn
                        break
                else:
                    # Unconditional jumps: BTB assumed to hit.
                    dyn.pred_taken = True
                if taken:
                    break  # a taken branch ends the fetch group
        self._col_pos = idx
        self._seq = seq
        self._last_line = last_line
        self.fetched += fetched
        return group

    @property
    def stalled(self) -> bool:
        """True while waiting on a mispredicted branch or an I-miss."""
        return self._stalling_branch is not None
