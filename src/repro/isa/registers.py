"""Logical register name space of the simulated ISA.

Registers are plain integers: ``0 .. N_INT_REGS-1`` are the integer
registers ``r0..r31`` and ``N_INT_REGS .. N_REGS-1`` are the floating point
registers ``f0..f31``.  Using a flat integer namespace keeps the rename map
table a simple list and the hot simulation loop free of object overhead.
"""

from __future__ import annotations

#: Number of integer logical registers.
N_INT_REGS = 32
#: Number of floating-point logical registers.
N_FP_REGS = 32
#: Total number of logical registers.
N_REGS = N_INT_REGS + N_FP_REGS

#: First floating-point register index.
FP_BASE = N_INT_REGS


def int_reg(index: int) -> int:
    """Return the flat register id of integer register ``r<index>``."""
    if not 0 <= index < N_INT_REGS:
        raise ValueError(f"integer register index out of range: {index}")
    return index


def fp_reg(index: int) -> int:
    """Return the flat register id of FP register ``f<index>``."""
    if not 0 <= index < N_FP_REGS:
        raise ValueError(f"fp register index out of range: {index}")
    return FP_BASE + index


def is_fp_reg(reg: int) -> bool:
    """True when the flat register id *reg* names an FP register."""
    return reg >= FP_BASE


def reg_name(reg: int) -> str:
    """Human-readable name (``r7`` / ``f3``) of a flat register id."""
    if not 0 <= reg < N_REGS:
        raise ValueError(f"register id out of range: {reg}")
    if reg < FP_BASE:
        return f"r{reg}"
    return f"f{reg - FP_BASE}"
