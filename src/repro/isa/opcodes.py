"""Opcode and instruction-class definitions for the simulated ISA.

The paper targets an Alpha-like RISC ISA simulated with SimpleScalar.  We
define a compact RISC ISA with the operation classes the microarchitecture
distinguishes:

* *simple integer* operations executable in **both** clusters,
* *complex integer* operations (multiply/divide) restricted to cluster 1,
* *floating point* operations restricted to cluster 2,
* *memory* operations, split by the hardware into an effective-address
  computation (a simple integer add, executable in either cluster) and the
  memory access proper (handled by the central disambiguation logic),
* *control* operations (conditional branches and jumps).

Latencies follow common SimpleScalar defaults for the era: 1 cycle for
simple ALU operations, pipelined 4-cycle multiplies, unpipelined 12-cycle
divides, and FP latencies mirroring the integer complex units.
"""

from __future__ import annotations

import enum
from typing import Dict


class InstrClass(enum.IntEnum):
    """Execution class of an instruction, as seen by the steering logic."""

    SIMPLE_INT = 0
    COMPLEX_INT = 1
    FP = 2
    LOAD = 3
    STORE = 4
    BRANCH = 5
    JUMP = 6
    COPY = 7  # internal: inter-cluster copy inserted by the dispatch logic
    NOP = 8


class Opcode(enum.IntEnum):
    """Operations of the simulated ISA."""

    # Simple integer / logic (executable in both clusters).
    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    SHL = 5
    SHR = 6
    CMP = 7
    MOV = 8
    ADDI = 9
    LUI = 10
    # Complex integer (cluster 1 only).
    MUL = 20
    DIV = 21
    # Floating point (cluster 2 only).
    FADD = 30
    FSUB = 31
    FMUL = 32
    FDIV = 33
    FCMP = 34
    FMOV = 35
    # Memory.
    LOAD = 40
    STORE = 41
    FLOAD = 42
    FSTORE = 43
    # Control.
    BEQ = 50
    BNE = 51
    BLT = 52
    BGE = 53
    JMP = 54
    # Miscellaneous.
    NOP = 60
    COPY = 61  # internal, never appears in a static program


_CLASS_OF: Dict[Opcode, InstrClass] = {
    Opcode.ADD: InstrClass.SIMPLE_INT,
    Opcode.SUB: InstrClass.SIMPLE_INT,
    Opcode.AND: InstrClass.SIMPLE_INT,
    Opcode.OR: InstrClass.SIMPLE_INT,
    Opcode.XOR: InstrClass.SIMPLE_INT,
    Opcode.SHL: InstrClass.SIMPLE_INT,
    Opcode.SHR: InstrClass.SIMPLE_INT,
    Opcode.CMP: InstrClass.SIMPLE_INT,
    Opcode.MOV: InstrClass.SIMPLE_INT,
    Opcode.ADDI: InstrClass.SIMPLE_INT,
    Opcode.LUI: InstrClass.SIMPLE_INT,
    Opcode.MUL: InstrClass.COMPLEX_INT,
    Opcode.DIV: InstrClass.COMPLEX_INT,
    Opcode.FADD: InstrClass.FP,
    Opcode.FSUB: InstrClass.FP,
    Opcode.FMUL: InstrClass.FP,
    Opcode.FDIV: InstrClass.FP,
    Opcode.FCMP: InstrClass.FP,
    Opcode.FMOV: InstrClass.FP,
    Opcode.LOAD: InstrClass.LOAD,
    Opcode.FLOAD: InstrClass.LOAD,
    Opcode.STORE: InstrClass.STORE,
    Opcode.FSTORE: InstrClass.STORE,
    Opcode.BEQ: InstrClass.BRANCH,
    Opcode.BNE: InstrClass.BRANCH,
    Opcode.BLT: InstrClass.BRANCH,
    Opcode.BGE: InstrClass.BRANCH,
    Opcode.JMP: InstrClass.JUMP,
    Opcode.NOP: InstrClass.NOP,
    Opcode.COPY: InstrClass.COPY,
}

#: Execution latency (cycles spent in a functional unit) per opcode.
LATENCY: Dict[Opcode, int] = {
    Opcode.MUL: 4,
    Opcode.DIV: 12,
    Opcode.FADD: 2,
    Opcode.FSUB: 2,
    Opcode.FMUL: 4,
    Opcode.FDIV: 12,
    Opcode.FCMP: 2,
    Opcode.FMOV: 1,
}
_DEFAULT_LATENCY = 1

#: Opcodes whose functional unit is *not* pipelined (a new operation cannot
#: start until the previous one finishes).
UNPIPELINED: frozenset = frozenset({Opcode.DIV, Opcode.FDIV})


def class_of(opcode: Opcode) -> InstrClass:
    """Return the :class:`InstrClass` of *opcode*."""
    return _CLASS_OF[opcode]


def latency_of(opcode: Opcode) -> int:
    """Return the functional-unit latency of *opcode* in cycles."""
    return LATENCY.get(opcode, _DEFAULT_LATENCY)


def is_memory(opcode: Opcode) -> bool:
    """True when *opcode* is a load or a store."""
    cls = _CLASS_OF[opcode]
    return cls is InstrClass.LOAD or cls is InstrClass.STORE


def is_control(opcode: Opcode) -> bool:
    """True when *opcode* changes control flow."""
    cls = _CLASS_OF[opcode]
    return cls is InstrClass.BRANCH or cls is InstrClass.JUMP


def is_fp(opcode: Opcode) -> bool:
    """True when *opcode* executes on the floating-point units."""
    return _CLASS_OF[opcode] is InstrClass.FP


def is_complex_int(opcode: Opcode) -> bool:
    """True when *opcode* needs the complex integer unit (cluster 1)."""
    return _CLASS_OF[opcode] is InstrClass.COMPLEX_INT


def is_simple_int(opcode: Opcode) -> bool:
    """True when *opcode* is a simple integer/logic operation."""
    return _CLASS_OF[opcode] is InstrClass.SIMPLE_INT
