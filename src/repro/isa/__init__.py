"""Instruction-set definitions for the simulated Alpha-like RISC machine."""

from .instruction import INSTRUCTION_SIZE, DynInst, Instruction, make_copy_inst
from .opcodes import (
    LATENCY,
    UNPIPELINED,
    InstrClass,
    Opcode,
    class_of,
    is_complex_int,
    is_control,
    is_fp,
    is_memory,
    is_simple_int,
    latency_of,
)
from .registers import (
    FP_BASE,
    N_FP_REGS,
    N_INT_REGS,
    N_REGS,
    fp_reg,
    int_reg,
    is_fp_reg,
    reg_name,
)

__all__ = [
    "INSTRUCTION_SIZE",
    "DynInst",
    "Instruction",
    "make_copy_inst",
    "LATENCY",
    "UNPIPELINED",
    "InstrClass",
    "Opcode",
    "class_of",
    "is_complex_int",
    "is_control",
    "is_fp",
    "is_memory",
    "is_simple_int",
    "latency_of",
    "FP_BASE",
    "N_FP_REGS",
    "N_INT_REGS",
    "N_REGS",
    "fp_reg",
    "int_reg",
    "is_fp_reg",
    "reg_name",
]
