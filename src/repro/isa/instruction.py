"""Static and dynamic instruction records.

:class:`Instruction` is the *static* form: one object per program location,
shared by every dynamic execution of that location.  :class:`DynInst` is the
*dynamic* form: one (slotted, cheap) object per executed instance, carrying
the timing state the pipeline stages mutate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ISAError
from .opcodes import (
    InstrClass,
    Opcode,
    class_of,
    is_control,
    latency_of,
)

#: Byte size of one instruction; PCs advance by this amount.
INSTRUCTION_SIZE = 4


@dataclass(frozen=True)
class Instruction:
    """A static instruction at a fixed program counter.

    Parameters
    ----------
    pc:
        Program counter (byte address, multiple of 4).
    opcode:
        Operation performed.
    dst:
        Destination logical register, or ``None`` when the instruction does
        not write a register (stores, branches, nop).
    srcs:
        Source logical registers (possibly empty).
    target:
        Branch/jump target pc, required for control instructions.
    """

    pc: int
    opcode: Opcode
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    target: Optional[int] = None
    cls: InstrClass = field(init=False)
    latency: int = field(init=False)
    #: Precomputed readiness/forwarding views of ``srcs`` (hot-path data:
    #: the renamer and issue logic read these once per dynamic instance).
    issue_srcs: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    store_data_src: Optional[int] = field(init=False, repr=False, compare=False)
    is_memory: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        cls = class_of(self.opcode)
        object.__setattr__(self, "cls", cls)
        object.__setattr__(self, "latency", latency_of(self.opcode))
        self._validate()
        if cls is InstrClass.STORE:
            object.__setattr__(self, "issue_srcs", self.srcs[:-1])
            object.__setattr__(self, "store_data_src", self.srcs[-1])
        else:
            object.__setattr__(self, "issue_srcs", self.srcs)
            object.__setattr__(self, "store_data_src", None)
        object.__setattr__(
            self,
            "is_memory",
            cls is InstrClass.LOAD or cls is InstrClass.STORE,
        )

    def _validate(self) -> None:
        if self.pc < 0 or self.pc % INSTRUCTION_SIZE:
            raise ISAError(f"bad pc {self.pc:#x} for {self.opcode.name}")
        if is_control(self.opcode) and self.target is None:
            raise ISAError(f"control op {self.opcode.name} needs a target")
        if self.cls is InstrClass.STORE and len(self.srcs) < 2:
            raise ISAError("store needs an address source and a data source")
        if self.cls is InstrClass.LOAD and self.dst is None:
            raise ISAError("load needs a destination register")
        if self.cls is InstrClass.LOAD and not self.srcs:
            raise ISAError("load needs an address source")
        if self.cls in (InstrClass.BRANCH, InstrClass.STORE, InstrClass.NOP):
            if self.dst is not None:
                raise ISAError(f"{self.opcode.name} must not write a register")

    # ``issue_srcs`` — sources whose readiness gates issue.  For stores
    # this is the address sources only: the data value is read by the
    # store buffer at commit, and in-order commit guarantees its producer
    # has completed by then (see DESIGN.md modelling notes).
    # ``store_data_src`` — the data register of a store, None otherwise.
    # ``is_memory`` — true for loads and stores.
    # All precomputed in ``__post_init__`` (hot-path reads).

    @property
    def is_control(self) -> bool:
        """True for branches and jumps."""
        return is_control(self.opcode)

    @property
    def is_conditional(self) -> bool:
        """True for conditional branches."""
        return self.cls is InstrClass.BRANCH

    def __str__(self) -> str:
        from .registers import reg_name

        parts = [f"{self.pc:#06x}: {self.opcode.name.lower()}"]
        if self.dst is not None:
            parts.append(reg_name(self.dst))
        parts.extend(reg_name(s) for s in self.srcs)
        if self.target is not None:
            parts.append(f"-> {self.target:#06x}")
        return " ".join(parts)


class DynInst:
    """One dynamic instance of an instruction flowing through the pipeline.

    The pipeline stages mutate the timing fields in place; keeping the
    record slotted and attribute-based (rather than a dict) is what makes a
    pure-Python cycle simulator tolerable.
    """

    __slots__ = (
        "seq",
        "inst",
        "cls",
        "taken",
        "pred_taken",
        "mispredicted",
        "mem_addr",
        "cluster",
        "fetch_cycle",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        "src_ready",
        "num_srcs",
        "in_ldst_slice",
        "in_br_slice",
        "is_copy",
        "copy_for",
        "copy_reg",
        "ea_done_cycle",
        "mem_latency",
        "issued",
        "completed",
        "last_arrival_seq",
        "providers",
        "copy_srcs",
        "critical",
        "frees",
        "pending_ops",
        "waiters",
        "iq_rank",
    )

    def __init__(
        self,
        seq: int,
        inst: Instruction,
        taken: bool = False,
        mem_addr: int = 0,
    ) -> None:
        self.seq = seq
        self.inst = inst
        # Mirrored from the static instruction: the issue/steering hot
        # paths read the class far too often for a property indirection.
        self.cls = inst.cls
        self.taken = taken
        self.pred_taken = False
        self.mispredicted = False
        self.mem_addr = mem_addr
        self.cluster = -1
        self.fetch_cycle = -1
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.commit_cycle = -1
        # Cycle at which each renamed source becomes readable in the target
        # cluster; filled by the dispatch stage.
        self.src_ready: list = []
        self.num_srcs = 0
        self.in_ldst_slice = False
        self.in_br_slice = False
        self.is_copy = False
        self.copy_for = -1  # seq of the consumer that required this copy
        self.copy_reg = -1  # logical register being copied
        self.ea_done_cycle = -1
        self.mem_latency = 0
        self.issued = False
        self.completed = False
        # Seq of the producer whose value arrived last (criticality stats).
        self.last_arrival_seq = -1
        # DynInst providers whose completion gates issue (None = ready).
        self.providers: list = []
        # True when any provider is a copy instruction — the only case
        # the critical-communication check can ever flag, so the issue
        # stage skips the provider walk entirely when this is False.
        self.copy_srcs = False
        # Set on copies that delayed a consumer (critical communication).
        self.critical = False
        # Physical registers this instruction's commit releases, per cluster.
        self.frees = (0, 0)
        # Event-driven wakeup state (see repro.pipeline.wakeup): number of
        # providers whose completion this instruction still awaits, the
        # window entries awaiting *this* instruction's completion (lazily
        # allocated; None doubles as "nothing registered / already woken"),
        # and the insertion rank inside the issue window (the select
        # logic's age order, which differs from ``seq`` order for copies).
        self.pending_ops = 0
        self.waiters: object = None
        self.iq_rank = 0

    @property
    def opcode(self) -> Opcode:
        """Opcode of the underlying static instruction."""
        return self.inst.opcode

    @property
    def pc(self) -> int:
        """Program counter of the underlying static instruction."""
        return self.inst.pc

    def __repr__(self) -> str:
        return (
            f"<DynInst #{self.seq} {self.inst.opcode.name} "
            f"pc={self.inst.pc:#x} cluster={self.cluster}>"
        )


#: The one static COPY instruction: copies have no program location, so
#: every dynamic copy shares this frozen record (building a dataclass
#: with validation per copy showed up in dispatch profiles).
_COPY_INST = Instruction(pc=0, opcode=Opcode.COPY, dst=None, srcs=())


def make_copy_inst(seq: int, logical_reg: int, consumer_seq: int) -> DynInst:
    """Build the internal copy instruction moving *logical_reg* across
    clusters on behalf of consumer *consumer_seq*.

    Copies have no static program location; they reuse pc 0 and are tagged
    through :attr:`DynInst.is_copy`.
    """
    dyn = DynInst(seq, _COPY_INST)
    dyn.is_copy = True
    dyn.copy_for = consumer_seq
    dyn.copy_reg = logical_reg
    return dyn
