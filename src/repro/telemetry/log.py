"""Structured JSON-lines event logging.

Every event is one JSON object on one line: wall-clock *and* monotonic
timestamps, a severity level, the emitting component, the process id
and host, and arbitrary event fields.  One line per event means the
sink can be shared by every process in a fleet (``O_APPEND`` writes of
a single line interleave cleanly) and consumed by anything that reads
JSONL — including :mod:`repro.telemetry.tracing`, whose span records
travel through the same sink.

Silent by default: until ``REPRO_LOG_LEVEL`` or ``REPRO_LOG_FILE`` is
set (or :func:`configure` is called, e.g. by the CLI's ``-v``), every
logging call is a single integer comparison and CLI output is
unchanged.  The first event a process emits is preceded by one
``telemetry.session`` event carrying the full provenance stamp from
:mod:`repro.perf.provenance`, so a log file always says which commit,
host, and interpreter produced it.

The sink is asynchronous on purpose: :func:`write_event` only builds
the record dict and appends it to an in-process buffer (a few µs), and
a daemon writer thread serialises and writes batches while the caller
is doing something else — on the warm dispatch path that "something
else" is waiting for worker replies, so telemetry costs almost no
wall-clock (the ``worker-warm-telemetry`` benchmark datapoint guards
this).  Ordering survives because one writer drains one FIFO buffer.
Durability is tiered: ``warning``/``error`` events flush synchronously
before the caller continues, everything else lands at the next batch,
on :func:`flush`, or at interpreter exit.  Readers in the same process
call :func:`flush` before opening the file.
"""

from __future__ import annotations

import atexit
import json
import os
import socket
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, Optional, TextIO

from ..errors import ConfigError

#: Severity levels, lowest first.  ``off`` disables the sink entirely.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}
_LEVEL_NAMES = {value: name for name, value in LEVELS.items()}

#: Environment knobs (the ``repro.dist`` ``*_from_env`` idiom: invalid
#: values raise :class:`ConfigError` naming the variable).
LEVEL_ENV = "REPRO_LOG_LEVEL"
FILE_ENV = "REPRO_LOG_FILE"

_lock = threading.RLock()
_cv = threading.Condition(_lock)
_HOST = socket.gethostname()

#: Events at or above this level flush synchronously — a warning must
#: be on disk before the code that hit it runs on.
FLUSH_LEVELS = 30

#: Backstop: a caller outrunning the writer this far blocks on a flush
#: instead of growing the buffer without bound.
_MAX_BUFFER = 10000

#: How often the writer thread polls the buffer.  Events are *not*
#: signalled individually — a per-event wakeup would turn the writer
#: back into a synchronous sink with context-switch overhead on top.
#: Only :func:`flush` and warning+ events notify the writer early.
_POLL_INTERVAL = 0.05

#: The writer exits after this long with nothing to do; the next event
#: starts a fresh thread.
_IDLE_EXIT = 1.0


def coerce_level(value, source: str = "log level") -> int:
    """Validate a level name; raise :class:`ConfigError` naming *source*."""
    if isinstance(value, int):
        if value in _LEVEL_NAMES:
            return value
        raise ConfigError(
            f"{source} must be one of {sorted(LEVELS)}, got {value!r}"
        )
    if isinstance(value, str) and value.strip().lower() in LEVELS:
        return LEVELS[value.strip().lower()]
    raise ConfigError(
        f"{source} must be one of {sorted(LEVELS)}, got {value!r}"
    )


class _Config:
    """Resolved sink configuration (level + destination)."""

    __slots__ = ("level", "path", "stream")

    def __init__(self, level: int, path: Optional[str], stream: Optional[TextIO]):
        self.level = level
        self.path = path
        self.stream = stream


def _config_from_env() -> _Config:
    path = os.environ.get(FILE_ENV) or None
    raw_level = os.environ.get(LEVEL_ENV)
    if raw_level is not None and raw_level != "":
        level = coerce_level(
            raw_level, source=f"environment variable {LEVEL_ENV}"
        )
    elif path:
        level = LEVELS["info"]
    else:
        level = LEVELS["off"]
    return _Config(level, path, None if path else sys.stderr)


_config: Optional[_Config] = None
_session_logged = False

#: The async sink: records enqueued by :func:`write_event`, drained by
#: one lazily started daemon writer thread.  ``_enqueued``/``_written``
#: are monotonic sequence counters so :func:`flush` can wait for
#: exactly the events that existed when it was called.
_buffer: deque = deque()
_writer: Optional[threading.Thread] = None
_enqueued = 0
_written = 0


def _current() -> _Config:
    global _config
    if _config is None:
        with _lock:
            if _config is None:
                _config = _config_from_env()
    return _config


def configure(
    level: Optional[object] = None,
    file: Optional[str] = None,
    verbose: int = 0,
) -> None:
    """(Re-)resolve the sink from the environment plus explicit overrides.

    ``verbose`` maps the CLI's ``-v`` / ``-vv`` onto info / debug without
    touching an explicit ``REPRO_LOG_LEVEL``.  Passing nothing simply
    re-reads the environment — tests use that after monkeypatching.
    """
    global _config, _session_logged
    flush()
    with _lock:
        _close_stream()
        config = _config_from_env()
        if file is not None:
            config.path = file or None
            config.stream = None if config.path else sys.stderr
            if config.level == LEVELS["off"] and config.path:
                config.level = LEVELS["info"]
        if verbose and LEVEL_ENV not in os.environ:
            config.level = min(
                config.level,
                LEVELS["debug"] if verbose > 1 else LEVELS["info"],
            )
        if level is not None:
            config.level = coerce_level(level)
        _config = config
        _session_logged = False


def reset() -> None:
    """Forget all cached state (tests; paired with env monkeypatching)."""
    global _config, _session_logged
    flush()
    with _lock:
        _close_stream()
        _config = None
        _session_logged = False


def _close_stream() -> None:
    config = _config
    if config is not None and config.path and config.stream is not None:
        try:
            config.stream.close()
        except OSError:
            pass
        config.stream = None


def enabled(level: str = "info") -> bool:
    """Would an event at *level* reach the sink right now?"""
    return LEVELS[level] >= _current().level


def sink_path() -> Optional[str]:
    """The configured log file, or ``None`` (stderr / disabled)."""
    return _current().path


def _provenance_fields() -> Dict[str, Any]:
    try:
        from ..perf.provenance import collect

        stamp = collect()
        return {
            "commit": stamp.commit,
            "dirty": stamp.dirty,
            "branch": stamp.branch,
            "platform": stamp.platform,
            "python": stamp.python,
        }
    except Exception:  # pragma: no cover - provenance is best-effort
        return {}


def write_event(
    component: str, level: int, event: str, fields: Dict[str, Any]
) -> None:
    """Queue one event for the sink (no-op below the threshold).

    The fast path is a dict build and a buffer append; serialisation
    and I/O happen on the writer thread.  Events at ``warning`` or
    above block until they are on the sink.
    """
    global _enqueued
    config = _current()
    if level < config.level:
        return
    record = {
        "ts": round(time.time(), 6),
        "mono": round(time.monotonic(), 6),
        "level": _LEVEL_NAMES.get(level, str(level)),
        "component": component,
        "event": event,
        "pid": os.getpid(),
        "host": _HOST,
    }
    for key, value in fields.items():
        if value is not None:
            record[key] = value
    with _cv:
        _buffer.append(record)
        _enqueued += 1
        target = _enqueued
        _ensure_writer()
        if level >= FLUSH_LEVELS or len(_buffer) >= _MAX_BUFFER:
            _cv.notify_all()
            _wait_written(target)


def _ensure_writer() -> None:
    """Start the daemon writer thread if it is not running (lock held)."""
    global _writer
    if _writer is None or not _writer.is_alive():
        _writer = threading.Thread(
            target=_writer_loop, name="repro-telemetry-writer", daemon=True
        )
        _writer.start()


def _wait_written(target: int, timeout: float = 10.0) -> None:
    """Block until the writer has emitted sequence *target* (lock held)."""
    deadline = time.monotonic() + timeout
    while _written < target:
        remaining = deadline - time.monotonic()
        if remaining <= 0 or _writer is None or not _writer.is_alive():
            return  # never deadlock the simulation on its own telemetry
        _cv.wait(min(remaining, 0.5))


def flush(timeout: float = 10.0) -> None:
    """Block until every event enqueued so far is on the sink.

    Same-process readers (tests, ``trace show`` on a live file) call
    this before opening the file; it is also registered at interpreter
    exit, so short-lived CLI processes never lose tail events.
    """
    with _cv:
        if _enqueued == _written:
            return
        _ensure_writer()
        _cv.notify_all()
        _wait_written(_enqueued, timeout)


def _writer_loop() -> None:
    global _written, _writer
    idle = 0.0
    while True:
        with _cv:
            if not _buffer:
                _cv.wait(_POLL_INTERVAL)
            if not _buffer:
                idle += _POLL_INTERVAL
                if idle >= _IDLE_EXIT:
                    # Idle long enough: deregister (under the lock, so
                    # no enqueue can observe a live-but-exiting writer)
                    # and exit; the next event starts a fresh thread.
                    if _writer is threading.current_thread():
                        _writer = None
                    return
                continue
            idle = 0.0
            batch = list(_buffer)
            _buffer.clear()
        _emit_batch(batch)
        with _cv:
            _written += len(batch)
            _cv.notify_all()


def _emit_batch(batch) -> None:
    """Serialise and write *batch* (writer thread only)."""
    global _session_logged
    with _lock:
        config = _current()
        stream = config.stream
        if stream is None:
            if not config.path:
                return
            try:
                stream = open(config.path, "a", encoding="utf-8")
            except OSError as err:
                # A bad path must never take the simulation down; fall
                # back to stderr and say why once.
                config.path = None
                config.stream = stream = sys.stderr
                stream.write(
                    json.dumps({
                        "event": "telemetry.sink-error",
                        "error": str(err),
                    }) + "\n"
                )
            else:
                config.stream = stream
        lines = []
        if not _session_logged:
            _session_logged = True
            session = {
                "ts": round(time.time(), 6),
                "mono": round(time.monotonic(), 6),
                "level": "info",
                "component": "telemetry",
                "event": "telemetry.session",
                "pid": os.getpid(),
                "host": _HOST,
                "argv0": os.path.basename(sys.argv[0] or "python"),
            }
            session.update(_provenance_fields())
            lines.append(json.dumps(session, default=str))
        for record in batch:
            lines.append(json.dumps(record, default=str))
        try:
            # One write call per batch: complete lines only, so fleet
            # processes appending to a shared file never interleave
            # mid-line.
            stream.write("\n".join(lines) + "\n")
            stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed sink
            pass


def _reinit_after_fork() -> None:  # pragma: no cover - exercised via CI
    """A forked child must not re-write the parent's queued events."""
    global _writer, _enqueued, _written
    _buffer.clear()
    _writer = None
    _enqueued = _written = 0


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)
atexit.register(flush)


class EventLogger:
    """A component-scoped structured logger (see :func:`get_logger`)."""

    __slots__ = ("component",)

    def __init__(self, component: str):
        self.component = component

    def is_enabled(self, level: str = "info") -> bool:
        return enabled(level)

    def log(self, level: str, event: str, **fields) -> None:
        write_event(self.component, LEVELS[level], event, fields)

    def debug(self, event: str, **fields) -> None:
        write_event(self.component, 10, event, fields)

    def info(self, event: str, **fields) -> None:
        write_event(self.component, 20, event, fields)

    def warning(self, event: str, **fields) -> None:
        write_event(self.component, 30, event, fields)

    def error(self, event: str, **fields) -> None:
        write_event(self.component, 40, event, fields)


_loggers: Dict[str, EventLogger] = {}


def get_logger(component: str) -> EventLogger:
    """The process-wide logger for *component* (e.g. ``"dist.serve"``)."""
    logger = _loggers.get(component)
    if logger is None:
        with _lock:
            logger = _loggers.setdefault(component, EventLogger(component))
    return logger
