"""Distributed tracing: spans, propagation contexts, and trace trees.

A :class:`Span` names one stage of a distributed job — ``campaign``,
``submit``, ``dispatch``, ``worker.batch`` — with a shared ``trace_id``,
its own ``span_id``, an optional parent, a wall-clock start, a
monotonic duration, and free-form attributes.  Finished spans become
plain dicts: recorded into a bounded in-process ring (for status
endpoints and tests), written through the structured log sink as
``event: "span"`` lines, and small enough to ride protocol replies so
a worker's spans land in the dispatcher's log too.

Propagation is an optional ``trace`` field — ``{"trace_id", "span_id"}``
— on protocol requests.  Old peers ignore unknown fields and new peers
tolerate its absence, so the worker protocol (v2) and service protocol
(v1) versions are unchanged.

Because both ends record, the same span may appear twice in one log
file (a local worker and its dispatcher share ``REPRO_LOG_FILE``);
:func:`load_spans` deduplicates by ``span_id``.  :func:`render_trace`
reconstructs the tree for ``repro-sim trace show``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .log import get_logger

_log = get_logger("trace")

#: Trace ids are 16 hex chars, span ids 8 — long enough to never collide
#: within one campaign, short enough to read in a log line.
_TRACE_BYTES = 8
_SPAN_BYTES = 4

#: A propagation context as it travels on the wire.
Context = Dict[str, str]

_recent_lock = threading.Lock()
_recent: deque = deque(maxlen=4096)


def new_trace_id() -> str:
    return os.urandom(_TRACE_BYTES).hex()


def new_span_id() -> str:
    return os.urandom(_SPAN_BYTES).hex()


class Span:
    """One timed stage of a trace.  End it exactly once."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start", "_t0", "duration", "status", "error", "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.trace_id = trace_id or new_trace_id()
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.start = time.time()
        self._t0 = time.perf_counter()
        self.duration: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.attrs: Dict[str, Any] = dict(attrs or {})

    def child(self, name: str, **attrs) -> "Span":
        return Span(
            name, trace_id=self.trace_id, parent_id=self.span_id,
            attrs=attrs,
        )

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def context(self) -> Context:
        """The wire form: what a ``trace`` protocol field carries."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def end(
        self,
        status: str = "ok",
        error: Optional[str] = None,
        record: bool = True,
    ) -> Dict[str, Any]:
        """Close the span; returns (and by default records) its record."""
        if self.duration is None:
            self.duration = time.perf_counter() - self._t0
            self.status = status
            self.error = error
        doc = self.to_record()
        if record:
            record_span(doc)
        return doc

    def to_record(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "start": round(self.start, 6),
            "duration": round(
                self.duration
                if self.duration is not None
                else time.perf_counter() - self._t0,
                6,
            ),
            "status": self.status,
        }
        if self.parent_id:
            doc["parent_id"] = self.parent_id
        if self.error:
            doc["error"] = str(self.error)[:500]
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


def start_span(
    name: str,
    parent: Union[Span, Context, None] = None,
    **attrs,
) -> Span:
    """A new span under *parent* — a :class:`Span`, a wire context dict,
    or ``None`` for a fresh trace root.  Malformed contexts (an old peer
    sent something odd) silently start a fresh trace rather than fail.
    """
    if isinstance(parent, Span):
        return parent.child(name, **attrs)
    trace_id = parent_id = None
    if isinstance(parent, dict):
        trace_id = parent.get("trace_id")
        parent_id = parent.get("span_id")
        if not isinstance(trace_id, str) or not trace_id:
            trace_id = parent_id = None
        elif not isinstance(parent_id, str):
            parent_id = None
    return Span(name, trace_id=trace_id, parent_id=parent_id, attrs=attrs)


def record_span(doc: Dict[str, Any]) -> None:
    """Keep *doc* in the in-process ring and write it to the log sink."""
    if not isinstance(doc, dict) or not doc.get("span_id"):
        return
    with _recent_lock:
        _recent.append(doc)
    _log.info(
        "span",
        name=doc.get("name"),
        trace_id=doc.get("trace_id"),
        span_id=doc.get("span_id"),
        parent_id=doc.get("parent_id"),
        start=doc.get("start"),
        duration=doc.get("duration"),
        status=doc.get("status"),
        error=doc.get("error"),
        attrs=doc.get("attrs"),
    )


def recent_spans(trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
    """Recently recorded spans in this process (newest last)."""
    with _recent_lock:
        spans = list(_recent)
    if trace_id is not None:
        spans = [s for s in spans if s.get("trace_id") == trace_id]
    return spans


def clear_recent() -> None:
    with _recent_lock:
        _recent.clear()


# --------------------------------------------------------------------------
# The ambient span: campaign → backend hand-off without threading a span
# argument through every execute() signature.  Thread-local on purpose —
# dispatcher threads capture the context explicitly before they fork off.

_active = threading.local()


def current_span() -> Optional[Span]:
    stack = getattr(_active, "stack", None)
    return stack[-1] if stack else None


class activate:
    """``with activate(span):`` makes *span* the ambient current span."""

    def __init__(self, span: Span):
        self.span = span

    def __enter__(self) -> Span:
        stack = getattr(_active, "stack", None)
        if stack is None:
            stack = _active.stack = []
        stack.append(self.span)
        return self.span

    def __exit__(self, *exc) -> None:
        stack = getattr(_active, "stack", None)
        if stack and stack[-1] is self.span:
            stack.pop()


def current_context() -> Optional[Context]:
    span = current_span()
    return span.context() if span is not None else None


# --------------------------------------------------------------------------
# Reading traces back: JSONL → deduplicated span records → rendered tree.


def load_spans(path: str) -> List[Dict[str, Any]]:
    """All span records in a JSONL log file, deduplicated by span_id.

    Both ends of a protocol exchange record the same worker span, so a
    shared log file legitimately contains duplicates; the last record
    wins.  Non-JSON lines and non-span events are skipped.
    """
    by_id: Dict[str, Dict[str, Any]] = {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(doc, dict) or doc.get("event") != "span":
                    continue
                span_id = doc.get("span_id")
                if isinstance(span_id, str) and span_id:
                    by_id[span_id] = doc
    except OSError as err:
        from ..errors import ConfigError

        raise ConfigError(f"cannot read trace log {path!r}: {err}")
    spans = list(by_id.values())
    spans.sort(key=lambda s: s.get("start") or 0.0)
    return spans


def resolve_trace_id(
    spans: Iterable[Dict[str, Any]], token: str
) -> Optional[str]:
    """Find the trace a *token* names: a trace-id (prefix) or any span
    attribute value — typically a job id or a campaign label."""
    token = str(token)
    attr_hit = None
    for span in spans:
        trace_id = span.get("trace_id") or ""
        if trace_id == token or trace_id.startswith(token):
            return trace_id
        attrs = span.get("attrs") or {}
        if attr_hit is None and any(
            str(value) == token for value in attrs.values()
        ):
            attr_hit = trace_id
    return attr_hit


def span_tree(
    spans: Iterable[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], Dict[str, List[Dict[str, Any]]]]:
    """(roots, children-by-parent-id), both sorted by start time."""
    spans = sorted(spans, key=lambda s: s.get("start") or 0.0)
    ids = {s.get("span_id") for s in spans}
    roots = []
    children: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in ids:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    return roots, children


def _describe(span: Dict[str, Any]) -> str:
    duration = span.get("duration")
    timing = f"{duration:9.3f}s" if isinstance(duration, (int, float)) else "        ?"
    attrs = span.get("attrs") or {}
    detail = " ".join(
        f"{key}={value}" for key, value in sorted(attrs.items())
    )
    line = f"{span.get('name', '?'):<24s} {timing}"
    if span.get("status") not in (None, "ok"):
        line += f"  [{span.get('status')}: {span.get('error', '')}]"
    if detail:
        line += f"  {detail}"
    return line.rstrip()


def render_trace(spans: List[Dict[str, Any]], trace_id: str) -> str:
    """A human-readable tree of one trace with per-stage durations."""
    mine = [s for s in spans if s.get("trace_id") == trace_id]
    if not mine:
        return f"trace {trace_id}: no spans recorded"
    roots, children = span_tree(mine)
    lines = [f"trace {trace_id} — {len(mine)} span(s)"]

    def walk(span: Dict[str, Any], prefix: str, tail: bool) -> None:
        branch = "`- " if tail else "|- "
        lines.append(prefix + branch + _describe(span))
        kids = children.get(span.get("span_id"), [])
        extension = "   " if tail else "|  "
        for i, kid in enumerate(kids):
            walk(kid, prefix + extension, i == len(kids) - 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    return "\n".join(lines)


def check_span_trees(spans: Iterable[Dict[str, Any]]) -> List[str]:
    """Structural problems in recorded traces (CI's completeness gate).

    Every successful ``dispatch`` span must contain a ``batch-run``
    child, and every successful ``batch-run`` must contain the worker's
    own ``worker.batch`` span — otherwise a chunk ran without its
    telemetry surviving the round trip.  Returns human-readable problem
    strings; empty means every dispatched chunk has a complete tree.
    """
    spans = list(spans)
    _, children = span_tree(spans)
    problems = []
    for span in spans:
        if span.get("status") != "ok":
            continue
        kids = children.get(span.get("span_id"), [])
        names = [k.get("name") for k in kids]
        if span.get("name") == "dispatch" and "batch-run" not in names:
            problems.append(
                f"dispatch span {span.get('span_id')} "
                f"(trace {span.get('trace_id')}) has no batch-run child"
            )
        if span.get("name") == "batch-run" and "worker.batch" not in names:
            problems.append(
                f"batch-run span {span.get('span_id')} "
                f"(trace {span.get('trace_id')}) has no worker.batch child"
            )
    return problems
