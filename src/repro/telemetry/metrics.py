"""A process-wide metrics registry: counters, gauges, histograms.

The runtime previously kept its numbers in scattered ad-hoc dicts —
``WorkerPool.stats()`` counters, the serve daemon's per-tenant depths
and dispatch log, nothing at all for per-point simulate/decode cost.
This module gives them one home: named instruments registered on a
shared :data:`metrics` registry whose :meth:`~MetricsRegistry.snapshot`
is surfaced by ``dist pool status --json``, ``dist serve status
--json``, and ``repro-sim telemetry dump``.

Instruments are cheap (a lock and a few floats) and process-local; a
worker's metrics describe that worker's process and ride its ``stats``
protocol reply, they are not merged magically across a fleet.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError

#: Default histogram bucket upper bounds (seconds-flavoured: from 100µs
#: to ~2 minutes, roughly 3 buckets per decade).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def to_document(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A point-in-time value; settable or backed by a callback."""

    __slots__ = ("name", "_value", "_fn", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._fn: Optional[Callable[[], float]] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = value

    def set_function(self, fn: Callable[[], float]) -> None:
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return fn()
            except Exception:  # pragma: no cover - callback died
                return self._value
        return self._value

    def to_document(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A distribution summary with fixed cumulative buckets."""

    __slots__ = (
        "name", "bounds", "_counts", "_count", "_sum", "_min", "_max",
        "_lock",
    )

    def __init__(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    ):
        self.name = name
        self.bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._counts[bisect_right(self.bounds, value)] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def to_document(self) -> dict:
        with self._lock:
            doc = {
                "type": "histogram",
                "count": self._count,
                "sum": round(self._sum, 6),
            }
            if self._count:
                doc["min"] = round(self._min, 6)
                doc["max"] = round(self._max, 6)
                doc["mean"] = round(self._sum / self._count, 6)
                buckets = {}
                running = 0
                for bound, n in zip(self.bounds, self._counts):
                    running += n
                    if n:
                        buckets[f"le_{bound:g}"] = running
                if self._counts[-1]:
                    buckets["le_inf"] = self._count
                doc["buckets"] = buckets
            return doc


class MetricsRegistry:
    """Named instruments, created on first use, snapshot on demand."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = cls(name, *args)
                    self._instruments[name] = instrument
        if not isinstance(instrument, cls):
            raise ConfigError(
                f"metric {name!r} is already registered as "
                f"{type(instrument).__name__.lower()}, "
                f"not {cls.__name__.lower()}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, buckets)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """Every instrument, decoded to plain JSON-ready documents."""
        with self._lock:
            items = list(self._instruments.items())
        return {
            name: instrument.to_document()
            for name, instrument in sorted(items)
        }

    def reset(self) -> None:
        """Drop every instrument (tests and bench isolation)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide registry every component records into.
metrics = MetricsRegistry()
