"""Observability for the simulation service: logging, tracing, metrics.

Three coordinated layers, all silent-by-default:

* :mod:`repro.telemetry.log` — structured JSON-lines event logging
  (``get_logger(component)``), enabled via ``REPRO_LOG_LEVEL`` /
  ``REPRO_LOG_FILE`` or the CLI's ``-v``.
* :mod:`repro.telemetry.tracing` — spans with trace/span ids propagated
  as an optional ``trace`` protocol field, recorded on both ends, and
  reconstructed by ``repro-sim trace show``.
* :mod:`repro.telemetry.metrics` — one process-wide registry of
  counters/gauges/histograms behind ``telemetry.metrics``, surfaced by
  the ``--json`` status endpoints and ``repro-sim telemetry dump``.
"""

from .log import (
    EventLogger,
    FILE_ENV,
    LEVEL_ENV,
    LEVELS,
    coerce_level,
    configure,
    enabled,
    flush,
    get_logger,
    reset,
    sink_path,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
)
from . import tracing
from .tracing import (
    Span,
    activate,
    check_span_trees,
    current_context,
    current_span,
    load_spans,
    new_trace_id,
    recent_spans,
    record_span,
    render_trace,
    resolve_trace_id,
    span_tree,
    start_span,
)

__all__ = [
    "EventLogger",
    "FILE_ENV",
    "LEVEL_ENV",
    "LEVELS",
    "coerce_level",
    "configure",
    "enabled",
    "flush",
    "get_logger",
    "reset",
    "sink_path",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "tracing",
    "Span",
    "activate",
    "check_span_trees",
    "current_context",
    "current_span",
    "load_spans",
    "new_trace_id",
    "recent_spans",
    "record_span",
    "render_trace",
    "resolve_trace_id",
    "span_tree",
    "start_span",
]
