"""Campaign engine: one pass over a grid of simulation points.

The paper's evaluation is a *campaign*: many independent ``simulate()``
calls over the cross product of benchmarks, steering schemes, machine
variants and seeds.  Running them naively regenerates the same workload
program and re-decodes the same committed-path trace for every scheme.
This module executes the whole grid in a single pass instead:

* points resolve machines through the :mod:`repro.spec.machines`
  registry and apply dotted-path overrides through
  :mod:`repro.spec.overrides`, and each point executes through the
  :func:`repro.run` facade — a grid cell and the equivalent declarative
  :class:`~repro.spec.RunSpec` are the same run;
* points are grouped by ``(bench, seed)`` so each group shares one
  generated program and one materialised trace
  (:class:`~repro.workloads.trace.SharedTrace`);
* groups are dispatched through a pluggable execution backend from
  :mod:`repro.dist` — ``workers=1`` runs on the in-process ``serial``
  backend, ``workers>1`` defaults to the ``process`` pool backend, and
  ``backend="worker"`` / ``backend="dirqueue"`` fan the same points out
  over protocol subprocesses or a shared-filesystem job directory;
* results round-trip through JSON and CSV stores, and a seed-aggregation
  layer reports mean/std per (bench, scheme, machine) for multi-seed
  scenario studies.

>>> from repro.analysis.campaign import Campaign, expand_grid
>>> points = expand_grid(["gcc"], ["modulo"], n_instructions=600, warmup=200)
>>> results = Campaign(points).run()
>>> results[0].result.ipc > 0
True
"""

from __future__ import annotations

import csv
import json
import math
import os
import time
import traceback
from dataclasses import asdict, dataclass, field, fields
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ConfigError, ReproError
from ..pipeline import ProcessorConfig, SimResult
from ..telemetry import get_logger, metrics, tracing
from ..spec.machines import machine_config
from ..spec.overrides import (
    apply_override,
    apply_overrides,
    normalize_overrides,
    overrides_from_jsonable,
    overrides_to_jsonable,
    validate_overrides,
)

_log = get_logger("analysis.campaign")


@dataclass(frozen=True)
class CampaignPoint:
    """One cell of a campaign grid.

    ``machine`` is any name the :mod:`repro.spec.machines` registry
    resolves (including parametric families like ``bypass-latency-2``).
    ``overrides`` is a tuple of ``(path, value)`` pairs — dotted paths
    such as ``clusters.0.iq_size`` or legacy flat names — applied on top
    of the machine; tuples (not dicts) so points stay hashable and cheap
    to pickle across worker processes.
    """

    bench: str
    scheme: str
    machine: str = "clustered"
    overrides: Tuple[Tuple[str, object], ...] = ()
    seed: int = 0
    n_instructions: int = 20000
    warmup: int = 5000

    def config(self) -> ProcessorConfig:
        """Materialise the machine description for this point."""
        return apply_overrides(machine_config(self.machine), self.overrides)

    def spec(self):
        """This point as a declarative :class:`~repro.spec.RunSpec`."""
        from ..spec.specs import RunSpec

        return RunSpec.from_point(self)

    @property
    def trace_key(self) -> Tuple[str, int]:
        """Points sharing this key share one generated workload trace."""
        return (self.bench, self.seed)

    @property
    def label(self) -> str:
        """Human-readable cell name for logs and error messages."""
        parts = [self.bench, self.scheme]
        if self.machine != "clustered":
            parts.append(self.machine)
        parts.extend(f"{p}={v}" for p, v in self.overrides)
        if self.seed:
            parts.append(f"seed={self.seed}")
        return "/".join(parts)


def expand_grid(
    benches: Sequence[str],
    schemes: Sequence[str],
    machines: Sequence[str] = ("clustered",),
    overrides: Sequence = ((),),
    seeds: Sequence[int] = (0,),
    n_instructions: int = 20000,
    warmup: int = 5000,
) -> List[CampaignPoint]:
    """Cross product of benches × schemes × machines × overrides × seeds.

    Each entry of *overrides* is one override set — a dict
    (``{"clusters.0.iq_size": 128}``) or a tuple of ``(path, value)``
    pairs.  Every (machine, override set) combination is validated
    eagerly here, so an unknown machine name or a bad dotted path fails
    at expansion time with a :class:`~repro.errors.ConfigError` instead
    of inside a worker process.

    The expansion order keeps all points of one ``(bench, seed)`` pair
    adjacent, matching how the engine groups work onto shared traces.
    """
    override_sets = [normalize_overrides(ov) for ov in overrides] or [()]
    for machine in machines:
        base = machine_config(machine)
        for override_set in override_sets:
            validate_overrides(override_set, base)
    points: List[CampaignPoint] = []
    for bench in benches:
        for seed in seeds:
            for machine in machines:
                for override in override_sets:
                    for scheme in schemes:
                        points.append(
                            CampaignPoint(
                                bench=bench,
                                scheme=scheme,
                                machine=machine,
                                overrides=tuple(override),
                                seed=seed,
                                n_instructions=n_instructions,
                                warmup=warmup,
                            )
                        )
    return points


def run_point(point: CampaignPoint) -> SimResult:
    """Simulate one campaign point (sharing the process-wide caches).

    Routes through the :func:`repro.run` facade, so a campaign point and
    the equivalent :class:`~repro.spec.RunSpec` are the same execution.
    """
    from ..spec.facade import execute

    return execute(point.spec())


class CampaignError(ReproError):
    """One or more campaign points failed to simulate.

    ``failures`` maps each failing :class:`CampaignPoint` to the traceback
    text from its worker, so a campaign over a hundred points reports
    every broken cell instead of dying on the first.  When the campaign
    ran under a trace, ``trace_id`` is carried in the message so the
    failure can be joined to its span tree (and the retries that
    preceded it) in the telemetry log.
    """

    def __init__(
        self,
        failures: List[Tuple[CampaignPoint, str]],
        trace_id: Optional[str] = None,
    ) -> None:
        self.failures = list(failures)
        self.trace_id = trace_id
        heads = "; ".join(
            f"{point.label}: {text.strip().splitlines()[-1]}"
            for point, text in self.failures
        )
        message = f"{len(self.failures)} campaign point(s) failed: {heads}"
        if trace_id:
            message += f" [trace {trace_id}]"
        super().__init__(message)


def _run_group(
    group: Sequence[Tuple[int, CampaignPoint]],
) -> List[Tuple[int, Optional[SimResult], Optional[str], Optional[dict]]]:
    """Worker entry point: run one shared-trace group of points.

    All points in a group target the same ``(bench, seed)``, so the first
    simulation generates the program and trace and the rest replay them.
    Exceptions are captured per point (with the full traceback) rather
    than raised, so a broken scheme cannot take down its group mates.
    Each entry carries a trailing timing dict (``elapsed_seconds`` plus
    the facade's resolve/simulate split) so stores can attribute
    per-point cost.
    """
    from ..spec.facade import last_timing

    out: List[
        Tuple[int, Optional[SimResult], Optional[str], Optional[dict]]
    ] = []
    for index, point in group:
        t0 = time.perf_counter()
        try:
            result = run_point(point)
        except Exception:  # noqa: BLE001 — surfaced via CampaignError
            out.append((index, None, traceback.format_exc(), None))
        else:
            meta = {"elapsed_seconds": round(time.perf_counter() - t0, 6)}
            split = last_timing()
            if split:
                meta.update(split)
            out.append((index, result, None, meta))
    return out


def grouped_points(
    points: Sequence[CampaignPoint],
) -> List[List[Tuple[int, CampaignPoint]]]:
    """Points bucketed by shared trace, preserving submission order.

    Every execution backend dispatches these groups (never individual
    points across group boundaries), which is what guarantees each
    workload trace is generated exactly once per campaign no matter
    where the points run.
    """
    buckets: Dict[Tuple[str, int], List[Tuple[int, CampaignPoint]]] = {}
    order: List[Tuple[str, int]] = []
    for index, point in enumerate(points):
        key = point.trace_key
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append((index, point))
    return [buckets[key] for key in order]


@dataclass(frozen=True)
class CampaignRun:
    """One executed point and its metrics.

    ``elapsed_seconds`` (and, where the executing end measured it, the
    ``timing`` resolve/simulate split) attribute per-point wall-clock
    cost; both are provenance, not results — excluded from equality so
    a re-run with different timings still matches the serial oracle.
    """

    point: CampaignPoint
    result: SimResult
    elapsed_seconds: Optional[float] = field(default=None, compare=False)
    timing: Optional[Dict[str, float]] = field(default=None, compare=False)


class CampaignResults:
    """Ordered result set of one campaign, with stores and aggregation."""

    def __init__(self, runs: Sequence[CampaignRun]) -> None:
        self.runs = list(runs)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[CampaignRun]:
        return iter(self.runs)

    def __getitem__(self, index) -> CampaignRun:
        return self.runs[index]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def result(self, **match) -> SimResult:
        """The single result whose point matches all given fields.

        >>> # results.result(bench="gcc", scheme="modulo", seed=0)
        """
        hits = [
            run.result
            for run in self.runs
            if all(
                getattr(run.point, name) == value
                for name, value in match.items()
            )
        ]
        if len(hits) != 1:
            raise KeyError(
                f"{len(hits)} results match {match!r} (expected exactly 1)"
            )
        return hits[0]

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------
    def to_records(self) -> List[Dict[str, object]]:
        """Plain-data form: one ``{"point": ..., "result": ...}`` per run.

        Timing provenance (``elapsed_seconds`` / ``timing``) rides as
        sibling keys of ``result``, never inside it — the result dict
        must stay a pure :class:`SimResult` so old readers round-trip.
        """
        records = []
        for run in self.runs:
            record: Dict[str, object] = {
                "point": asdict(run.point),
                "result": asdict(run.result),
            }
            if run.elapsed_seconds is not None:
                record["elapsed_seconds"] = run.elapsed_seconds
            if run.timing:
                record["timing"] = dict(run.timing)
            records.append(record)
        return records

    @classmethod
    def from_records(
        cls, records: Iterable[Dict[str, object]]
    ) -> "CampaignResults":
        """Inverse of :meth:`to_records` (timing keys are optional —
        stores written before they existed load unchanged)."""
        runs = []
        for record in records:
            elapsed = record.get("elapsed_seconds")
            timing = record.get("timing")
            runs.append(
                CampaignRun(
                    point=_point_from_dict(dict(record["point"])),
                    result=_result_from_dict(dict(record["result"])),
                    elapsed_seconds=(
                        float(elapsed) if elapsed is not None else None
                    ),
                    timing=dict(timing) if timing else None,
                )
            )
        return cls(runs)

    def save_json(self, path: str) -> None:
        """Write the result set as a JSON document."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"runs": self.to_records()}, fh, indent=1)

    @classmethod
    def load_json(cls, path: str) -> "CampaignResults":
        """Read a result set written by :meth:`save_json`."""
        with open(path, encoding="utf-8") as fh:
            return cls.from_records(json.load(fh)["runs"])

    def save(self, path: str) -> None:
        """Write the result set, picking the format from the extension.

        ``.json`` and ``.csv`` are supported; anything else raises
        :class:`~repro.errors.ConfigError`.
        """
        if _store_format(path) == "json":
            self.save_json(path)
        else:
            self.save_csv(path)

    @classmethod
    def load(cls, path: str) -> "CampaignResults":
        """Read a result set, picking the format from the extension."""
        if _store_format(path) == "json":
            return cls.load_json(path)
        return cls.load_csv(path)

    def save_csv(self, path: str) -> None:
        """Write one flat CSV row per run (nested fields JSON-encoded).

        Columns are namespaced ``point.*`` / ``result.*`` because the two
        dataclasses share field names (``scheme``).
        """
        point_cols = [f.name for f in fields(CampaignPoint) if f.compare]
        result_cols = [f.name for f in fields(SimResult)]
        header = [f"point.{c}" for c in point_cols] + [
            f"result.{c}" for c in result_cols
        ] + ["elapsed_seconds"]
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            for run in self.runs:
                row = [
                    _encode_point_cell(col, getattr(run.point, col))
                    for col in point_cols
                ]
                row += [
                    _encode_cell(getattr(run.result, col))
                    for col in result_cols
                ]
                row.append(
                    ""
                    if run.elapsed_seconds is None
                    else run.elapsed_seconds
                )
                writer.writerow(row)

    @classmethod
    def load_csv(cls, path: str) -> "CampaignResults":
        """Read a result set written by :meth:`save_csv`."""
        with open(path, newline="", encoding="utf-8") as fh:
            reader = csv.DictReader(fh)
            runs = []
            for row in reader:
                point = {
                    k[len("point."):]: v
                    for k, v in row.items()
                    if k.startswith("point.")
                }
                result = {
                    k[len("result."):]: v
                    for k, v in row.items()
                    if k.startswith("result.")
                }
                elapsed = row.get("elapsed_seconds")
                runs.append(
                    CampaignRun(
                        point=_point_from_dict(
                            {
                                k: _decode_point_cell(k, v)
                                for k, v in point.items()
                            }
                        ),
                        result=_result_from_dict(
                            {
                                k: _decode_result_cell(k, v)
                                for k, v in result.items()
                            }
                        ),
                        elapsed_seconds=float(elapsed) if elapsed else None,
                    )
                )
        return cls(runs)

    # ------------------------------------------------------------------
    # Aggregation over seeds
    # ------------------------------------------------------------------
    def aggregate(self) -> List["AggregateResult"]:
        """Mean/std of the headline metrics over seeds.

        Runs are grouped by everything *except* the seed; each group
        becomes one :class:`AggregateResult`.  Groups of one seed get a
        zero std, so single-seed campaigns aggregate losslessly.
        """
        groups: Dict[Tuple, List[CampaignRun]] = {}
        order: List[Tuple] = []
        for run in self.runs:
            p = run.point
            key = (
                p.bench,
                p.scheme,
                p.machine,
                p.overrides,
                p.n_instructions,
                p.warmup,
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(run)
        out = []
        for key in order:
            runs = groups[key]
            bench, scheme, machine, overrides, n_instructions, warmup = key
            means: Dict[str, float] = {}
            stds: Dict[str, float] = {}
            for metric in AGGREGATE_METRICS:
                values = [getattr(r.result, metric) for r in runs]
                m = sum(values) / len(values)
                means[metric] = m
                stds[metric] = math.sqrt(
                    sum((v - m) ** 2 for v in values) / len(values)
                )
            out.append(
                AggregateResult(
                    bench=bench,
                    scheme=scheme,
                    machine=machine,
                    overrides=overrides,
                    n_seeds=len(runs),
                    seeds=tuple(r.point.seed for r in runs),
                    means=means,
                    stds=stds,
                )
            )
        return out


#: Scalar metrics the seed-aggregation layer summarises.
AGGREGATE_METRICS = (
    "ipc",
    "comms_per_instr",
    "critical_comms_per_instr",
    "avg_replication",
    "branch_accuracy",
    "l1d_miss_rate",
)


@dataclass(frozen=True)
class AggregateResult:
    """Mean/std of one (bench, scheme, machine, overrides) over seeds."""

    bench: str
    scheme: str
    machine: str
    overrides: Tuple[Tuple[str, object], ...]
    n_seeds: int
    seeds: Tuple[int, ...]
    means: Dict[str, float]
    stds: Dict[str, float]

    @property
    def ipc(self) -> float:
        """Mean IPC over seeds."""
        return self.means["ipc"]

    @property
    def ipc_std(self) -> float:
        """IPC standard deviation over seeds."""
        return self.stds["ipc"]


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class Campaign:
    """Executes a grid of points in one pass with shared traces.

    Execution is delegated to a :mod:`repro.dist` backend.  ``backend``
    is a registered backend name (``"serial"``, ``"process"``,
    ``"worker"``, ``"dirqueue"``) or an
    :class:`~repro.dist.ExecutionBackend` instance; ``None`` (the
    default) keeps the historical behaviour — in-process serial for
    ``workers=1``, the process-pool backend for ``workers>1``.  Grouping
    by ``(bench, seed)`` guarantees each workload trace is generated
    exactly once per campaign regardless of the backend — in the parent
    for serial runs, in exactly one worker elsewhere.
    """

    points: Sequence[CampaignPoint]
    workers: int = 1
    backend: Union[str, object, None] = None

    @property
    def effective_workers(self) -> int:
        """Worker processes the campaign will actually use.

        For in-process backends parallelism only pays across distinct
        ``(bench, seed)`` traces — a single-group campaign runs serially
        regardless of ``workers`` (splitting a group would regenerate
        its shared trace per worker).  A backend that declares
        ``splits_groups`` (the warm ``worker`` pool, which preloads the
        trace onto every worker that needs it) is sized by *points*
        instead, so jobs above the group count still help.
        """
        if self.workers <= 1:
            return 1
        if self.backend is not None and getattr(
            self.resolve_backend(), "splits_groups", False
        ):
            return min(self.workers, len(self.points))
        groups = len({p.trace_key for p in self.points})
        if groups <= 1:
            return 1
        return min(self.workers, groups)

    def resolve_backend(self):
        """The :class:`~repro.dist.ExecutionBackend` this campaign uses."""
        from ..dist import ExecutionBackend, backend as make_backend

        if isinstance(self.backend, ExecutionBackend):
            return self.backend
        if self.backend is None:
            return make_backend(
                "process" if self.effective_workers > 1 else "serial"
            )
        return make_backend(self.backend)

    def run(self) -> CampaignResults:
        """Execute every point; raise :class:`CampaignError` on failures.

        The run is the root of a trace: every backend picks the span up
        via :func:`repro.telemetry.tracing.current_span` and propagates
        its context through whatever protocol it speaks, so one trace id
        joins the campaign to each dispatched chunk, worker batch and
        retry.  Backend payload entries are ``(index, result, error)``
        triples, optionally extended with a timing dict — both shapes
        are accepted so old backends (and old service daemons) keep
        working.
        """
        from ..dist import coerce_jobs

        # Normalise before resolve_backend/effective_workers read it, so
        # an integer string works everywhere and a bad value fails here.
        self.workers = coerce_jobs(self.workers, source="workers")
        backend = self.resolve_backend()
        span = tracing.start_span(
            "campaign",
            parent=tracing.current_span(),
            backend=getattr(backend, "name", type(backend).__name__),
            points=len(self.points),
            workers=self.workers,
        )
        _log.info(
            "campaign.start",
            trace_id=span.trace_id,
            backend=span.attrs.get("backend"),
            points=len(self.points),
            workers=self.workers,
        )
        metrics.counter("campaign.points_total").inc(len(self.points))
        try:
            with tracing.activate(span):
                payload = backend.execute(self.points, jobs=self.workers)
        except Exception as err:
            span.end(status="error", error=str(err))
            raise
        results: Dict[int, SimResult] = {}
        meta: Dict[int, dict] = {}
        failures: List[Tuple[int, str]] = []
        for entry in payload:
            index, result, error = entry[0], entry[1], entry[2]
            if error is not None:
                failures.append((index, error))
            else:
                results[index] = result
                if len(entry) > 3 and isinstance(entry[3], dict):
                    meta[index] = entry[3]
        point_seconds = metrics.histogram("campaign.point_seconds")
        simulate_seconds = metrics.histogram("campaign.simulate_seconds")
        resolve_seconds = metrics.histogram("campaign.resolve_seconds")
        for timing in meta.values():
            elapsed = timing.get("elapsed_seconds")
            if elapsed is not None:
                point_seconds.observe(elapsed)
            if timing.get("simulate_seconds") is not None:
                simulate_seconds.observe(timing["simulate_seconds"])
                resolve_seconds.observe(timing.get("resolve_seconds", 0.0))
        if failures:
            failures.sort()
            metrics.counter("campaign.failures_total").inc(len(failures))
            span.end(status="error", error=f"{len(failures)} point(s) failed")
            _log.warning(
                "campaign.failed",
                trace_id=span.trace_id,
                failures=len(failures),
            )
            raise CampaignError(
                [(self.points[i], error) for i, error in failures],
                trace_id=span.trace_id,
            )
        missing = [
            point
            for i, point in enumerate(self.points)
            if i not in results
        ]
        if missing:
            span.end(status="error", error="backend returned no result")
            raise CampaignError(
                [(p, "backend returned no result") for p in missing],
                trace_id=span.trace_id,
            )
        record = span.end()
        _log.info(
            "campaign.done",
            trace_id=span.trace_id,
            duration=record["duration"],
            points=len(self.points),
        )
        return CampaignResults(
            [
                CampaignRun(
                    point,
                    results[i],
                    elapsed_seconds=meta.get(i, {}).get("elapsed_seconds"),
                    timing={
                        k: v
                        for k, v in meta.get(i, {}).items()
                        if k != "elapsed_seconds"
                    } or None,
                )
                for i, point in enumerate(self.points)
            ]
        )


# ----------------------------------------------------------------------
# Incremental campaigns
# ----------------------------------------------------------------------
class IncrementalRun(NamedTuple):
    """Outcome of :func:`run_campaign`: results plus reuse accounting."""

    results: CampaignResults
    n_cached: int
    n_simulated: int


def _store_format(path: str) -> str:
    """``"json"`` or ``"csv"`` from the store path's extension."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".json":
        return "json"
    if ext == ".csv":
        return "csv"
    raise ConfigError(
        f"campaign store {path!r} must end in .json or .csv"
    )


def run_campaign(
    points: Sequence[CampaignPoint],
    workers: int = 1,
    store: Optional[str] = None,
    resume: bool = False,
    backend: Union[str, object, None] = None,
) -> IncrementalRun:
    """Execute *points*, optionally reusing and updating a result store.

    Without *store* this is ``Campaign(points, workers).run()``.  With
    *store* the merged result set is written there afterwards; with
    *resume* as well, points already present in the store are served from
    it and only the missing ones are simulated — the ROADMAP's
    incremental-campaign mode.  Store lookup is by full
    :class:`CampaignPoint` equality, so changing a window size, seed or
    override re-simulates that point rather than reusing a stale result.

    *backend* selects the :mod:`repro.dist` execution backend (a
    registered name or an instance); every backend must produce results
    point-for-point identical to ``backend="serial"``.
    """
    cached: Dict[CampaignPoint, CampaignRun] = {}
    if resume:
        if store is None:
            raise ConfigError("resume requires a --json/--csv store path")
        if os.path.exists(store):
            for run in CampaignResults.load(store):
                cached[run.point] = run
    missing = [p for p in points if p not in cached]
    fresh: Dict[CampaignPoint, CampaignRun] = {}
    if missing:
        for run in Campaign(missing, workers=workers, backend=backend).run():
            fresh[run.point] = run
    results = CampaignResults(
        [fresh.get(p) or cached[p] for p in points]
    )
    if store is not None:
        # The store accumulates: points from earlier runs that are not in
        # this grid stay, so one store can back a growing campaign.
        requested = set(points)
        extra = [
            run for p, run in cached.items() if p not in requested
        ]
        CampaignResults([*results, *extra]).save(store)
    return IncrementalRun(
        results=results,
        n_cached=len(points) - len(missing),
        n_simulated=len(missing),
    )


# ----------------------------------------------------------------------
# (De)serialisation helpers
# ----------------------------------------------------------------------
#: SimResult fields that are tuples (JSON/CSV deliver lists/strings).
_TUPLE_FIELDS = {"balance_distribution", "avg_iq_occupancy", "steered"}
_DICT_FIELDS = {"committed_by_class", "stalls"}
_INT_FIELDS = {
    "cycles",
    "instructions",
    "copies_created",
    "copies_issued",
    "critical_copies",
    "slice_remaps",
}
_STR_FIELDS = {"benchmark", "scheme", "config_name"}


def _encode_cell(value) -> object:
    """CSV cell encoding: scalars as-is, containers as JSON."""
    if isinstance(value, (int, float, str)):
        return value
    return json.dumps(value)


def _encode_point_cell(name: str, value) -> object:
    """CSV cell encoding for a CampaignPoint column.

    Overrides serialise through the spec layer
    (:func:`repro.spec.overrides.overrides_to_jsonable`) so dotted-path
    and legacy flat forms share one wire format with the JSON store and
    the suite data files.
    """
    if name == "overrides":
        return json.dumps(overrides_to_jsonable(value))
    return _encode_cell(value)


def _decode_point_cell(name: str, text: str):
    """Inverse of :func:`_encode_point_cell` (decoding is finished by
    :func:`_point_from_dict`, which re-tuples through the spec layer)."""
    if name == "overrides":
        return json.loads(text)
    return text


def _decode_result_cell(name: str, text: str):
    """Inverse of :func:`_encode_cell` for a SimResult column."""
    if name in _STR_FIELDS:
        return text
    if name in _INT_FIELDS:
        return int(text)
    if name in _TUPLE_FIELDS or name in _DICT_FIELDS:
        return json.loads(text)
    return float(text)


def _point_from_dict(data: Dict[str, object]) -> CampaignPoint:
    """Build a point from JSON/CSV data (re-tupling the overrides)."""
    return CampaignPoint(
        bench=str(data["bench"]),
        scheme=str(data["scheme"]),
        machine=str(data.get("machine", "clustered")),
        overrides=overrides_from_jsonable(data.get("overrides", ())),
        seed=int(data.get("seed", 0)),
        n_instructions=int(data.get("n_instructions", 20000)),
        warmup=int(data.get("warmup", 5000)),
    )


def _result_from_dict(data: Dict[str, object]) -> SimResult:
    """Build a SimResult from JSON/CSV data (re-tupling tuple fields)."""
    for name in _TUPLE_FIELDS:
        if name in data:
            data[name] = tuple(data[name])
    if "stalls" in data:
        data["stalls"] = {k: int(v) for k, v in data["stalls"].items()}
    if "committed_by_class" in data:
        data["committed_by_class"] = {
            k: int(v) for k, v in data["committed_by_class"].items()
        }
    return SimResult(**data)
