"""Analysis harness: metrics, experiments, campaigns, report printers."""

from .campaign import (
    AggregateResult,
    Campaign,
    CampaignError,
    CampaignPoint,
    CampaignResults,
    CampaignRun,
    IncrementalRun,
    apply_override,
    expand_grid,
    run_campaign,
    run_point,
)
from .experiments import (
    FIGURES,
    ExperimentRunner,
    table1_workloads,
    table2_parameters,
)
from .metrics import (
    average_distributions,
    geometric_mean,
    gmean_speedup,
    harmonic_mean,
    hmean_speedup,
    mean,
    percent,
    speedup_map,
)
from .sweeps import Sweep, sweep
from .report import (
    format_balance_histogram,
    format_comm_table,
    format_kv_table,
    format_speedup_table,
    format_value_table,
)

__all__ = [
    "AggregateResult",
    "Campaign",
    "CampaignError",
    "CampaignPoint",
    "CampaignResults",
    "CampaignRun",
    "IncrementalRun",
    "apply_override",
    "expand_grid",
    "run_campaign",
    "run_point",
    "Sweep",
    "sweep",
    "FIGURES",
    "ExperimentRunner",
    "table1_workloads",
    "table2_parameters",
    "average_distributions",
    "geometric_mean",
    "gmean_speedup",
    "harmonic_mean",
    "hmean_speedup",
    "mean",
    "percent",
    "speedup_map",
    "format_balance_histogram",
    "format_comm_table",
    "format_kv_table",
    "format_speedup_table",
    "format_value_table",
]
