"""Experiment harness: one function per table/figure of the paper.

:class:`ExperimentRunner` owns the run parameters (window length, warm-up,
seed) and memoises simulation results, so regenerating all figures costs
one simulation per distinct ``(benchmark, scheme, machine)`` triple — the
figures share their baselines and scheme runs exactly as the paper does.
Simulations execute through the campaign engine (and therefore the
:func:`repro.run` facade), which shares one generated trace per
benchmark across every scheme; set ``workers > 1`` (or
``REPRO_BENCH_JOBS`` for the benchmark harness) to fan benchmark sweeps
out over worker processes.  ``machine`` arguments resolve through the
:mod:`repro.spec.machines` registry, so parametric variants
(``bypass-latency-2``...) plot exactly like the three Table 2 machines.

Every ``figure*`` function returns a plain data structure (dicts keyed by
benchmark) that the report printers and the benchmark harness render; the
aggregate entries use the same mean the paper's figure uses (G-mean for
Figure 3, H-mean elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..pipeline import ProcessorConfig, SimResult
from ..workloads import FIGURE3_ORDER, FIGURE_ORDER
from .campaign import Campaign, CampaignPoint, run_point
from .metrics import (
    average_distributions,
    gmean_speedup,
    hmean_speedup,
    mean,
    speedup_map,
)


@dataclass
class ExperimentRunner:
    """Runs and memoises the simulations behind the paper's figures."""

    n_instructions: int = 20000
    warmup: int = 5000
    seed: int = 0
    benchmarks: Tuple[str, ...] = FIGURE_ORDER
    workers: int = 1
    _cache: Dict[Tuple[str, str, str], SimResult] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------
    def _point(self, bench: str, scheme: str, machine: str) -> CampaignPoint:
        return CampaignPoint(
            bench=bench,
            scheme=scheme,
            machine=machine,
            seed=self.seed,
            n_instructions=self.n_instructions,
            warmup=self.warmup,
        )

    def run(
        self, bench: str, scheme: str, machine: str = "clustered"
    ) -> SimResult:
        """Simulate (or fetch from cache) one configuration.

        *machine* is any name the machine registry resolves.
        """
        key = (bench, scheme, machine)
        result = self._cache.get(key)
        if result is None:
            result = run_point(self._point(bench, scheme, machine))
            self._cache[key] = result
        return result

    def base(self, bench: str) -> SimResult:
        """The conventional-machine run speed-ups are measured against."""
        return self.run(bench, "naive", "baseline")

    def sweep(
        self,
        scheme: str,
        machine: str = "clustered",
        benchmarks: Optional[Tuple[str, ...]] = None,
    ) -> Dict[str, SimResult]:
        """Run one scheme over a benchmark list (one campaign batch).

        Uncached benchmarks are executed together through the campaign
        engine, so with ``workers > 1`` a figure's benchmark sweep runs
        in parallel while still sharing one trace per benchmark.
        """
        benches = benchmarks or self.benchmarks
        missing = [b for b in benches if (b, scheme, machine) not in self._cache]
        if missing:
            points = [self._point(b, scheme, machine) for b in missing]
            for run in Campaign(points, workers=self.workers).run():
                self._cache[(run.point.bench, scheme, machine)] = run.result
        return {b: self._cache[(b, scheme, machine)] for b in benches}

    def base_sweep(
        self, benchmarks: Optional[Tuple[str, ...]] = None
    ) -> Dict[str, SimResult]:
        """Baseline runs for a benchmark list."""
        benches = benchmarks or self.benchmarks
        return {b: self.base(b) for b in benches}

    def speedups(
        self,
        scheme: str,
        machine: str = "clustered",
        benchmarks: Optional[Tuple[str, ...]] = None,
    ) -> Dict[str, float]:
        """Per-benchmark speed-ups of *scheme* over the base machine."""
        benches = benchmarks or self.benchmarks
        return speedup_map(
            self.sweep(scheme, machine, benches), self.base_sweep(benches)
        )


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1_workloads() -> List[Dict[str, str]]:
    """Table 1: the benchmark catalogue (names and reference inputs)."""
    from ..workloads import SPECINT95

    return [
        {
            "benchmark": name,
            "input": SPECINT95[name].input_name,
            "description": SPECINT95[name].description,
        }
        for name in FIGURE_ORDER
    ]


def table2_parameters() -> Dict[str, str]:
    """Table 2: the machine parameters actually configured."""
    config = ProcessorConfig.default()
    c0, c1 = config.clusters
    return {
        "fetch width": f"{config.fetch_width} instructions",
        "decode/rename width": f"{config.decode_width} instructions",
        "retire width": f"{config.retire_width} instructions",
        "max in-flight": str(config.max_in_flight),
        "instruction queues": f"{c0.iq_size} + {c1.iq_size}",
        "issue width": f"{c0.issue_width} + {c1.issue_width}",
        "cluster 0 FUs": f"{c0.n_simple_alu} intALU + 1 int mul/div",
        "cluster 1 FUs": (
            f"{c1.n_simple_alu} intALU + {c1.n_fp_alu} fpALU + 1 fp mul/div"
        ),
        "physical registers": f"{c0.phys_regs} + {c1.phys_regs}",
        "communications": (
            f"{config.bypass_ports}/cycle each way, "
            f"{config.bypass_latency}-cycle latency"
        ),
        "L1 I-cache": (
            f"{config.l1i.size_kb}KB {config.l1i.assoc}-way "
            f"{config.l1i.line_bytes}B lines"
        ),
        "L1 D-cache": (
            f"{config.l1d.size_kb}KB {config.l1d.assoc}-way "
            f"{config.l1d.line_bytes}B lines, {config.dcache_ports} ports"
        ),
        "L2 cache": (
            f"{config.l2.size_kb}KB {config.l2.assoc}-way "
            f"{config.l2.line_bytes}B lines"
        ),
    }


# ----------------------------------------------------------------------
# Figures
# ----------------------------------------------------------------------
def figure3_static_vs_dynamic(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 3: static partitioning vs dynamic LdSt slice steering."""
    benches = FIGURE3_ORDER
    static = runner.speedups("static-ldst", benchmarks=benches)
    dynamic = runner.speedups("ldst-slice", benchmarks=benches)
    return {
        "benchmarks": list(benches),
        "static": static,
        "dynamic": dynamic,
        "static_gmean": gmean_speedup(list(static.values())),
        "dynamic_gmean": gmean_speedup(list(dynamic.values())),
    }


def figure4_slice_steering(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 4: LdSt slice vs Br slice steering speed-ups."""
    ldst = runner.speedups("ldst-slice")
    br = runner.speedups("br-slice")
    return {
        "benchmarks": list(runner.benchmarks),
        "ldst": ldst,
        "br": br,
        "ldst_hmean": hmean_speedup(list(ldst.values())),
        "br_hmean": hmean_speedup(list(br.values())),
    }


def figure5_slice_comms(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 5: communications per instruction, critical split."""
    out: Dict[str, object] = {"benchmarks": list(runner.benchmarks)}
    for scheme, key in (("ldst-slice", "ldst"), ("br-slice", "br")):
        results = runner.sweep(scheme)
        out[key] = {
            b: {
                "critical": r.critical_comms_per_instr,
                "noncritical": r.noncritical_comms_per_instr,
                "total": r.comms_per_instr,
            }
            for b, r in results.items()
        }
        out[f"{key}_mean_total"] = mean(
            [r.comms_per_instr for r in results.values()]
        )
        out[f"{key}_mean_critical"] = mean(
            [r.critical_comms_per_instr for r in results.values()]
        )
    return out


def _average_balance(results: Dict[str, SimResult]) -> tuple:
    return average_distributions(
        [r.balance_distribution for r in results.values()]
    )


def figure6_slice_balance_hist(runner: ExperimentRunner) -> Dict[str, tuple]:
    """Figure 6: ready-count-difference distribution for slice steering."""
    return {
        "ldst": _average_balance(runner.sweep("ldst-slice")),
        "br": _average_balance(runner.sweep("br-slice")),
    }


def figure7_nonslice_balance(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 7: non-slice balance steering vs plain slice steering."""
    data = {
        "benchmarks": list(runner.benchmarks),
        "ldst-slice": runner.speedups("ldst-slice"),
        "br-slice": runner.speedups("br-slice"),
        "ldst-nonslice": runner.speedups("ldst-nonslice-balance"),
        "br-nonslice": runner.speedups("br-nonslice-balance"),
    }
    for key in (
        "ldst-slice",
        "br-slice",
        "ldst-nonslice",
        "br-nonslice",
    ):
        data[f"{key}_hmean"] = hmean_speedup(list(data[key].values()))
    return data


def figure8_nonslice_comms(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 8: average communications for the four slice schemes."""
    out: Dict[str, object] = {}
    for scheme, key in (
        ("ldst-slice", "ldst-slice"),
        ("br-slice", "br-slice"),
        ("ldst-nonslice-balance", "ldst-nonslice"),
        ("br-nonslice-balance", "br-nonslice"),
    ):
        results = runner.sweep(scheme)
        out[key] = {
            "critical": mean(
                [r.critical_comms_per_instr for r in results.values()]
            ),
            "noncritical": mean(
                [r.noncritical_comms_per_instr for r in results.values()]
            ),
            "total": mean([r.comms_per_instr for r in results.values()]),
        }
    return out


def figure9_nonslice_hist(runner: ExperimentRunner) -> Dict[str, tuple]:
    """Figure 9: balance distribution for non-slice balance steering."""
    return {
        "ldst": _average_balance(runner.sweep("ldst-nonslice-balance")),
        "br": _average_balance(runner.sweep("br-nonslice-balance")),
    }


def figure11_slice_balance(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 11: slice balance steering speed-ups."""
    ldst = runner.speedups("ldst-slice-balance")
    br = runner.speedups("br-slice-balance")
    return {
        "benchmarks": list(runner.benchmarks),
        "ldst": ldst,
        "br": br,
        "ldst_hmean": hmean_speedup(list(ldst.values())),
        "br_hmean": hmean_speedup(list(br.values())),
        "ldst_mean_comms": mean(
            [r.comms_per_instr for r in runner.sweep("ldst-slice-balance").values()]
        ),
        "br_mean_comms": mean(
            [r.comms_per_instr for r in runner.sweep("br-slice-balance").values()]
        ),
    }


def figure12_balance_hist(runner: ExperimentRunner) -> Dict[str, tuple]:
    """Figure 12: modulo vs slice balance steering distributions."""
    return {
        "modulo": _average_balance(runner.sweep("modulo")),
        "ldst": _average_balance(runner.sweep("ldst-slice-balance")),
        "br": _average_balance(runner.sweep("br-slice-balance")),
    }


def figure13_priority(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 13: priority slice balance steering speed-ups."""
    ldst = runner.speedups("ldst-priority")
    br = runner.speedups("br-priority")
    ldst_res = runner.sweep("ldst-priority")
    br_res = runner.sweep("br-priority")
    plain_ldst = runner.sweep("ldst-slice-balance")
    plain_br = runner.sweep("br-slice-balance")
    return {
        "benchmarks": list(runner.benchmarks),
        "ldst": ldst,
        "br": br,
        "ldst_hmean": hmean_speedup(list(ldst.values())),
        "br_hmean": hmean_speedup(list(br.values())),
        # §3.7 claims the gain comes from fewer *critical* communications.
        "ldst_critical": mean(
            [r.critical_comms_per_instr for r in ldst_res.values()]
        ),
        "br_critical": mean(
            [r.critical_comms_per_instr for r in br_res.values()]
        ),
        "ldst_critical_plain": mean(
            [r.critical_comms_per_instr for r in plain_ldst.values()]
        ),
        "br_critical_plain": mean(
            [r.critical_comms_per_instr for r in plain_br.values()]
        ),
    }


def figure14_general_balance(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 14: modulo vs general balance vs the 16-way upper bound."""
    modulo = runner.speedups("modulo")
    general = runner.speedups("general-balance")
    upper = runner.speedups("naive", machine="upper-bound")
    return {
        "benchmarks": list(runner.benchmarks),
        "modulo": modulo,
        "general": general,
        "upper_bound": upper,
        "modulo_hmean": hmean_speedup(list(modulo.values())),
        "general_hmean": hmean_speedup(list(general.values())),
        "upper_bound_hmean": hmean_speedup(list(upper.values())),
    }


def figure15_replication(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 15: logical registers replicated in both clusters."""
    results = runner.sweep("general-balance")
    replication = {b: r.avg_replication for b, r in results.items()}
    return {
        "benchmarks": list(runner.benchmarks),
        "replication": replication,
        "hmean": mean(list(replication.values())),
    }


def figure16_fifo(runner: ExperimentRunner) -> Dict[str, object]:
    """Figure 16: FIFO-based steering vs general balance steering."""
    fifo = runner.speedups("fifo")
    general = runner.speedups("general-balance")
    fifo_res = runner.sweep("fifo")
    gen_res = runner.sweep("general-balance")
    return {
        "benchmarks": list(runner.benchmarks),
        "fifo": fifo,
        "general": general,
        "fifo_hmean": hmean_speedup(list(fifo.values())),
        "general_hmean": hmean_speedup(list(general.values())),
        # §3.9: 0.162 vs 0.042 communications per instruction.
        "fifo_comms": mean([r.comms_per_instr for r in fifo_res.values()]),
        "general_comms": mean(
            [r.comms_per_instr for r in gen_res.values()]
        ),
    }


#: All figure functions, keyed the way the CLI exposes them.
FIGURES = {
    "fig3": figure3_static_vs_dynamic,
    "fig4": figure4_slice_steering,
    "fig5": figure5_slice_comms,
    "fig6": figure6_slice_balance_hist,
    "fig7": figure7_nonslice_balance,
    "fig8": figure8_nonslice_comms,
    "fig9": figure9_nonslice_hist,
    "fig11": figure11_slice_balance,
    "fig12": figure12_balance_hist,
    "fig13": figure13_priority,
    "fig14": figure14_general_balance,
    "fig15": figure15_replication,
    "fig16": figure16_fifo,
}
