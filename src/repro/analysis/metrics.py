"""Aggregate metrics used by the paper's figures.

The paper reports geometric means in Figure 3 (to match Sastry et al.)
and harmonic means elsewhere; both operate on *speed-ups* expressed as
fractions (+0.36 for a 36% improvement) but are computed over the
underlying performance ratios, so the helpers here take care of the
``1 +`` shifting.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from ..errors import ConfigError


def geometric_mean(ratios: Sequence[float]) -> float:
    """Geometric mean of positive ratios."""
    if not ratios:
        raise ConfigError("geometric mean of an empty sequence")
    if any(r <= 0 for r in ratios):
        raise ConfigError("geometric mean requires positive ratios")
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def harmonic_mean(ratios: Sequence[float]) -> float:
    """Harmonic mean of positive ratios."""
    if not ratios:
        raise ConfigError("harmonic mean of an empty sequence")
    if any(r <= 0 for r in ratios):
        raise ConfigError("harmonic mean requires positive ratios")
    return len(ratios) / sum(1.0 / r for r in ratios)


def gmean_speedup(speedups: Sequence[float]) -> float:
    """Geometric-mean speed-up of fractional speed-ups (Figure 3 style)."""
    return geometric_mean([1.0 + s for s in speedups]) - 1.0


def hmean_speedup(speedups: Sequence[float]) -> float:
    """Harmonic-mean speed-up of fractional speed-ups (Figures 4-16)."""
    return harmonic_mean([1.0 + s for s in speedups]) - 1.0


def mean(values: Sequence[float]) -> float:
    """Plain arithmetic mean."""
    if not values:
        raise ConfigError("mean of an empty sequence")
    return sum(values) / len(values)


def average_distributions(
    distributions: Iterable[Sequence[float]],
) -> tuple:
    """Pointwise average of several probability distributions.

    Used for the SpecInt95-average balance histograms (Figures 6/9/12).
    """
    dists = [tuple(d) for d in distributions]
    if not dists:
        raise ConfigError("no distributions to average")
    length = len(dists[0])
    if any(len(d) != length for d in dists):
        raise ConfigError("distributions must have equal length")
    n = len(dists)
    return tuple(sum(d[i] for d in dists) / n for i in range(length))


def percent(value: float) -> str:
    """Format a fraction as a percentage string (``0.36 -> '+36.0%'``)."""
    return f"{value:+.1%}"


def speedup_map(
    results: Dict[str, "object"], base: Dict[str, "object"]
) -> Dict[str, float]:
    """Per-benchmark speed-ups of *results* over *base* (same keys)."""
    missing = set(results) ^ set(base)
    if missing:
        raise ConfigError(f"benchmark sets differ: {sorted(missing)}")
    return {
        bench: results[bench].ipc / base[bench].ipc - 1.0
        for bench in results
    }
