"""Plain-text rendering of the experiment results.

The printers reproduce the *rows/series* of the paper's figures as ASCII
tables and bar charts, suitable for terminal output from the CLI, the
examples, and the benchmark harness.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from ..pipeline.stats import BALANCE_RANGE


def format_speedup_table(
    title: str,
    benchmarks: Sequence[str],
    series: Mapping[str, Mapping[str, float]],
    means: Mapping[str, float],
    mean_label: str = "H-mean",
) -> str:
    """Render per-benchmark speed-up columns plus the aggregate row.

    *series* maps a column label to ``{benchmark: fractional speedup}``;
    *means* maps the same labels to their aggregate.
    """
    labels = list(series)
    width = max(12, *(len(label) for label in labels)) + 2
    lines = [title, "-" * len(title)]
    header = f"{'benchmark':>10s}" + "".join(
        f"{label:>{width}s}" for label in labels
    )
    lines.append(header)
    for bench in benchmarks:
        row = f"{bench:>10s}"
        for label in labels:
            row += f"{series[label][bench]:>+{width}.1%}"
        lines.append(row)
    row = f"{mean_label:>10s}"
    for label in labels:
        row += f"{means[label]:>+{width}.1%}"
    lines.append(row)
    return "\n".join(lines)


def format_comm_table(
    title: str,
    rows: Mapping[str, Mapping[str, float]],
) -> str:
    """Render communications-per-instruction rows (critical split)."""
    lines = [title, "-" * len(title)]
    lines.append(
        f"{'scheme':>22s}{'critical':>12s}{'non-crit':>12s}{'total':>12s}"
    )
    for label, row in rows.items():
        lines.append(
            f"{label:>22s}{row['critical']:>12.3f}"
            f"{row['noncritical']:>12.3f}{row['total']:>12.3f}"
        )
    return "\n".join(lines)


def format_balance_histogram(
    title: str,
    distributions: Mapping[str, Tuple[float, ...]],
    max_width: int = 40,
) -> str:
    """Render the ready-count-difference distributions as ASCII bars.

    The x-axis is ``#ready FP - #ready INT`` clamped to ±10 like the
    paper's Figures 6/9/12; each series gets its own column of bars.
    """
    labels = list(distributions)
    lines = [title, "-" * len(title)]
    peak = max(
        max(dist) for dist in distributions.values()
    ) or 1.0
    header = f"{'diff':>5s}" + "".join(f"  {label:<{max_width}s}" for label in labels)
    lines.append(header.rstrip())
    for i in range(2 * BALANCE_RANGE + 1):
        diff = i - BALANCE_RANGE
        row = f"{diff:>+5d}"
        for label in labels:
            frac = distributions[label][i]
            bar = "#" * int(round(frac / peak * max_width))
            row += f"  {bar:<{max_width}s}"
        lines.append(row.rstrip())
    return "\n".join(lines)


def format_value_table(
    title: str,
    benchmarks: Sequence[str],
    values: Mapping[str, float],
    unit: str,
    mean_value: float,
    mean_label: str = "mean",
) -> str:
    """Render one scalar per benchmark (e.g. Figure 15's replication)."""
    lines = [title, "-" * len(title)]
    for bench in benchmarks:
        lines.append(f"{bench:>10s}  {values[bench]:6.2f} {unit}")
    lines.append(f"{mean_label:>10s}  {mean_value:6.2f} {unit}")
    return "\n".join(lines)


def format_kv_table(title: str, mapping: Mapping[str, str]) -> str:
    """Render a two-column parameter table (Table 2)."""
    lines = [title, "-" * len(title)]
    width = max(len(k) for k in mapping)
    for key, value in mapping.items():
        lines.append(f"{key:<{width}s}  {value}")
    return "\n".join(lines)
