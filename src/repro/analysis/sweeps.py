"""Generic parameter sweeps over the simulator.

A :class:`Sweep` varies one machine parameter (or a cluster parameter)
across a list of values and reports the speed-up of a steering scheme
over the base machine at each point.  This is the machinery behind the
ablation benches and the ``repro-sim sweep`` command; it is exposed in
the public API so studies beyond the paper's figures are one-liners:

>>> from repro.analysis.sweeps import Sweep
>>> sweep = Sweep("bypass_ports", [1, 2, 3], bench="gcc",
...               n_instructions=2000, warmup=500)
>>> points = sweep.run()
>>> sorted(points) == [1, 2, 3]
True
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..pipeline import ProcessorConfig, simulate, simulate_baseline

#: Parameters that live on the per-cluster configuration (applied to
#: both clusters symmetrically).
_CLUSTER_PARAMS = frozenset(
    {"iq_size", "issue_width", "n_simple_alu", "phys_regs"}
)


def _apply(config: ProcessorConfig, param: str, value) -> ProcessorConfig:
    """Return *config* with *param* set to *value*."""
    if param in _CLUSTER_PARAMS:
        return replace(
            config,
            clusters=(
                replace(config.clusters[0], **{param: value}),
                replace(config.clusters[1], **{param: value}),
            ),
        )
    if not hasattr(config, param):
        raise ConfigError(f"unknown machine parameter {param!r}")
    return replace(config, **{param: value})


@dataclass
class Sweep:
    """One-dimensional machine-parameter sweep.

    Parameters
    ----------
    param:
        A :class:`ProcessorConfig` field name, or one of the symmetric
        per-cluster fields (``iq_size``, ``issue_width``,
        ``n_simple_alu``, ``phys_regs``).
    values:
        The points to evaluate.
    bench / scheme:
        What to simulate at each point.
    """

    param: str
    values: Sequence
    bench: str = "gcc"
    scheme: str = "general-balance"
    n_instructions: int = 8000
    warmup: int = 3000
    seed: int = 0
    _base_ipc: Optional[float] = field(default=None, repr=False)

    def base_ipc(self) -> float:
        """IPC of the conventional machine (shared across points)."""
        if self._base_ipc is None:
            self._base_ipc = simulate_baseline(
                self.bench,
                n_instructions=self.n_instructions,
                warmup=self.warmup,
                seed=self.seed,
            ).ipc
        return self._base_ipc

    def run(self) -> Dict[object, float]:
        """Speed-up over the base machine at every sweep point."""
        base = self.base_ipc()
        points: Dict[object, float] = {}
        for value in self.values:
            config = _apply(ProcessorConfig.default(), self.param, value)
            result = simulate(
                self.bench,
                steering=self.scheme,
                config=config,
                n_instructions=self.n_instructions,
                warmup=self.warmup,
                seed=self.seed,
            )
            points[value] = result.ipc / base - 1.0
        return points

    def format(self, points: Optional[Dict[object, float]] = None) -> str:
        """ASCII rendering of the sweep."""
        points = points if points is not None else self.run()
        lines = [
            f"sweep of {self.param} ({self.bench}, {self.scheme})",
            "-" * 48,
        ]
        peak = max(abs(s) for s in points.values()) or 1.0
        for value, speedup in points.items():
            bar = "#" * int(round(abs(speedup) / peak * 30))
            lines.append(f"{value!s:>8s}  {speedup:+7.1%}  {bar}")
        return "\n".join(lines)


def sweep(param: str, values: Sequence, **kwargs) -> Dict[object, float]:
    """Functional shorthand: ``sweep("bypass_ports", [1, 2, 3])``."""
    return Sweep(param, values, **kwargs).run()
