"""Generic parameter sweeps over the simulator.

A :class:`Sweep` varies one machine parameter — any dotted override
path (``clusters.0.iq_size``, ``l1d.size_kb``) or flat parameter name —
across a list of values and reports the speed-up of a steering scheme
over the base machine at each point.  This is the machinery behind the
ablation benches and the ``repro-sim sweep`` command; it is exposed in
the public API so studies beyond the paper's figures are one-liners:

>>> from repro.analysis.sweeps import Sweep
>>> sweep = Sweep("bypass_ports", [1, 2, 3], bench="gcc",
...               n_instructions=2000, warmup=500)
>>> points = sweep.run()
>>> sorted(points) == [1, 2, 3]
True

Sweeps execute through the campaign engine: all points of a sweep
target one benchmark and seed, so they form a single shared-trace
group — the workload trace is generated once and replayed at every
sweep point, and execution is always serial (parallelism only pays
across distinct (bench, seed) traces; use :class:`Campaign` directly
for multi-benchmark grids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..pipeline import simulate_baseline
from ..spec.machines import machine_config
from ..spec.overrides import apply_override
from .campaign import Campaign, CampaignPoint

#: Backwards-compatible alias; the authoritative implementation moved to
#: :mod:`repro.spec.overrides` so sweeps, campaigns and specs share it.
_apply = apply_override


@dataclass
class Sweep:
    """One-dimensional machine-parameter sweep.

    Parameters
    ----------
    param:
        A dotted override path (``clusters.0.iq_size``, ``l1d.size_kb``,
        ``bypass_latency``), a :class:`ProcessorConfig` field name, or
        one of the symmetric per-cluster fields (``iq_size``,
        ``issue_width``, ``n_simple_alu``, ``phys_regs``).
    values:
        The points to evaluate.
    bench / scheme / machine:
        What to simulate at each point; *machine* is any registered
        machine name (see :mod:`repro.spec.machines`).
    """

    param: str
    values: Sequence
    bench: str = "gcc"
    scheme: str = "general-balance"
    machine: str = "clustered"
    n_instructions: int = 8000
    warmup: int = 3000
    seed: int = 0
    _base_ipc: Optional[float] = field(default=None, repr=False)

    def base_ipc(self) -> float:
        """IPC of the conventional machine (shared across points)."""
        if self._base_ipc is None:
            self._base_ipc = simulate_baseline(
                self.bench,
                n_instructions=self.n_instructions,
                warmup=self.warmup,
                seed=self.seed,
            ).ipc
        return self._base_ipc

    def campaign_points(self) -> list:
        """The sweep expressed as campaign points (validates the param)."""
        # Validate eagerly so an unknown parameter raises ConfigError
        # here, not from inside a worker process.
        base = machine_config(self.machine)
        for value in self.values:
            apply_override(base, self.param, value)
        return [
            CampaignPoint(
                bench=self.bench,
                scheme=self.scheme,
                machine=self.machine,
                overrides=((self.param, value),),
                seed=self.seed,
                n_instructions=self.n_instructions,
                warmup=self.warmup,
            )
            for value in self.values
        ]

    def run(self) -> Dict[object, float]:
        """Speed-up over the base machine at every sweep point."""
        base = self.base_ipc()
        results = Campaign(self.campaign_points()).run()
        return {
            value: run.result.ipc / base - 1.0
            for value, run in zip(self.values, results)
        }

    def format(self, points: Optional[Dict[object, float]] = None) -> str:
        """ASCII rendering of the sweep."""
        points = points if points is not None else self.run()
        lines = [
            f"sweep of {self.param} ({self.bench}, {self.scheme})",
            "-" * 48,
        ]
        peak = max(abs(s) for s in points.values()) or 1.0
        for value, speedup in points.items():
            bar = "#" * int(round(abs(speedup) / peak * 30))
            lines.append(f"{value!s:>8s}  {speedup:+7.1%}  {bar}")
        return "\n".join(lines)


def sweep(param: str, values: Sequence, **kwargs) -> Dict[object, float]:
    """Functional shorthand: ``sweep("bypass_ports", [1, 2, 3])``."""
    return Sweep(param, values, **kwargs).run()
