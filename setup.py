"""Legacy setup shim.

The execution environment has no `wheel` package, so PEP 517 editable
installs fail; `pip install -e . --no-build-isolation` falls back to this
setup.py via --no-use-pep517, and `python setup.py develop` works too.
"""

from setuptools import setup

setup()
