"""Unit tests for the columnar trace representation and steering memo.

``TraceColumns`` is the structure-of-arrays core the columnar pipeline
fetches from; these tests pin its round-trip fidelity against the
classic ``TraceRecord`` form, the ``.rtrace`` array decode path, the
frozen-length contract, and the slice-steering memoisation counters it
enabled (surfaced through ``repro.telemetry.metrics``).
"""

import pytest

from repro.core.slices import SliceFlagTable
from repro.core.steering import make_steering
from repro.errors import ScenarioError
from repro.pipeline import Processor, ProcessorConfig
from repro.workloads import TraceColumns, workload
from repro.workloads.columns import CONDITIONAL, CONTROL, MEMORY, TAKEN

N_RECORDS = 600


@pytest.fixture(scope="module")
def shared():
    trace = workload("gcc", seed=0).shared_trace()
    trace.record(N_RECORDS - 1)  # materialise at least N_RECORDS
    return trace


class TestRoundTrip:
    def test_to_records_matches_backing_trace(self, shared):
        cols = shared.columns()
        cols.sync()
        records = shared._records
        back = cols.to_records()
        assert len(back) >= N_RECORDS
        for rec, orig in zip(back, records):
            assert rec == orig

    def test_from_arrays_rebuilds_identical_columns(self, shared):
        cols = shared.columns()
        cols.sync()
        n = min(len(cols), N_RECORDS)
        taken = [(f & TAKEN) != 0 for f in cols.flags[:n]]
        rebuilt = TraceColumns.from_arrays(
            shared.program, cols.pcs[:n], taken, cols.mem_addrs[:n]
        )
        assert rebuilt.pcs == cols.pcs[:n]
        assert rebuilt.flags == cols.flags[:n]
        assert rebuilt.mem_addrs == cols.mem_addrs[:n]
        assert rebuilt.to_records() == cols.to_records()[:n]

    def test_flags_encode_instruction_kind(self, shared):
        cols = shared.columns()
        cols.sync()
        for inst, flags in zip(cols.insts, cols.flags):
            assert bool(flags & CONTROL) == inst.is_control
            assert bool(flags & CONDITIONAL) == inst.is_conditional
            assert bool(flags & MEMORY) == inst.is_memory

    def test_line_ids_match_pcs(self, shared):
        cols = shared.columns()
        cols.sync()
        line_bytes = 32
        assert cols.line_ids(line_bytes) == [
            pc // line_bytes for pc in cols.pcs
        ]

    def test_fixed_length_columns_refuse_extension(self, shared):
        cols = shared.columns()
        cols.sync()
        n = len(cols)
        taken = [(f & TAKEN) != 0 for f in cols.flags]
        fixed = TraceColumns.from_arrays(
            shared.program, cols.pcs, taken, cols.mem_addrs
        )
        fixed.require(n)  # exactly what is there: fine
        with pytest.raises(ScenarioError):
            fixed.require(n + 1)


class TestSteeringMemo:
    def test_flag_table_version_counts_new_flags_only(self):
        flags = SliceFlagTable("ldst")
        assert flags.version == 0

        class _Dyn:
            def __init__(self, pc, cls):
                self.pc = pc
                self.cls = cls
                self.inst = self

        from repro.isa import InstrClass

        class _Parents:
            def parents_of(self, dyn):
                return ()

        load = _Dyn(0x100, InstrClass.LOAD)
        flags.observe(load, _Parents())
        assert flags.version == 1
        # Re-observing the same pc adds no flag: version must not move
        # (a moving version would needlessly flush the steering memos).
        flags.observe(load, _Parents())
        assert flags.version == 1

    def test_memo_counters_surface_in_metrics(self):
        from repro.telemetry import metrics

        hits0 = metrics.counter("steering.memo.hits").value
        misses0 = metrics.counter("steering.memo.misses").value
        processor = Processor(
            workload("gcc", seed=0),
            ProcessorConfig.default(),
            make_steering("ldst-slice"),
            dispatch="columnar",
        )
        processor.run(2000, warmup=200)
        hits = metrics.counter("steering.memo.hits").value - hits0
        misses = metrics.counter("steering.memo.misses").value - misses0
        assert misses > 0  # first sight of each pc misses
        assert hits > 0  # loops revisit pcs and hit the memo
        # Every steerable instruction consulted the memo exactly once.
        assert hits + misses > 0

    def test_memo_not_consulted_by_unmemoised_scheme(self):
        from repro.telemetry import metrics

        hits0 = metrics.counter("steering.memo.hits").value
        misses0 = metrics.counter("steering.memo.misses").value
        processor = Processor(
            workload("gcc", seed=0),
            ProcessorConfig.default(),
            make_steering("general-balance"),
            dispatch="columnar",
        )
        processor.run(1000, warmup=100)
        assert metrics.counter("steering.memo.hits").value == hits0
        assert metrics.counter("steering.memo.misses").value == misses0
