"""Tests for repro.dist: registry, worker protocol, fault tolerance."""

import io
import json
import sys

import pytest

from repro import dist
from repro.analysis.campaign import (
    Campaign,
    CampaignError,
    CampaignPoint,
    expand_grid,
    run_campaign,
    run_point,
    _result_from_dict,
)
from repro.errors import ConfigError, DistError

#: Tiny windows: these tests exercise dispatch, not timing.
N = 400
W = 120


@pytest.fixture(scope="module")
def points():
    return expand_grid(
        ["gcc", "li"], ["modulo", "general-balance"],
        n_instructions=N, warmup=W,
    )


@pytest.fixture(scope="module")
def serial(points):
    return Campaign(points, backend="serial").run()


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = dist.available_backends()
        for name in ("serial", "process", "worker", "dirqueue"):
            assert name in names

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ConfigError, match="serial"):
            dist.backend("quantum-annealer")

    def test_descriptions_exist(self):
        for name in dist.available_backends():
            assert dist.backend_description(name)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            dist.register_backend(
                "serial", dist.SerialBackend, "duplicate"
            )

    def test_non_string_backend_name_rejected(self):
        with pytest.raises(ConfigError):
            dist.backend(123)

    def test_campaign_accepts_backend_instance(self, points, serial):
        results = Campaign(points, backend=dist.SerialBackend()).run()
        assert [r.result for r in results] == [r.result for r in serial]


class TestJobsValidation:
    def test_integers_and_integer_strings_pass(self):
        assert dist.coerce_jobs(4) == 4
        assert dist.coerce_jobs("4") == 4

    @pytest.mark.parametrize("bad", ["lots", "", "2.5", 0, -2, 2.5, True, None])
    def test_bad_values_raise_config_error(self, bad):
        with pytest.raises(ConfigError, match="positive integer"):
            dist.coerce_jobs(bad)

    def test_error_names_the_source(self):
        with pytest.raises(ConfigError, match="REPRO_BENCH_JOBS"):
            dist.coerce_jobs(
                "many", source="environment variable REPRO_BENCH_JOBS"
            )

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_JOBS", "3")
        assert dist.jobs_from_env("REPRO_TEST_JOBS") == 3
        monkeypatch.delenv("REPRO_TEST_JOBS")
        assert dist.jobs_from_env("REPRO_TEST_JOBS", default=2) == 2
        monkeypatch.setenv("REPRO_TEST_JOBS", "zero")
        with pytest.raises(ConfigError, match="REPRO_TEST_JOBS"):
            dist.jobs_from_env("REPRO_TEST_JOBS")

    def test_campaign_rejects_non_positive_workers(self, points):
        with pytest.raises(ConfigError, match="positive integer"):
            Campaign(points, workers=0).run()

    def test_campaign_accepts_integer_string_workers(self, points, serial):
        """An env-sourced "2" must work end to end, not TypeError in
        effective_workers after passing validation."""
        results = Campaign(points, workers="2").run()
        assert [r.result for r in results] == [r.result for r in serial]

    def test_run_campaign_rejects_bad_workers(self, points):
        with pytest.raises(ConfigError, match="positive integer"):
            run_campaign(points, workers=-1)


def _serve(*lines):
    """Run the worker loop over scripted input; return the replies."""
    stdout = io.StringIO()
    dist.serve_stdio(
        io.StringIO("".join(line + "\n" for line in lines)), stdout
    )
    return [json.loads(line) for line in stdout.getvalue().splitlines()]


class TestWorkerProtocol:
    def test_ping(self):
        (reply,) = _serve(json.dumps({"id": 1, "op": "ping"}))
        assert reply == {
            "id": 1, "ok": True, "protocol": dist.PROTOCOL_VERSION,
        }

    def test_run_request_matches_direct_execution(self):
        point = CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W)
        (reply,) = _serve(
            json.dumps(
                {"id": 7, "op": "run", "spec": point.spec().to_dict()}
            )
        )
        assert reply["ok"] and reply["id"] == 7
        assert _result_from_dict(dict(reply["result"])) == run_point(point)

    def test_malformed_json_gets_error_reply_and_serving_continues(self):
        replies = _serve("{not json", json.dumps({"id": 2, "op": "ping"}))
        assert len(replies) == 2
        assert replies[0]["ok"] is False and "error" in replies[0]
        assert replies[1] == {
            "id": 2, "ok": True, "protocol": dist.PROTOCOL_VERSION,
        }

    def test_unknown_op_and_missing_spec_are_errors(self):
        replies = _serve(
            json.dumps({"id": 1, "op": "teleport"}),
            json.dumps({"id": 2, "op": "run"}),
            json.dumps([1, 2, 3]),
        )
        assert [r["ok"] for r in replies] == [False, False, False]
        assert "teleport" in replies[0]["error"]
        assert "spec" in replies[1]["error"]

    def test_bad_point_is_an_error_reply_not_a_crash(self):
        point = CampaignPoint(
            "gcc", "no-such-scheme", n_instructions=N, warmup=W
        )
        replies = _serve(
            json.dumps(
                {"id": 1, "op": "run", "spec": point.spec().to_dict()}
            ),
            json.dumps({"id": 2, "op": "ping"}),
        )
        assert replies[0]["ok"] is False
        assert "no-such-scheme" in replies[0]["error"]
        assert replies[1]["ok"] is True

    def test_shutdown_stops_serving(self):
        replies = _serve(
            json.dumps({"id": 1, "op": "shutdown"}),
            json.dumps({"id": 2, "op": "ping"}),  # never reached
        )
        assert replies == [{"id": 1, "ok": True, "bye": True}]


class TestWorkerBackend:
    def test_identical_to_serial(self, points, serial):
        """Acceptance: run_campaign(backend="worker", jobs=2) is
        point-for-point identical to the serial backend."""
        run = run_campaign(points, workers=2, backend="worker")
        assert [(r.point, r.result) for r in run.results] == [
            (r.point, r.result) for r in serial
        ]

    def test_point_failure_surfaces_as_campaign_error(self):
        bad = [
            CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W),
            CampaignPoint(
                "gcc", "no-such-scheme", n_instructions=N, warmup=W
            ),
        ]
        with pytest.raises(CampaignError) as info:
            Campaign(bad, workers=1, backend="worker").run()
        assert len(info.value.failures) == 1
        assert info.value.failures[0][0].scheme == "no-such-scheme"

    def test_worker_crash_mid_point_is_retried(
        self, tmp_path, monkeypatch, serial
    ):
        """A worker that dies before replying loses the point to a
        retry on a fresh worker; the campaign still matches serial."""
        flag = tmp_path / "crash-once"
        flag.write_text("boom")
        monkeypatch.setenv("REPRO_DIST_CRASH_FLAG", str(flag))
        pts = expand_grid(
            ["gcc"], ["modulo", "general-balance"],
            n_instructions=N, warmup=W,
        )
        # A cold pool: the flag env var must be in the workers'
        # spawn-time environment, which a pre-existing warm pool's
        # workers would not have.
        backend = dist.backend("worker", warm=False)
        results = Campaign(pts, workers=1, backend=backend).run()
        assert not flag.exists()  # the crash really happened
        expected = {
            (r.point.bench, r.point.scheme): r.result for r in serial
        }
        for r in results:
            assert r.result == expected[(r.point.bench, r.point.scheme)]

    def test_hung_worker_times_out_and_point_is_retried(
        self, tmp_path, monkeypatch
    ):
        flag = tmp_path / "hang-once"
        flag.write_text("zzz")
        monkeypatch.setenv("REPRO_DIST_HANG_FLAG", str(flag))
        monkeypatch.setenv("REPRO_DIST_HANG_SECONDS", "60")
        pts = [CampaignPoint("li", "modulo", n_instructions=N, warmup=W)]
        # Generous vs normal point latency (worker start + import is
        # ~2s), small enough to keep the test quick.
        backend = dist.backend("worker", timeout=8, retries=1, warm=False)
        results = Campaign(pts, backend=backend).run()
        assert not flag.exists()
        assert results[0].result == run_point(pts[0])

    def test_retries_exhausted_reports_the_failure(self):
        """A command that always dies consumes every retry, then the
        point fails with a message saying how many attempts were made."""
        backend = dist.backend(
            "worker",
            retries=1,
            command=[
                sys.executable,
                "-c",
                "import sys; sys.stdin.readline(); sys.exit(3)",
            ],
        )
        pts = [CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W)]
        with pytest.raises(CampaignError, match="2 attempt"):
            Campaign(pts, backend=backend).run()


def _rtrace_payload(bench="gcc", seed=0, records=N + W):
    """Base64 .rtrace bytes + the preload request fields for them."""
    import base64

    from repro.scenarios import export_trace_bytes
    from repro.workloads import workload

    data, _ = export_trace_bytes(workload(bench, seed=seed), records)
    return {
        "bench": bench,
        "seed": seed,
        "records": records,
        "rtrace": base64.b64encode(data).decode("ascii"),
    }


class TestProtocolV2:
    def test_preload_then_batch_run_matches_serial(self):
        pts = [
            CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W),
            CampaignPoint(
                "gcc", "general-balance", n_instructions=N, warmup=W
            ),
        ]
        replies = _serve(
            json.dumps({"id": 1, "op": "preload", **_rtrace_payload()}),
            json.dumps({
                "id": 2,
                "op": "batch-run",
                "specs": [p.spec().to_dict() for p in pts],
            }),
            json.dumps({"id": 3, "op": "stats"}),
        )
        preload, batch, stats = replies
        assert preload["ok"] and preload["records"] == N + W
        assert batch["ok"] and len(batch["results"]) == 2
        for point, item in zip(pts, batch["results"]):
            assert item["ok"]
            assert _result_from_dict(dict(item["result"])) == run_point(
                point
            )
        # Both points executed against the pinned FrozenTrace.
        assert stats["preloaded_traces"] == 1
        assert stats["trace_cache_hits"] == 2
        assert stats["trace_cache_misses"] == 0
        assert stats["points_served"] == 2
        assert stats["batches"] == 1

    def test_preload_rejects_corrupt_payload(self):
        """A bit-flipped record column fails the CRC and pins nothing."""
        import base64
        import json as json_module
        import zlib

        from repro.scenarios.rtrace import MAGIC

        payload = _rtrace_payload()
        raw = base64.b64decode(payload["rtrace"])
        doc = json_module.loads(zlib.decompress(raw[len(MAGIC):]))
        doc["records"]["taken"][0] ^= 1
        corrupt = MAGIC + zlib.compress(
            json_module.dumps(doc).encode("utf-8")
        )
        payload["rtrace"] = base64.b64encode(corrupt).decode("ascii")
        point = CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W)
        replies = _serve(
            json.dumps({"id": 1, "op": "preload", **payload}),
            json.dumps({"id": 2, "op": "stats"}),
            json.dumps({
                "id": 3, "op": "run", "spec": point.spec().to_dict(),
            }),
        )
        assert replies[0]["ok"] is False
        assert "checksum" in replies[0]["error"]
        assert replies[1]["preloaded_traces"] == 0
        # The worker still serves — by-name resolution, a cache miss.
        assert replies[2]["ok"] is True

    def test_preload_round_trips_through_disk_format(self, tmp_path):
        """preload bytes == export_trace file contents, verbatim."""
        import base64

        from repro.scenarios import export_trace
        from repro.workloads import workload

        payload = _rtrace_payload(records=600)
        path = tmp_path / "gcc.rtrace"
        export_trace(workload("gcc", seed=0), str(path), 600)
        assert base64.b64decode(payload["rtrace"]) == path.read_bytes()

    def test_batch_run_isolates_bad_points(self):
        good = CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W)
        bad = CampaignPoint(
            "gcc", "no-such-scheme", n_instructions=N, warmup=W
        )
        (reply,) = _serve(
            json.dumps({
                "id": 1,
                "op": "batch-run",
                "specs": [
                    good.spec().to_dict(), bad.spec().to_dict(),
                ],
            })
        )
        assert reply["ok"]
        first, second = reply["results"]
        assert first["ok"]
        assert second["ok"] is False
        assert "no-such-scheme" in second["error"]

    def test_missing_preload_fields_are_an_error_reply(self):
        (reply,) = _serve(json.dumps({"id": 1, "op": "preload"}))
        assert reply["ok"] is False
        assert "bench" in reply["error"]


class TestWarmPool:
    def test_second_execute_spawns_zero_workers(self, points, serial):
        pool = dist.WorkerPool()
        backend = dist.backend("worker", pool=pool)
        try:
            first = Campaign(points, workers=2, backend=backend).run()
            spawned = pool.spawned_total
            assert spawned >= 1
            second = Campaign(points, workers=2, backend=backend).run()
            assert pool.spawned_total == spawned
            expected = [r.result for r in serial]
            assert [r.result for r in first] == expected
            assert [r.result for r in second] == expected
            stats = pool.stats()
            assert stats["points_served"] == 2 * len(points)
            # Preloads happen once: the second run hits pinned traces.
            assert stats["preloads"] == sum(
                w["preloaded_traces"] for w in stats["workers"]
            )
            # First run replays the pinned traces; the re-run is served
            # straight from the result memo (determinism contract).
            assert stats["trace_cache_hits"] == len(points)
            assert stats["result_cache_hits"] == len(points)
        finally:
            pool.shutdown()

    def test_shared_pool_is_per_command_and_process_wide(self):
        assert dist.shared_pool() is dist.shared_pool()
        other = dist.shared_pool([sys.executable, "-c", "pass"])
        assert other is not dist.shared_pool()

    def test_split_group_identical_to_serial(self):
        """One oversized group spreads over both workers (the jobs=2
        inversion fix) without changing a single result."""
        pts = expand_grid(
            ["gcc"],
            ["modulo", "general-balance", "br-slice", "ldst-slice"],
            n_instructions=N, warmup=W,
        )
        expected = [r.result for r in Campaign(pts, backend="serial").run()]
        pool = dist.WorkerPool()
        try:
            backend = dist.backend("worker", pool=pool)
            results = Campaign(pts, workers=2, backend=backend).run()
            assert [r.result for r in results] == expected
            stats = pool.stats()
            assert pool.spawned_total == 2
            assert stats["points_served"] == len(pts)
            # Both workers pinned the single shared trace and served
            # part of the group.
            assert all(
                w["preloaded_traces"] == 1 and w["points_served"] > 0
                for w in stats["workers"]
            )
        finally:
            pool.shutdown()

    def test_effective_workers_uncapped_for_splitting_backends(self):
        pts = expand_grid(
            ["gcc"], ["modulo", "general-balance"],
            n_instructions=N, warmup=W,
        )
        assert Campaign(pts, workers=4).effective_workers == 1
        assert (
            Campaign(pts, workers=4, backend="worker").effective_workers
            == 2
        )

    def test_warm_crash_mid_split_group_is_retried(
        self, tmp_path, monkeypatch
    ):
        """A worker crash inside a split group loses only its chunk,
        which is retried; results still match serial point for point."""
        pts = expand_grid(
            ["gcc"],
            ["modulo", "general-balance", "br-slice", "ldst-slice"],
            n_instructions=N, warmup=W,
        )
        expected = [r.result for r in Campaign(pts, backend="serial").run()]
        flag = tmp_path / "crash-once"
        flag.write_text("boom")
        monkeypatch.setenv("REPRO_DIST_CRASH_FLAG", str(flag))
        # The pool is created *after* the flag env var is set, so its
        # workers inherit it at spawn time.
        pool = dist.WorkerPool()
        try:
            backend = dist.backend("worker", pool=pool, retries=1)
            results = Campaign(pts, workers=2, backend=backend).run()
            assert not flag.exists()
            assert [r.result for r in results] == expected
            # The retry respawned exactly one replacement worker.
            assert pool.spawned_total == 3
        finally:
            pool.shutdown()

    def test_worker_stderr_tail_lands_in_the_error(self):
        backend = dist.backend(
            "worker",
            retries=0,
            command=[
                sys.executable,
                "-c",
                "import sys; sys.stdin.readline(); "
                "print('KABOOM from worker', file=sys.stderr); "
                "sys.exit(3)",
            ],
        )
        pts = [CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W)]
        with pytest.raises(CampaignError, match="KABOOM from worker"):
            Campaign(pts, backend=backend).run()
