"""Tests for the campaign engine: grids, shared traces, stores, workers."""

import pytest

from repro.analysis.campaign import (
    Campaign,
    CampaignError,
    CampaignPoint,
    CampaignResults,
    expand_grid,
    run_campaign,
    run_point,
)
from repro.errors import ConfigError
from repro.workloads import (
    clear_workload_cache,
    reset_trace_stats,
    trace_build_counts,
)

#: Tiny windows: the campaign tests exercise orchestration, not timing.
N = 500
W = 150


def tiny_grid(benches=("gcc", "li"), schemes=("modulo", "general-balance")):
    return expand_grid(list(benches), list(schemes), n_instructions=N, warmup=W)


class TestGridExpansion:
    def test_full_cross_product(self):
        points = expand_grid(
            ["gcc", "li"],
            ["modulo", "fifo"],
            machines=("clustered", "baseline"),
            seeds=(0, 1, 2),
            n_instructions=N,
            warmup=W,
        )
        assert len(points) == 2 * 2 * 2 * 3
        assert len(set(points)) == len(points)

    def test_points_carry_run_parameters(self):
        (point,) = expand_grid(["go"], ["fifo"], n_instructions=123, warmup=45)
        assert point.bench == "go"
        assert point.scheme == "fifo"
        assert point.machine == "clustered"
        assert point.n_instructions == 123
        assert point.warmup == 45

    def test_shared_trace_points_are_adjacent(self):
        """Grouping works best when (bench, seed) runs are contiguous."""
        points = expand_grid(
            ["gcc", "li"], ["modulo", "fifo"], seeds=(0, 1),
            n_instructions=N, warmup=W,
        )
        keys = [p.trace_key for p in points]
        # Each trace key appears as one contiguous block.
        blocks = [
            key for i, key in enumerate(keys) if i == 0 or keys[i - 1] != key
        ]
        assert len(blocks) == len(set(keys))

    def test_overrides_expand(self):
        points = expand_grid(
            ["gcc"],
            ["modulo"],
            overrides=((("bypass_ports", 1),), (("bypass_ports", 3),)),
            n_instructions=N,
            warmup=W,
        )
        assert [p.overrides for p in points] == [
            (("bypass_ports", 1),),
            (("bypass_ports", 3),),
        ]

    def test_override_applies_to_config(self):
        point = CampaignPoint(
            "gcc", "modulo", overrides=(("bypass_ports", 1),)
        )
        assert point.config().bypass_ports == 1

    def test_cluster_override_applies_symmetrically(self):
        point = CampaignPoint("gcc", "modulo", overrides=(("iq_size", 12),))
        config = point.config()
        assert config.clusters[0].iq_size == 12
        assert config.clusters[1].iq_size == 12

    def test_unknown_machine_raises(self):
        with pytest.raises(ConfigError):
            CampaignPoint("gcc", "modulo", machine="quantum").config()

    def test_unknown_override_raises(self):
        with pytest.raises(ConfigError):
            CampaignPoint(
                "gcc", "modulo", overrides=(("warp_factor", 9),)
            ).config()


class TestTraceSharing:
    def test_trace_generated_once_per_bench_seed(self):
        """The acceptance criterion: a 2-bench x 3-scheme grid decodes
        each workload trace exactly once."""
        clear_workload_cache()
        reset_trace_stats()
        points = expand_grid(
            ["gcc", "li"],
            ["modulo", "general-balance", "ldst-slice"],
            n_instructions=N,
            warmup=W,
        )
        Campaign(points).run()
        counts = trace_build_counts()
        assert counts == {("gcc", 0): 1, ("li", 0): 1}

    def test_distinct_seeds_build_distinct_traces(self):
        clear_workload_cache()
        reset_trace_stats()
        points = expand_grid(
            ["li"], ["modulo", "fifo"], seeds=(0, 3),
            n_instructions=N, warmup=W,
        )
        Campaign(points).run()
        assert trace_build_counts() == {("li", 0): 1, ("li", 3): 1}


class TestExecution:
    def test_results_align_with_points(self):
        points = tiny_grid()
        results = Campaign(points).run()
        assert len(results) == len(points)
        for point, run in zip(points, results):
            assert run.point == point
            assert run.result.benchmark == point.bench
            assert run.result.scheme == point.scheme
            assert run.result.ipc > 0

    def test_parallel_equals_serial(self):
        points = tiny_grid()
        serial = Campaign(points, workers=1).run()
        parallel = Campaign(points, workers=4).run()
        for s, p in zip(serial, parallel):
            assert s.point == p.point
            assert s.result == p.result

    def test_result_lookup(self):
        results = Campaign(tiny_grid()).run()
        result = results.result(bench="li", scheme="modulo")
        assert result.benchmark == "li"
        with pytest.raises(KeyError):
            results.result(bench="li")  # two schemes match

    def test_run_point_matches_campaign(self):
        point = CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W)
        direct = run_point(point)
        via_engine = Campaign([point]).run()[0].result
        assert direct == via_engine


class TestFailureSurfacing:
    def test_serial_failure_names_the_point(self):
        points = [
            CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W),
            CampaignPoint("gcc", "no-such-scheme", n_instructions=N, warmup=W),
        ]
        with pytest.raises(CampaignError) as info:
            Campaign(points).run()
        failures = info.value.failures
        assert len(failures) == 1
        assert failures[0][0].scheme == "no-such-scheme"
        assert "no-such-scheme" in str(info.value)
        # The worker traceback is preserved for debugging.
        assert "Traceback" in failures[0][1]

    def test_parallel_failure_surfaces_from_worker(self):
        points = [
            CampaignPoint("gcc", "modulo", n_instructions=N, warmup=W),
            CampaignPoint("li", "no-such-scheme", n_instructions=N, warmup=W),
        ]
        with pytest.raises(CampaignError) as info:
            Campaign(points, workers=2).run()
        assert info.value.failures[0][0].bench == "li"

    def test_good_points_do_not_mask_failures(self):
        """A failing cell fails the campaign even with healthy siblings."""
        points = tiny_grid() + [
            CampaignPoint("gcc", "broken", n_instructions=N, warmup=W)
        ]
        with pytest.raises(CampaignError):
            Campaign(points).run()


class TestStores:
    @pytest.fixture(scope="class")
    def results(self):
        return Campaign(tiny_grid(schemes=("modulo", "fifo"))).run()

    def test_json_round_trip(self, results, tmp_path):
        path = str(tmp_path / "results.json")
        results.save_json(path)
        loaded = CampaignResults.load_json(path)
        assert [(r.point, r.result) for r in loaded] == [
            (r.point, r.result) for r in results
        ]

    def test_csv_round_trip(self, results, tmp_path):
        path = str(tmp_path / "results.csv")
        results.save_csv(path)
        loaded = CampaignResults.load_csv(path)
        assert [(r.point, r.result) for r in loaded] == [
            (r.point, r.result) for r in results
        ]

    def test_csv_round_trip_with_overrides(self, tmp_path):
        points = [
            CampaignPoint(
                "li",
                "modulo",
                overrides=(("bypass_ports", 1),),
                n_instructions=N,
                warmup=W,
            )
        ]
        results = Campaign(points).run()
        path = str(tmp_path / "o.csv")
        results.save_csv(path)
        loaded = CampaignResults.load_csv(path)
        assert loaded[0].point == points[0]
        assert loaded[0].result == results[0].result

    @pytest.mark.parametrize("ext", ["json", "csv"])
    def test_nested_override_round_trip(self, tmp_path, ext):
        """Regression: dotted (nested) overrides must survive both
        stores byte-exactly — resume keys on full point equality, so a
        lossy round trip would silently re-simulate every such point."""
        points = [
            CampaignPoint(
                "li",
                "modulo",
                overrides=(
                    ("clusters.0.iq_size", 128),
                    ("l1d.size_kb", 32),
                    ("bypass_latency", 2),
                ),
                n_instructions=N,
                warmup=W,
            )
        ]
        results = Campaign(points).run()
        store = str(tmp_path / f"nested.{ext}")
        results.save(store)
        loaded = CampaignResults.load(store)
        assert loaded[0].point == points[0]
        assert loaded[0].point.overrides == points[0].overrides
        assert loaded[0].result == results[0].result
        # And the store serves the point on resume without re-simulating.
        rerun = run_campaign(points, store=store, resume=True)
        assert rerun.n_simulated == 0
        assert rerun.n_cached == 1


class TestAggregation:
    def test_multi_seed_mean_and_std(self):
        points = expand_grid(
            ["li"], ["modulo"], seeds=(0, 1, 2), n_instructions=N, warmup=W
        )
        results = Campaign(points).run()
        (agg,) = results.aggregate()
        ipcs = [run.result.ipc for run in results]
        assert agg.n_seeds == 3
        assert agg.seeds == (0, 1, 2)
        assert agg.ipc == pytest.approx(sum(ipcs) / 3)
        assert agg.ipc_std > 0  # different seeds, different traces

    def test_single_seed_aggregates_losslessly(self):
        results = Campaign(tiny_grid()).run()
        aggs = results.aggregate()
        assert len(aggs) == len(results)
        for agg, run in zip(aggs, results):
            assert agg.ipc == run.result.ipc
            assert agg.ipc_std == 0.0


class TestIncrementalCampaigns:
    def test_no_store_matches_plain_campaign(self):
        points = tiny_grid()
        run = run_campaign(points)
        plain = Campaign(points).run()
        assert run.n_cached == 0
        assert run.n_simulated == len(points)
        assert [(r.point, r.result) for r in run.results] == [
            (r.point, r.result) for r in plain
        ]

    def test_resume_skips_stored_points(self, tmp_path):
        store = str(tmp_path / "store.json")
        first = run_campaign(tiny_grid(), store=store)
        assert first.n_simulated == len(tiny_grid())
        again = run_campaign(tiny_grid(), store=store, resume=True)
        assert again.n_cached == len(tiny_grid())
        assert again.n_simulated == 0
        assert [(r.point, r.result) for r in again.results] == [
            (r.point, r.result) for r in first.results
        ]

    def test_resume_simulates_only_missing_points(self, tmp_path):
        store = str(tmp_path / "store.json")
        run_campaign(tiny_grid(schemes=("modulo",)), store=store)
        grown = tiny_grid(schemes=("modulo", "fifo"))
        run = run_campaign(grown, store=store, resume=True)
        assert run.n_cached == 2  # the two modulo points
        assert run.n_simulated == 2  # the two fifo points
        assert len(run.results) == 4
        # And the order still follows the requested grid.
        assert [r.point for r in run.results] == grown

    def test_changed_point_is_resimulated(self, tmp_path):
        """Lookup is by full point equality: changing the window size
        invalidates the stored result instead of reusing it."""
        store = str(tmp_path / "store.json")
        run_campaign(tiny_grid(schemes=("modulo",)), store=store)
        wider = expand_grid(
            ["gcc", "li"], ["modulo"], n_instructions=N + 100, warmup=W
        )
        run = run_campaign(wider, store=store, resume=True)
        assert run.n_cached == 0
        assert run.n_simulated == 2

    def test_store_accumulates_across_grids(self, tmp_path):
        store = str(tmp_path / "store.json")
        run_campaign(tiny_grid(schemes=("modulo",)), store=store, resume=True)
        run_campaign(tiny_grid(schemes=("fifo",)), store=store, resume=True)
        stored = CampaignResults.load(store)
        assert {r.point.scheme for r in stored} == {"modulo", "fifo"}
        # A third run over the union simulates nothing.
        union = tiny_grid(schemes=("modulo", "fifo"))
        run = run_campaign(union, store=store, resume=True)
        assert run.n_simulated == 0

    def test_csv_store_round_trips(self, tmp_path):
        store = str(tmp_path / "store.csv")
        run_campaign(tiny_grid(schemes=("modulo",)), store=store)
        run = run_campaign(
            tiny_grid(schemes=("modulo",)), store=store, resume=True
        )
        assert run.n_simulated == 0

    def test_resume_without_store_raises(self):
        with pytest.raises(ConfigError, match="store"):
            run_campaign(tiny_grid(), resume=True)

    def test_unknown_store_extension_raises(self, tmp_path):
        with pytest.raises(ConfigError, match=".json or .csv"):
            run_campaign(
                tiny_grid(), store=str(tmp_path / "store.parquet")
            )

    def test_resume_with_missing_store_runs_everything(self, tmp_path):
        store = str(tmp_path / "fresh.json")
        run = run_campaign(tiny_grid(), store=store, resume=True)
        assert run.n_cached == 0
        assert run.n_simulated == len(tiny_grid())


class TestSweepIntegration:
    def test_sweep_routes_through_campaign(self):
        from repro.analysis import Sweep

        s = Sweep("bypass_ports", [1, 3], bench="li",
                  n_instructions=N, warmup=W)
        points = s.campaign_points()
        assert [p.overrides for p in points] == [
            (("bypass_ports", 1),),
            (("bypass_ports", 3),),
        ]
        assert set(s.run()) == {1, 3}

    def test_sweep_rejects_unknown_param_before_running(self):
        from repro.analysis import Sweep

        with pytest.raises(ConfigError):
            Sweep("warp_factor", [1], bench="li",
                  n_instructions=N, warmup=W).campaign_points()


class TestExperimentRunnerIntegration:
    def test_runner_sweep_parallel_equals_serial(self):
        from repro.analysis import ExperimentRunner

        kwargs = dict(n_instructions=N, warmup=W, benchmarks=("gcc", "li"))
        serial = ExperimentRunner(workers=1, **kwargs)
        parallel = ExperimentRunner(workers=2, **kwargs)
        assert serial.sweep("modulo") == parallel.sweep("modulo")
