"""Integration tests: full-pipeline invariants on short simulations."""

import pytest

from repro.core.steering import make_steering
from repro.errors import SteeringError
from repro.isa import DynInst, InstrClass
from repro.pipeline import Processor, ProcessorConfig
from repro.workloads import workload


def spy_commits(processor, callback):
    """Invoke ``callback(dyn)`` for every instruction commit retires.

    Works in both dispatch modes: the columnar commit loop inlines the
    ``stats.on_commit`` call away, so patching the stats hook would see
    nothing — instead the commit *stage* is wrapped and the retired
    instructions read off the ROB delta (commit pops from the left).
    """
    original = processor._commit_stage

    def wrapped(cycle):
        before = list(processor.rob._entries)
        original(cycle)
        retired = len(before) - len(processor.rob._entries)
        for dyn in before[:retired]:
            callback(dyn)

    processor._commit_stage = wrapped


def run_processor(bench="gcc", scheme="general-balance", config=None, n=2000):
    wl = workload(bench)
    cfg = config or ProcessorConfig.default()
    steering = make_steering(scheme)
    if getattr(steering, "requires_fifo_issue", False):
        cfg = cfg.with_fifo_issue()
    processor = Processor(wl, cfg, steering)
    result = processor.run(n, warmup=500)
    return processor, result


class TestBasicExecution:
    def test_commits_requested_instructions(self):
        _, result = run_processor(n=1500)
        assert result.instructions >= 1500

    def test_ipc_in_sane_range(self):
        _, result = run_processor()
        assert 0.3 < result.ipc < 8.0

    def test_cycles_positive(self):
        _, result = run_processor()
        assert result.cycles > 0


class TestCommitOrder:
    def test_commit_cycles_monotonic_with_seq(self):
        """In-order commit: commit cycles never decrease in program order."""
        wl = workload("li")
        processor = Processor(
            wl, ProcessorConfig.default(), make_steering("general-balance")
        )
        committed = []
        spy_commits(
            processor, lambda dyn: committed.append((dyn.seq, processor.cycle))
        )
        processor._run_until(1000)
        seqs = [s for s, _ in committed]
        cycles = [c for _, c in committed]
        assert seqs == sorted(seqs)
        assert cycles == sorted(cycles)

    def test_retire_width_respected(self):
        wl = workload("m88ksim")
        config = ProcessorConfig.default()
        processor = Processor(wl, config, make_steering("general-balance"))
        per_cycle = {}

        def spy(dyn: DynInst):
            per_cycle[processor.cycle] = per_cycle.get(processor.cycle, 0) + 1

        spy_commits(processor, spy)
        processor._run_until(2000)
        assert max(per_cycle.values()) <= config.retire_width


class TestTimingInvariants:
    def _collect(self, bench="gcc", scheme="general-balance", n=1500):
        wl = workload(bench)
        processor = Processor(
            wl, ProcessorConfig.default(), make_steering(scheme)
        )
        seen = []
        spy_commits(processor, seen.append)
        processor._run_until(n)
        return seen

    def test_stage_ordering_per_instruction(self):
        for dyn in self._collect():
            assert dyn.fetch_cycle >= 0
            assert dyn.dispatch_cycle >= dyn.fetch_cycle
            if dyn.issue_cycle >= 0:  # jumps/nops never issue
                assert dyn.issue_cycle > dyn.dispatch_cycle
                assert dyn.complete_cycle > dyn.issue_cycle
            assert dyn.commit_cycle >= dyn.complete_cycle

    def test_operands_ready_before_issue(self):
        for dyn in self._collect():
            if dyn.issue_cycle < 0:
                continue
            for provider in dyn.providers:
                assert provider.complete_cycle <= dyn.issue_cycle

    def test_loads_respect_memory_latency(self):
        for dyn in self._collect():
            if dyn.cls is InstrClass.LOAD and dyn.issue_cycle >= 0:
                assert dyn.mem_latency >= 1
                assert dyn.complete_cycle >= dyn.ea_done_cycle

    def test_clusters_assigned_legally(self):
        for dyn in self._collect():
            assert dyn.cluster in (0, 1)
            if dyn.cls is InstrClass.COMPLEX_INT:
                assert dyn.cluster == 0
            if dyn.cls is InstrClass.FP:
                assert dyn.cluster == 1


class TestBaselineMachine:
    def test_baseline_never_communicates(self, gcc_base_result):
        result = gcc_base_result
        assert result.copies_created == 0
        assert result.copies_issued == 0
        assert result.comms_per_instr == 0.0

    def test_baseline_uses_only_cluster0_for_int(self, gcc_base_result):
        # SpecInt: no FP instructions
        assert gcc_base_result.steered[1] == 0

    def test_baseline_never_replicates(self, gcc_base_result):
        assert gcc_base_result.avg_replication == 0.0


class TestClusteredMachine:
    def test_general_balance_uses_both_clusters(self, gcc_general_result):
        steered = gcc_general_result.steered
        assert steered[0] > 0 and steered[1] > 0
        total = steered[0] + steered[1]
        assert 0.25 < steered[0] / total < 0.75

    def test_communications_occur(self, gcc_general_result):
        assert gcc_general_result.copies_issued > 0

    def test_replication_positive_but_bounded(self, gcc_general_result):
        # Far below full replication of 32 integer registers (Figure 15's
        # point: only ~3 registers need duplicating, not the whole file).
        assert 0 < gcc_general_result.avg_replication < 16

    def test_issue_width_respected(self):
        wl = workload("ijpeg")
        config = ProcessorConfig.default()
        processor = Processor(wl, config, make_steering("general-balance"))
        issued_at = {}
        real_issue = processor._issue_stage

        def spy(cycle):
            before = {
                c: len(processor.iqs[c]) for c in (0, 1)
            }
            real_issue(cycle)
            for c in (0, 1):
                removed = before[c] - len(processor.iqs[c])
                # Removals during issue == instructions issued this cycle
                # (dispatch inserts later in the cycle).
                issued_at.setdefault(c, []).append(removed)

        processor._issue_stage = spy
        processor._run_until(2000)
        for cluster in (0, 1):
            width = config.clusters[cluster].issue_width
            assert max(issued_at[cluster]) <= width


class TestSchemeConfigCompatibility:
    def test_scheme_needing_copies_on_baseline_raises(self):
        wl = workload("gcc")
        processor = Processor(
            wl, ProcessorConfig.baseline(), make_steering("modulo")
        )
        with pytest.raises(SteeringError):
            processor.run(500, warmup=0)

    def test_fifo_scheme_requires_fifo_windows(self):
        wl = workload("gcc")
        with pytest.raises(SteeringError):
            Processor(
                wl, ProcessorConfig.default(), make_steering("fifo")
            )


class TestEverySchemeRuns:
    @pytest.mark.parametrize(
        "scheme",
        [
            "modulo",
            "ldst-slice",
            "br-slice",
            "ldst-nonslice-balance",
            "br-nonslice-balance",
            "ldst-slice-balance",
            "br-slice-balance",
            "ldst-priority",
            "br-priority",
            "general-balance",
            "fifo",
            "static-ldst",
            "static-ldst+1",
        ],
    )
    def test_scheme_completes(self, scheme, fast_sim):
        result = fast_sim("li", scheme, n_instructions=1200, warmup=300)
        assert result.instructions >= 1200
        assert result.ipc > 0.2
