"""Tests for the extension steering schemes."""

import pytest

from repro import simulate, simulate_baseline
from repro.core.steering import (
    AffinityOnlySteering,
    BalanceOnlySteering,
    PrimaryClusterSteering,
    available_schemes,
    make_steering,
)
from repro.isa import DynInst, Instruction, Opcode

from test_steering_unit import FakeMachine, dyn


class TestAffinityOnly:
    def test_follows_operands(self):
        scheme = AffinityOnlySteering()
        scheme.reset(FakeMachine())
        machine = FakeMachine()
        # Integer architectural state starts in cluster 0.
        assert scheme.choose(dyn(srcs=(1, 2)), machine) == 0

    def test_tie_goes_to_integer_cluster(self):
        scheme = AffinityOnlySteering()
        machine = FakeMachine()
        scheme.reset(machine)
        assert scheme.choose(dyn(srcs=()), machine) == 0

    def test_collapses_onto_one_cluster_end_to_end(self, fast_sim):
        """Without balancing, dependence chains pull nearly everything to
        the cluster holding the initial state."""
        result = fast_sim("gcc", "affinity-only")
        total = sum(result.steered)
        dominant = max(result.steered) / total
        assert dominant > 0.8

    def test_low_communications(self, fast_sim):
        affinity = fast_sim("gcc", "affinity-only")
        balance = fast_sim("gcc", "balance-only")
        assert affinity.comms_per_instr < balance.comms_per_instr


class TestBalanceOnly:
    def test_picks_least_loaded(self):
        scheme = BalanceOnlySteering()
        machine = FakeMachine()
        scheme.reset(machine)
        machine.ready_counts = [9, 2]
        assert scheme.choose(dyn(), machine) == 1

    def test_spreads_work_end_to_end(self, fast_sim):
        result = fast_sim("gcc", "balance-only")
        total = sum(result.steered)
        assert max(result.steered) / total < 0.7

    def test_communicates_heavily(self, fast_sim):
        balance = fast_sim("gcc", "balance-only")
        general = fast_sim("gcc", "general-balance")
        assert balance.comms_per_instr > general.comms_per_instr


class TestPrimaryCluster:
    def test_destination_parity_decides(self):
        scheme = PrimaryClusterSteering()
        machine = FakeMachine()
        scheme.reset(machine)
        even_dst = dyn(dst=6, srcs=(1,))
        odd_dst = dyn(dst=7, srcs=(1,))
        assert scheme.choose(even_dst, machine) == 0
        assert scheme.choose(odd_dst, machine) == 1

    def test_imbalance_override(self):
        scheme = PrimaryClusterSteering()
        machine = FakeMachine()
        scheme.reset(machine)
        for _ in range(20):
            scheme.imbalance.on_steer(0)
        assert scheme.choose(dyn(dst=6, srcs=(1,)), machine) == 1

    def test_store_uses_first_source(self):
        scheme = PrimaryClusterSteering()
        machine = FakeMachine()
        scheme.reset(machine)
        store = dyn(Opcode.STORE, dst=None, srcs=(2, 5))
        assert scheme.choose(store, machine) == 0  # reg 2 is even

    def test_end_to_end(self, fast_sim):
        result = fast_sim("li", "primary-cluster", n_instructions=1500,
                          warmup=400)
        assert result.instructions >= 1500


class TestDecomposition:
    def test_combination_beats_both_halves(self, fast_base, fast_sim):
        """The headline claim of the decomposition ablation, in miniature."""
        base = fast_base("m88ksim")
        general = fast_sim("m88ksim", "general-balance").speedup_over(base)
        affinity = fast_sim("m88ksim", "affinity-only").speedup_over(base)
        balance = fast_sim("m88ksim", "balance-only").speedup_over(base)
        assert general >= affinity - 0.02
        assert general >= balance - 0.02


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["affinity-only", "balance-only", "primary-cluster"]
    )
    def test_registered(self, name):
        assert name in available_schemes()
        assert make_steering(name) is not None
