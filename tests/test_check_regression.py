"""Tests for the perf-regression gate (benchmarks/check_regression.py).

The gate script is not a package module, so it is loaded straight from
the benchmarks directory.  These tests pin the campaign-backend gate's
behaviour for the cases the warm-pool work exposed: labels present only
in the fresh run must be *reported* (never silently skipped) but never
*gated*, while missing-from-fresh labels and genuine slowdowns still
fail.
"""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "check_regression.py",
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _campaign_doc(backends):
    return {
        "benchmark": "campaign-backends",
        "backends": {
            label: {"points_per_second": pps}
            for label, pps in backends.items()
        },
    }


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestCampaignMetrics:
    def test_identical_runs_pass(self, gate):
        doc = _campaign_doc({"serial": 20.0, "worker-warm": 40.0})
        metrics = list(gate.campaign_metrics(doc, doc, False))
        assert all(new / base == 1.0 for _, base, new, _ in metrics
                   if base > 0)

    def test_fresh_only_label_is_reported_ungated(self, gate):
        base = _campaign_doc({"serial": 20.0})
        fresh = _campaign_doc({"serial": 20.0, "worker-warm": 900.0})
        extras = [
            m for m in gate.campaign_metrics(base, fresh, False)
            if "new in fresh run" in m[0]
        ]
        assert len(extras) == 1
        name, baseline, value, gated = extras[0]
        assert name.startswith("worker-warm")
        assert baseline == 0.0
        assert value == 900.0
        assert gated is False

    def test_baseline_only_label_is_gated(self, gate):
        base = _campaign_doc({"serial": 20.0, "worker-warm": 900.0})
        fresh = _campaign_doc({"serial": 20.0})
        missing = [
            m for m in gate.campaign_metrics(base, fresh, False)
            if "missing from fresh run" in m[0]
        ]
        assert len(missing) == 1
        assert missing[0][3] is True  # gated

    def test_compound_gate_needs_both_ratios_to_drop(self, gate):
        base = _campaign_doc({"serial": 20.0, "worker-warm": 40.0})
        # Serial doubled, the backend held still: relative ratio halves
        # but the raw number is flat -> compound signal stays at 1.0.
        fresh = _campaign_doc({"serial": 40.0, "worker-warm": 40.0})
        compound = {
            name: new
            for name, _, new, _ in gate.campaign_metrics(base, fresh, False)
            if name.endswith("(rel&raw)")
        }
        assert compound["worker-warm points/s (rel&raw)"] == 1.0


class TestMainExitCodes:
    def test_new_label_passes_and_is_printed(self, gate, tmp_path, capsys):
        base = _write(tmp_path, "base.json", _campaign_doc({"serial": 20.0}))
        fresh = _write(
            tmp_path, "fresh.json",
            _campaign_doc({"serial": 20.0, "worker-warm": 900.0}),
        )
        assert gate.main(["--baseline", base, "--fresh", fresh]) == 0
        out = capsys.readouterr().out
        assert "new (ungated)" in out
        assert "worker-warm" in out

    def test_real_regression_still_fails(self, gate, tmp_path):
        base = _write(
            tmp_path, "base.json",
            _campaign_doc({"serial": 20.0, "worker-warm": 900.0}),
        )
        fresh = _write(
            tmp_path, "fresh.json",
            _campaign_doc({"serial": 20.0, "worker-warm": 90.0}),
        )
        assert gate.main(["--baseline", base, "--fresh", fresh]) == 1
