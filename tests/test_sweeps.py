"""Tests for the parameter-sweep utility and occupancy statistics."""

import pytest

from repro.analysis import Sweep, sweep
from repro.analysis.sweeps import _apply
from repro.cli import main
from repro.errors import ConfigError
from repro.pipeline import ProcessorConfig


class TestApply:
    def test_machine_level_parameter(self):
        config = _apply(ProcessorConfig.default(), "bypass_ports", 1)
        assert config.bypass_ports == 1

    def test_cluster_level_parameter(self):
        config = _apply(ProcessorConfig.default(), "issue_width", 6)
        assert config.clusters[0].issue_width == 6
        assert config.clusters[1].issue_width == 6

    def test_unknown_parameter(self):
        with pytest.raises(ConfigError):
            _apply(ProcessorConfig.default(), "warp_factor", 9)


class TestSweep:
    def test_points_cover_values(self):
        points = sweep(
            "bypass_ports",
            [1, 3],
            bench="li",
            n_instructions=800,
            warmup=200,
        )
        assert set(points) == {1, 3}

    def test_base_ipc_cached(self):
        s = Sweep(
            "bypass_ports", [3], bench="li", n_instructions=800, warmup=200
        )
        first = s.base_ipc()
        assert s.base_ipc() == first

    def test_format_contains_values(self):
        s = Sweep(
            "bypass_ports", [1, 3], bench="li",
            n_instructions=800, warmup=200,
        )
        text = s.format()
        assert "bypass_ports" in text
        assert "1" in text and "3" in text

    def test_width_sweep_is_monotonic_ish(self):
        """More issue width never hurts (beyond noise)."""
        points = sweep(
            "issue_width",
            [2, 8],
            bench="m88ksim",
            n_instructions=1500,
            warmup=400,
        )
        assert points[8] > points[2] - 0.03


class TestSweepCLI:
    def test_cli_sweep(self, capsys):
        code = main(
            ["sweep", "bypass_ports", "1", "3", "-b", "li",
             "-n", "800", "-w", "200"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep of bypass_ports" in out


class TestOccupancyStats:
    def test_occupancy_reported(self, gcc_general_result):
        result = gcc_general_result
        assert 0 < result.avg_rob_occupancy <= 64
        assert 0 < result.avg_iq_occupancy[0] <= 64
        assert 0 < result.avg_iq_occupancy[1] <= 64

    def test_rob_fuller_on_memory_bound_bench(self, fast_sim):
        compress = fast_sim("compress", "general-balance")
        assert compress.avg_rob_occupancy > 5
