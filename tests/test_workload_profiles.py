"""Unit tests for the SpecInt95 stand-in profiles (Table 1)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    FIGURE3_ORDER,
    FIGURE_ORDER,
    SPECINT95,
    WorkloadProfile,
    get_profile,
)


def test_all_eight_benchmarks_present():
    assert set(FIGURE_ORDER) == set(SPECINT95)
    assert len(SPECINT95) == 8


def test_figure3_is_a_subset_of_seven():
    assert len(FIGURE3_ORDER) == 7
    assert set(FIGURE3_ORDER) <= set(SPECINT95)
    assert "vortex" not in FIGURE3_ORDER  # Sastry et al. report 7 programs


def test_get_profile_roundtrip():
    for name in FIGURE_ORDER:
        assert get_profile(name).name == name


def test_get_profile_unknown_lists_available():
    with pytest.raises(WorkloadError) as err:
        get_profile("nosuchbench")
    assert "gcc" in str(err.value)


def test_specint_profiles_have_no_fp():
    for profile in SPECINT95.values():
        assert profile.frac_fp == 0.0


def test_mix_fractions_are_sane():
    for profile in SPECINT95.values():
        assert 0 < profile.frac_load < 0.5
        assert 0 <= profile.frac_store < 0.3
        assert profile.frac_simple > 0.3


def test_table1_inputs_recorded():
    assert SPECINT95["go"].input_name == "bigtest.in"
    assert SPECINT95["gcc"].input_name == "insn-recog.i"
    assert SPECINT95["perl"].input_name == "primes.pl"


def test_benchmark_distinctiveness():
    """The profiles must actually differ (they drive per-benchmark bars)."""
    assert (
        SPECINT95["compress"].cold_access_frac
        > SPECINT95["m88ksim"].cold_access_frac
    )
    assert (
        SPECINT95["li"].pointer_chase_frac
        > SPECINT95["ijpeg"].pointer_chase_frac
    )
    assert (
        SPECINT95["ijpeg"].loop_branch_frac > SPECINT95["go"].loop_branch_frac
    )


def _profile_kwargs(**overrides):
    kwargs = dict(
        name="x",
        input_name="x.in",
        avg_block_size=5.0,
        frac_load=0.2,
        frac_store=0.1,
        frac_complex=0.0,
        frac_fp=0.0,
        loop_branch_frac=0.5,
        data_branch_bias=(0.3, 0.7),
        footprint_bytes=1024,
        cold_access_frac=0.1,
        pointer_chase_frac=0.1,
        addr_depth=1.0,
        cond_depth=1.0,
        slice_overlap=0.3,
        dep_distance=5.0,
    )
    kwargs.update(overrides)
    return kwargs


def test_invalid_mix_rejected():
    with pytest.raises(WorkloadError):
        WorkloadProfile(**_profile_kwargs(frac_load=0.9, frac_store=0.3))


def test_negative_fraction_rejected():
    with pytest.raises(WorkloadError):
        WorkloadProfile(**_profile_kwargs(frac_load=-0.1))


def test_tiny_blocks_rejected():
    with pytest.raises(WorkloadError):
        WorkloadProfile(**_profile_kwargs(avg_block_size=1.0))


def test_zero_footprint_rejected():
    with pytest.raises(WorkloadError):
        WorkloadProfile(**_profile_kwargs(footprint_bytes=0))


def test_loop_branch_frac_range():
    with pytest.raises(WorkloadError):
        WorkloadProfile(**_profile_kwargs(loop_branch_frac=1.5))


def test_frac_simple_derived():
    profile = WorkloadProfile(**_profile_kwargs())
    assert profile.frac_simple == pytest.approx(0.7)
