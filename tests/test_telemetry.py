"""Tests for repro.telemetry: logging, tracing, metrics, and wiring.

The distributed scenarios mirror test_dist / test_service: a worker
crash consumed by a retry, a daemon restart forcing a resubmit, and
mixed old/new protocol peers — here asserting that the *telemetry*
survives each of them with a complete, well-parented span tree.
"""

import json
import time

import pytest

from repro import dist, telemetry
from repro.analysis.campaign import (
    Campaign,
    CampaignError,
    CampaignPoint,
    CampaignResults,
    expand_grid,
)
from repro.dist import serve as serve_module
from repro.dist.worker import WorkerState, handle_request
from repro.errors import ConfigError
from repro.telemetry import log as log_module
from repro.telemetry import tracing
from repro.telemetry.metrics import MetricsRegistry

#: Tiny windows: these tests exercise telemetry, not timing.
N = 400
W = 120


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    """Every test starts silent and with an empty span ring."""
    monkeypatch.delenv(log_module.LEVEL_ENV, raising=False)
    monkeypatch.delenv(log_module.FILE_ENV, raising=False)
    log_module.reset()
    tracing.clear_recent()
    yield
    log_module.reset()
    tracing.clear_recent()


@pytest.fixture(scope="module")
def points():
    return expand_grid(
        ["gcc"], ["modulo", "general-balance"],
        n_instructions=N, warmup=W,
    )


@pytest.fixture(scope="module")
def serial(points):
    return Campaign(points, backend="serial").run()


def _log_file(tmp_path, monkeypatch):
    """Point the telemetry sink at a fresh JSONL file."""
    path = tmp_path / "events.jsonl"
    monkeypatch.setenv(log_module.FILE_ENV, str(path))
    log_module.reset()
    return path


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_silent_by_default(self, capfd):
        assert not log_module.enabled("error")
        telemetry.get_logger("test").error("test.event", detail=1)
        assert capfd.readouterr().err == ""

    def test_file_sink_writes_jsonl_with_session_header(
        self, tmp_path, monkeypatch
    ):
        path = _log_file(tmp_path, monkeypatch)
        telemetry.get_logger("test").info("test.event", answer=42)
        telemetry.flush()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["event"] == "telemetry.session"
        assert "python" in lines[0]  # the provenance stamp rode along
        event = lines[1]
        assert event["component"] == "test"
        assert event["event"] == "test.event"
        assert event["answer"] == 42
        assert event["level"] == "info"
        assert {"ts", "mono", "pid", "host"} <= set(event)

    def test_level_filters_below_threshold(self, tmp_path, monkeypatch):
        path = _log_file(tmp_path, monkeypatch)
        monkeypatch.setenv(log_module.LEVEL_ENV, "warning")
        log_module.reset()
        logger = telemetry.get_logger("test")
        logger.info("test.dropped")
        logger.warning("test.kept")
        telemetry.flush()
        events = [
            json.loads(line)["event"]
            for line in path.read_text().splitlines()
        ]
        assert "test.kept" in events
        assert "test.dropped" not in events

    def test_bad_level_names_the_env_var(self, monkeypatch):
        monkeypatch.setenv(log_module.LEVEL_ENV, "loud")
        with pytest.raises(ConfigError, match=log_module.LEVEL_ENV):
            log_module.configure()

    def test_verbose_maps_to_info_then_debug(self):
        log_module.configure(verbose=1)
        assert log_module.enabled("info")
        assert not log_module.enabled("debug")
        log_module.configure(verbose=2)
        assert log_module.enabled("debug")

    def test_explicit_env_level_beats_verbose(self, monkeypatch):
        monkeypatch.setenv(log_module.LEVEL_ENV, "error")
        log_module.configure(verbose=2)
        assert not log_module.enabled("debug")
        assert log_module.enabled("error")

    def test_unwritable_file_falls_back_to_stderr(
        self, tmp_path, monkeypatch, capfd
    ):
        monkeypatch.setenv(
            log_module.FILE_ENV, str(tmp_path / "no-such-dir" / "x.jsonl")
        )
        log_module.reset()
        telemetry.get_logger("test").info("test.event")
        telemetry.flush()
        err = capfd.readouterr().err
        assert "telemetry.sink-error" in err
        assert "test.event" in err  # the event still landed


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5
        assert registry.snapshot()["c"] == {"type": "counter", "value": 5}

    def test_gauge_set_and_callback(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(2.5)
        assert registry.snapshot()["g"]["value"] == 2.5
        registry.gauge("g").set_function(lambda: 7)
        assert registry.snapshot()["g"]["value"] == 7

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        doc = registry.snapshot()["h"]
        assert doc["count"] == 4
        assert doc["min"] == 0.05 and doc["max"] == 5.0
        assert doc["buckets"] == {"le_0.1": 1, "le_1": 3, "le_10": 4}

    def test_type_conflict_raises_config_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("x")

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {}


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_child_inherits_trace_and_parent(self):
        root = tracing.start_span("root", label="a")
        child = root.child("kid")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        child.end()
        record = root.end()
        assert record["name"] == "root"
        assert record["attrs"] == {"label": "a"}
        assert record["duration"] >= 0

    def test_context_dict_parents_across_processes(self):
        root = tracing.start_span("root")
        remote = tracing.start_span("remote", parent=root.context())
        assert remote.trace_id == root.trace_id
        assert remote.parent_id == root.span_id

    def test_malformed_parent_context_starts_a_fresh_trace(self):
        span = tracing.start_span("s", parent={"trace_id": 42})
        assert span.parent_id is None
        assert isinstance(span.trace_id, str) and span.trace_id

    def test_activate_sets_the_ambient_span(self):
        assert tracing.current_span() is None
        span = tracing.start_span("s")
        with tracing.activate(span):
            assert tracing.current_span() is span
            assert tracing.current_context() == span.context()
        assert tracing.current_span() is None

    def test_end_is_idempotent(self):
        span = tracing.start_span("s")
        first = span.end()
        time.sleep(0.01)
        assert span.end() == first

    def test_load_spans_dedups_by_span_id(self, tmp_path):
        path = tmp_path / "log.jsonl"
        record = tracing.start_span("s").end(record=False)
        stale = dict(record, duration=0.0)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"event": "other"}) + "\n")
            for doc in (stale, record):
                fh.write(json.dumps({"event": "span", **doc}) + "\n")
        spans = tracing.load_spans(str(path))
        assert len(spans) == 1
        assert spans[0]["duration"] == record["duration"]  # last wins

    def test_resolve_trace_id_by_prefix_and_attribute(self):
        span = tracing.start_span("s", job="job-1-7")
        spans = [span.end(record=False)]
        assert tracing.resolve_trace_id(spans, span.trace_id[:6]) == (
            span.trace_id
        )
        assert tracing.resolve_trace_id(spans, "job-1-7") == span.trace_id
        assert tracing.resolve_trace_id(spans, "nope") is None

    def test_check_span_trees_flags_missing_stages(self):
        dispatch = tracing.start_span("dispatch")
        spans = [dispatch.end(record=False)]
        problems = tracing.check_span_trees(spans)
        assert len(problems) == 1 and "batch-run" in problems[0]


# ----------------------------------------------------------------------
# Campaign + worker wiring
# ----------------------------------------------------------------------
class TestCampaignTelemetry:
    def test_serial_campaign_records_per_point_timing(self, points):
        results = Campaign(points, backend="serial").run()
        for run in results:
            assert run.elapsed_seconds > 0
            assert run.timing["simulate_seconds"] > 0
            assert run.timing["resolve_seconds"] >= 0

    def test_timing_round_trips_json_and_csv(self, points, tmp_path):
        results = Campaign(points, backend="serial").run()
        json_path = str(tmp_path / "r.json")
        results.save_json(json_path)
        loaded = CampaignResults.load_json(json_path)
        assert [r.elapsed_seconds for r in loaded] == [
            r.elapsed_seconds for r in results
        ]
        assert loaded[0].timing == results[0].timing
        csv_path = str(tmp_path / "r.csv")
        results.save_csv(csv_path)
        csv_loaded = CampaignResults.load_csv(csv_path)
        assert [r.elapsed_seconds for r in csv_loaded] == [
            r.elapsed_seconds for r in results
        ]

    def test_timing_does_not_affect_equality(self, points, serial):
        again = Campaign(points, backend="serial").run()
        assert list(again) == list(serial)  # timing is compare=False

    def test_three_tuple_payloads_still_work(self, points, serial):
        """An old-style backend returning (index, result, error) triples
        is decoded unchanged; timing is simply absent."""

        class OldBackend(dist.ExecutionBackend):
            def execute(self, pts, jobs=1):
                from repro.analysis.campaign import (
                    _run_group,
                    grouped_points,
                )

                return [
                    entry[:3]
                    for group in grouped_points(pts)
                    for entry in _run_group(group)
                ]

        results = Campaign(points, backend=OldBackend()).run()
        assert list(results) == list(serial)
        assert all(r.elapsed_seconds is None for r in results)
        assert all(r.timing is None for r in results)

    def test_campaign_error_names_the_trace(self):
        bad = [
            CampaignPoint(
                "gcc", "no-such-scheme", n_instructions=N, warmup=W
            )
        ]
        with pytest.raises(
            CampaignError, match=r"\[trace [0-9a-f]{16}\]"
        ):
            Campaign(bad, backend="serial").run()

    def test_worker_crash_retry_is_a_child_span(
        self, tmp_path, monkeypatch, points, serial
    ):
        """The retry dispatch span hangs off the failed attempt's span,
        and the whole tree survives the crash intact."""
        path = _log_file(tmp_path, monkeypatch)
        flag = tmp_path / "crash-once"
        flag.write_text("boom")
        monkeypatch.setenv("REPRO_DIST_CRASH_FLAG", str(flag))
        # The pool is created *after* the flag env var is set, so its
        # workers inherit it at spawn time.
        pool = dist.WorkerPool()
        try:
            backend = dist.backend("worker", pool=pool, retries=1)
            results = Campaign(points, workers=1, backend=backend).run()
        finally:
            pool.shutdown()
        assert not flag.exists()  # the crash really happened
        assert list(results) == list(serial)
        assert all(r.elapsed_seconds > 0 for r in results)
        telemetry.flush()
        spans = tracing.load_spans(str(path))
        dispatches = [s for s in spans if s["name"] == "dispatch"]
        failed = [s for s in dispatches if s["status"] == "error"]
        assert len(failed) == 1
        retries = [
            s for s in dispatches
            if s.get("parent_id") == failed[0]["span_id"]
        ]
        assert len(retries) == 1
        assert retries[0]["status"] == "ok"
        assert retries[0]["attrs"]["attempt"] == 2
        # Every successful dispatch still has its full batch-run /
        # worker.batch chain under it.
        assert tracing.check_span_trees(spans) == []

    def test_worker_campaign_collects_worker_side_timing(
        self, points, serial
    ):
        backend = dist.backend("worker", warm=False)
        results = Campaign(points, workers=2, backend=backend).run()
        assert list(results) == list(serial)
        assert all(r.elapsed_seconds > 0 for r in results)
        assert all(r.timing["simulate_seconds"] > 0 for r in results)


# ----------------------------------------------------------------------
# Mixed old/new protocol peers
# ----------------------------------------------------------------------
class TestMixedPeers:
    def _batch_line(self, points, trace=None):
        request = {
            "id": 1,
            "op": "batch-run",
            "specs": [p.spec().to_dict() for p in points],
        }
        if trace is not None:
            request["trace"] = trace
        return json.dumps(request)

    def test_old_dispatcher_gets_no_spans_field(self, points):
        """A traceless batch-run (an old dispatcher) is served, and the
        reply shape is what protocol v2 always promised — no spans."""
        reply, keep = handle_request(
            self._batch_line(points[:1]), WorkerState()
        )
        assert keep and reply["ok"]
        assert "spans" not in reply
        item = reply["results"][0]
        assert item["ok"]
        assert item["elapsed_seconds"] > 0  # timing is an additive field

    def test_new_dispatcher_gets_the_worker_span(self, points):
        ctx = tracing.start_span("dispatch").context()
        reply, _ = handle_request(
            self._batch_line(points[:1], trace=ctx), WorkerState()
        )
        assert reply["ok"]
        (record,) = reply["spans"]
        assert record["name"] == "worker.batch"
        assert record["trace_id"] == ctx["trace_id"]
        assert record["parent_id"] == ctx["span_id"]

    def test_malformed_peer_span_records_are_ignored(self):
        """Junk a peer might ship in a spans field is dropped, never
        raised on (old peers may send shapes we have never seen)."""
        tracing.record_span(None)
        tracing.record_span("junk")
        tracing.record_span({"name": "x"})  # no span_id
        assert tracing.recent_spans() == []

    def test_old_peer_trace_context_is_tolerated(self, points):
        """A garbage trace field degrades to a fresh trace, and the
        batch still runs."""
        reply, _ = handle_request(
            self._batch_line(points[:1], trace={"weird": True}),
            WorkerState(),
        )
        assert reply["ok"]
        (record,) = reply["spans"]
        assert record["name"] == "worker.batch"
        assert "parent_id" not in record


# ----------------------------------------------------------------------
# Service daemon
# ----------------------------------------------------------------------
class TestServiceTelemetry:
    def test_service_campaign_produces_complete_trace(
        self, tmp_path, monkeypatch, points, serial
    ):
        path = _log_file(tmp_path, monkeypatch)
        daemon = dist.ServeDaemon(address="127.0.0.1:0", jobs=1).start()
        try:
            backend = dist.backend("service", address=daemon.address)
            results = Campaign(points, backend=backend).run()
            status = daemon.status()
        finally:
            daemon.stop()
        assert list(results) == list(serial)
        assert all(r.elapsed_seconds > 0 for r in results)
        telemetry.flush()
        spans = tracing.load_spans(str(path))
        names = {s["name"] for s in spans}
        assert {"campaign", "submit", "job", "admit", "dispatch",
                "batch-run", "worker.batch"} <= names
        campaign_span = next(s for s in spans if s["name"] == "campaign")
        assert all(
            s["trace_id"] == campaign_span["trace_id"] for s in spans
        )
        assert tracing.check_span_trees(spans) == []
        assert status["telemetry"]["serve.submits_total"]["value"] >= 1

    def test_daemon_restart_resubmit_appears_in_the_trace(
        self, tmp_path, monkeypatch, points
    ):
        """After a daemon restart the client resubmits; the trace shows
        both submits, and the completed job's tree is intact."""
        path = _log_file(tmp_path, monkeypatch)
        monkeypatch.setattr(serve_module, "RECONNECT_DELAY", 0.1)
        first = dist.ServeDaemon(address="127.0.0.1:0", jobs=1).start()
        address = first.address
        client = dist.ServiceClient(
            address=address, tenant="t", reconnects=50
        )
        root = tracing.start_span("campaign")
        second = None
        try:
            with tracing.activate(root):
                client.submit(points)
                client.close()
                first.stop()
                deadline = time.monotonic() + 30
                while True:
                    try:
                        second = dist.ServeDaemon(
                            address=address, jobs=1
                        ).start()
                        break
                    except Exception:
                        assert time.monotonic() < deadline, (
                            "port never freed"
                        )
                        time.sleep(0.2)
                items = client.run(points)  # fresh submit, fresh job id
        finally:
            client.close()
            if second is not None:
                second.stop()
        root.end()
        telemetry.flush()
        assert len(items) == len(points) and all(i["ok"] for i in items)
        spans = tracing.load_spans(str(path))
        mine = [s for s in spans if s["trace_id"] == root.trace_id]
        submits = [s for s in mine if s["name"] == "submit"]
        assert len(submits) == 2  # original + post-restart resubmit
        done = [
            s for s in mine
            if s["name"] == "job" and s["status"] == "ok"
        ]
        assert len(done) >= 1  # the resubmitted job completed
        # Whatever completed, completed with full telemetry.
        ok_spans = [s for s in mine if s["status"] == "ok"]
        assert tracing.check_span_trees(ok_spans) == []
