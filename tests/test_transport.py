"""Tests for repro.dist.transport: addresses, sockets, failure modes."""

import json
import socket
import sys
import threading
import time

import pytest

from repro.dist.transport import (
    LineChannel,
    PeerClosed,
    PeerTimeout,
    SocketTransport,
    StdioTransport,
    format_address,
    listen_socket,
    parse_address,
    serve_socket_connection,
)
from repro.errors import ConfigError, DistError


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("example.org:7731") == ("example.org", 7731)

    def test_empty_host_uses_default(self):
        assert parse_address(":7731") == ("127.0.0.1", 7731)
        assert parse_address(":7731", default_host="0.0.0.0") == (
            "0.0.0.0", 7731,
        )

    def test_port_zero_allowed(self):
        assert parse_address("127.0.0.1:0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize(
        "bad", ["no-colon", "host:port", "host:", "host:65536", "host:-1",
                7731, None]
    )
    def test_bad_addresses_raise_config_error(self, bad):
        with pytest.raises(ConfigError):
            parse_address(bad)

    def test_error_names_the_source(self):
        with pytest.raises(ConfigError, match="REPRO_SERVICE_ADDRESS"):
            parse_address(
                "nope", source="environment variable REPRO_SERVICE_ADDRESS"
            )

    def test_format_is_inverse(self):
        assert format_address(parse_address("a:1")) == "a:1"


def _scripted_server(script):
    """A listening socket whose accept-thread runs *script(conn)* once.

    Returns the ``host:port`` address string.  The server closes the
    connection when the script returns, which is how the tests model a
    worker dying at a precise point in the byte stream.
    """
    sock = listen_socket("127.0.0.1:0")
    address = format_address(sock.getsockname()[:2])

    def run():
        conn, _ = sock.accept()
        try:
            script(conn)
        finally:
            try:
                conn.close()
            except OSError:
                pass
            sock.close()

    threading.Thread(target=run, daemon=True).start()
    return address


def _recv_request(conn):
    """Read one newline-terminated request from *conn* (tests only)."""
    buffer = b""
    while b"\n" not in buffer:
        data = conn.recv(65536)
        if not data:
            return None
        buffer += data
    return json.loads(buffer.split(b"\n", 1)[0])


class TestSocketTransport:
    def test_connect_refused_raises_peer_closed(self):
        sock = listen_socket("127.0.0.1:0")
        address = format_address(sock.getsockname()[:2])
        sock.close()
        with pytest.raises(PeerClosed, match="cannot connect"):
            SocketTransport(address)

    def test_clean_request_reply(self):
        def script(conn):
            request = _recv_request(conn)
            conn.sendall(
                json.dumps({"id": request["id"], "ok": True}).encode()
                + b"\n"
            )

        channel = LineChannel(SocketTransport(_scripted_server(script)))
        assert channel.request("ping", timeout=5) == {"id": 1, "ok": True}
        channel.close()

    def test_partial_line_is_never_delivered_as_data(self):
        """A reply cut mid-JSON is a dead worker, not a protocol reply."""

        def script(conn):
            _recv_request(conn)
            conn.sendall(b'{"id": 1, "ok": true, "resu')  # no newline

        transport = SocketTransport(_scripted_server(script))
        channel = LineChannel(transport)
        with pytest.raises(PeerClosed, match="mid-line"):
            channel.request("ping", timeout=10)
        assert not transport.alive()
        assert "partial reply" in transport.death_message()
        channel.close()

    def test_half_open_peer_times_out(self):
        """A silent peer (no data, no FIN) surfaces as PeerTimeout."""

        def script(conn):
            _recv_request(conn)
            time.sleep(5)  # never replies; test times out long before

        channel = LineChannel(SocketTransport(_scripted_server(script)))
        with pytest.raises(PeerTimeout, match="half-open"):
            channel.request("ping", timeout=0.3)
        channel.close()

    def test_eof_before_reply_raises_peer_closed(self):
        def script(conn):
            _recv_request(conn)  # read the request, reply with nothing

        channel = LineChannel(SocketTransport(_scripted_server(script)))
        with pytest.raises(PeerClosed):
            channel.request("ping", timeout=10)
        channel.close()

    def test_describe_reports_transport_and_address(self):
        def script(conn):
            _recv_request(conn)

        address = _scripted_server(script)
        transport = SocketTransport(address)
        assert transport.describe() == {
            "transport": "socket", "address": address,
        }
        transport.close()


class TestLineChannel:
    def test_reply_id_mismatch_raises_peer_closed(self):
        def script(conn):
            _recv_request(conn)
            conn.sendall(b'{"id": 999, "ok": true}\n')

        channel = LineChannel(SocketTransport(_scripted_server(script)))
        with pytest.raises(PeerClosed, match="does not match"):
            channel.request("ping", timeout=10)
        channel.close()

    def test_non_json_reply_raises_peer_closed(self):
        def script(conn):
            _recv_request(conn)
            conn.sendall(b"Segmentation fault\n")

        channel = LineChannel(SocketTransport(_scripted_server(script)))
        with pytest.raises(PeerClosed, match="non-protocol"):
            channel.request("ping", timeout=10)
        channel.close()

    def test_ids_increase_monotonically(self):
        def script(conn):
            for _ in range(3):
                request = _recv_request(conn)
                conn.sendall(
                    json.dumps({"id": request["id"]}).encode() + b"\n"
                )

        channel = LineChannel(SocketTransport(_scripted_server(script)))
        ids = [channel.request("ping", timeout=5)["id"] for _ in range(3)]
        assert ids == [1, 2, 3]
        channel.close()


class TestStdioTransport:
    def test_echo_subprocess(self):
        transport = StdioTransport([
            sys.executable, "-u", "-c",
            "import sys\n"
            "for line in sys.stdin:\n"
            "    sys.stdout.write(line)\n"
            "    sys.stdout.flush()\n",
        ])
        channel = LineChannel(transport)
        assert channel.request("ping", timeout=10)["op"] == "ping"
        assert transport.describe()["transport"] == "stdio"
        assert transport.describe()["address"].startswith("pid:")
        channel.close()
        assert not transport.alive()

    def test_crash_surfaces_exit_code_and_stderr_tail(self):
        transport = StdioTransport([
            sys.executable, "-c",
            "import sys; print('boom traceback', file=sys.stderr); "
            "sys.exit(3)",
        ])
        channel = LineChannel(transport)
        with pytest.raises(PeerClosed) as err:
            channel.request("ping", timeout=10)
        assert "code 3" in str(err.value)
        assert "boom traceback" in str(err.value)
        channel.close()


class TestListenSocket:
    def test_port_zero_binds_ephemeral(self):
        sock = listen_socket("127.0.0.1:0")
        assert sock.getsockname()[1] > 0
        sock.close()

    def test_unbindable_address_raises_dist_error(self):
        sock = listen_socket("127.0.0.1:0")
        address = format_address(sock.getsockname()[:2])
        try:
            with pytest.raises(DistError, match="cannot listen"):
                listen_socket(address)
        finally:
            sock.close()


class TestServeSocketConnection:
    def _pair(self):
        server = listen_socket("127.0.0.1:0")
        client = socket.create_connection(
            server.getsockname()[:2], timeout=5
        )
        conn, _ = server.accept()
        server.close()
        return client, conn

    def test_disconnect_returns_true_shutdown_returns_false(self):
        def handler(line):
            request = json.loads(line)
            keep = request.get("op") != "shutdown"
            return {"id": request.get("id"), "ok": True}, keep

        client, conn = self._pair()
        client.close()  # immediate disconnect
        assert serve_socket_connection(conn, handler) is True

        client, conn = self._pair()
        client.sendall(b'{"id": 1, "op": "shutdown"}\n')
        assert serve_socket_connection(conn, handler) is False
        client.close()
