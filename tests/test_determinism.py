"""Determinism regressions: identical inputs must give identical metrics.

The whole evaluation methodology rests on runs being exactly repeatable:
speed-ups compare separate simulations, the campaign engine replays
cached traces, and parallel workers recompute points in other processes.
These tests pin all of that down — byte-identical results run-to-run,
cached versus freshly generated workloads, and parallel versus serial
campaign execution.
"""

import json
from dataclasses import asdict

from repro import simulate
from repro.analysis.campaign import Campaign, expand_grid
from repro.workloads import workload

N = 600
W = 150


def _dump(result) -> bytes:
    """Canonical byte serialisation of a SimResult."""
    return json.dumps(asdict(result), sort_keys=True).encode()


class TestRunToRun:
    def test_same_inputs_byte_identical(self):
        a = simulate("gcc", steering="general-balance",
                     n_instructions=N, warmup=W, seed=0)
        b = simulate("gcc", steering="general-balance",
                     n_instructions=N, warmup=W, seed=0)
        assert a == b
        assert _dump(a) == _dump(b)

    def test_fresh_workload_matches_cached(self):
        """Replaying the shared trace equals regenerating everything."""
        cached = simulate("li", steering="modulo",
                          n_instructions=N, warmup=W, seed=2)
        fresh = simulate(workload("li", seed=2, fresh=True),
                         steering="modulo", n_instructions=N, warmup=W)
        assert _dump(cached) == _dump(fresh)

    def test_two_fresh_workloads_agree(self):
        a = simulate(workload("go", seed=1, fresh=True), steering="fifo",
                     n_instructions=N, warmup=W)
        b = simulate(workload("go", seed=1, fresh=True), steering="fifo",
                     n_instructions=N, warmup=W)
        assert _dump(a) == _dump(b)

    def test_seed_changes_results(self):
        a = simulate("gcc", steering="modulo",
                     n_instructions=N, warmup=W, seed=0)
        b = simulate("gcc", steering="modulo",
                     n_instructions=N, warmup=W, seed=5)
        assert a.ipc != b.ipc


class TestCampaignDeterminism:
    POINTS = expand_grid(
        ["gcc", "li"],
        ["modulo", "ldst-slice", "general-balance"],
        n_instructions=N,
        warmup=W,
    )

    def test_parallel_matches_serial_point_for_point(self):
        serial = Campaign(self.POINTS, workers=1).run()
        parallel = Campaign(self.POINTS, workers=3).run()
        for s, p in zip(serial, parallel):
            assert s.point == p.point
            assert _dump(s.result) == _dump(p.result)

    def test_campaign_repeatable(self):
        first = Campaign(self.POINTS).run()
        second = Campaign(self.POINTS).run()
        for a, b in zip(first, second):
            assert _dump(a.result) == _dump(b.result)
